//! Durable brokers: write-ahead logging of queue transitions, recovery.
//!
//! A broker opened with [`Broker::open_durable`](crate::Broker::open_durable)
//! assigns every enqueued message copy a **durable id** and logs each
//! queue-state transition to an [`mps_wal::Wal`]: `enqueue` (with key,
//! headers and payload), `ack`, `discard`, `requeue`, `dead_letter`,
//! `purge` and `delete_queue`. A publish fanned out to several queues
//! appends all its enqueue deltas with **one** group-committed fsync.
//!
//! Recovery replays the newest snapshot plus the log tail. Deliveries
//! (`consume`) are deliberately *not* logged: a message that was
//! in-flight (unacked) at the crash is restored as ready and will be
//! redelivered — standard at-least-once semantics — while an acked
//! message is never resurrected, because its `ack` delta survives.
//!
//! **Topology is durable too**: exchange and queue declarations (with
//! capacities), bindings and dead-letter policies are logged as
//! `declare_exchange` / `declare_queue` / `bind_queue` / `bind_exchange`
//! / `unbind_queue` / `delete_exchange` / `dead_letter_policy` deltas
//! and restored *before* queue transitions are replayed, so applications
//! no longer have to re-declare capacities and DLQ policies on startup
//! (re-declaring stays idempotent and harmless).
//!
//! **Limits.** Per-queue session counters (`enqueued_total`, delivery
//! tags) restart. As with the docstore, a durability failure
//! mid-operation can leave memory ahead of the log; the instance must
//! be discarded and reopened.

use crate::{BrokerError, ExchangeType, Message};
use mps_wal::Recovered;
use serde_json::{json, Map, Value};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// Configuration for a durable broker.
#[derive(Debug, Clone)]
pub struct BrokerDurabilityConfig {
    /// Directory holding the broker's WAL segments and snapshots.
    pub dir: PathBuf,
    /// The underlying log's tuning (fsync policy, segment size,
    /// telemetry, recovery span, crash-kill switch).
    pub wal: mps_wal::WalConfig,
    /// Take a snapshot (and compact) every this many logged records;
    /// `0` disables automatic snapshots
    /// ([`Broker::checkpoint`](crate::Broker::checkpoint) still works).
    pub snapshot_every: u64,
}

impl BrokerDurabilityConfig {
    /// Durability in `dir` with default WAL tuning and a snapshot every
    /// 4096 logged records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            wal: mps_wal::WalConfig::default(),
            snapshot_every: 4096,
        }
    }

    /// Replaces the WAL tuning.
    pub fn wal(mut self, wal: mps_wal::WalConfig) -> Self {
        self.wal = wal;
        self
    }

    /// Sets the automatic snapshot cadence (`0` = manual only).
    pub fn snapshot_every(mut self, records: u64) -> Self {
        self.snapshot_every = records;
        self
    }
}

/// One message copy in a [`QueueSnapshot`] — enough to compare two
/// recovered brokers for identical queue state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageView {
    /// The store-wide durable id of this copy (0 on in-memory brokers).
    pub durable_id: u64,
    /// Times the copy was already delivered.
    pub deliveries: u32,
    /// Routing key the message was published with.
    pub key: String,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Management view of one queue's full message state, in queue order —
/// the determinism witness used by the recovery matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Queue name.
    pub name: String,
    /// Ready messages, front first.
    pub ready: Vec<MessageView>,
    /// Unacked deliveries, in tag order.
    pub unacked: Vec<MessageView>,
}

/// A message copy reconstructed from the log during recovery.
#[derive(Debug, Clone)]
pub(crate) struct RecoveredEntry {
    pub(crate) id: u64,
    pub(crate) key: String,
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) payload: Vec<u8>,
    pub(crate) deliveries: u32,
}

/// Durable topology as recovered from (or encoded into) the log: the
/// declarative broker state that is *not* per-message. Also serves as
/// the snapshot-time view the broker builds from its live state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct ReplayedTopology {
    /// Exchange name → type.
    pub(crate) exchanges: BTreeMap<String, ExchangeType>,
    /// Declared queues and their capacity limits.
    pub(crate) queue_capacities: BTreeMap<String, Option<usize>>,
    /// `(exchange, queue, pattern)` bindings, in declaration order.
    pub(crate) queue_bindings: Vec<(String, String, String)>,
    /// `(source, destination, pattern)` exchange-to-exchange bindings.
    pub(crate) exchange_bindings: Vec<(String, String, String)>,
    /// Queue → (max delivery attempts, dead-letter target).
    pub(crate) dead_letters: BTreeMap<String, (u32, String)>,
}

/// The replayed topology and queue contents plus the next durable id.
pub(crate) struct ReplayedState {
    pub(crate) topology: ReplayedTopology,
    pub(crate) queues: BTreeMap<String, VecDeque<RecoveredEntry>>,
    pub(crate) next_id: u64,
}

/// Broker-wide durable state: the log plus the snapshot cadence.
///
/// All broker mutations happen under the broker's state lock, which
/// also orders their log appends; the wal mutex is always taken *after*
/// the state lock (state → wal), never the other way around.
#[derive(Debug)]
pub(crate) struct BrokerDurable {
    wal: StdMutex<mps_wal::Wal>,
    snapshot_every: u64,
    appended: AtomicU64,
}

impl BrokerDurable {
    pub(crate) fn new(wal: mps_wal::Wal, snapshot_every: u64) -> Self {
        Self {
            wal: StdMutex::new(wal),
            snapshot_every,
            appended: AtomicU64::new(0),
        }
    }

    fn lock_wal(&self) -> MutexGuard<'_, mps_wal::Wal> {
        self.wal.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends `deltas` as one group-committed batch.
    pub(crate) fn append(&self, deltas: &[Value]) -> Result<(), BrokerError> {
        if deltas.is_empty() {
            return Ok(());
        }
        let mut payloads = Vec::with_capacity(deltas.len());
        for delta in deltas {
            payloads.push(serde_json::to_vec(delta).map_err(corrupt)?);
        }
        self.lock_wal().append_batch(&payloads).map_err(wal_err)?;
        self.appended
            .fetch_add(payloads.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Whether the snapshot cadence has been reached; resets the counter
    /// when it has.
    pub(crate) fn snapshot_due(&self) -> bool {
        if self.snapshot_every == 0 || self.appended.load(Ordering::Relaxed) < self.snapshot_every {
            return false;
        }
        self.appended.store(0, Ordering::Relaxed);
        true
    }

    /// Writes the snapshot bytes and compacts covered segments.
    pub(crate) fn write_snapshot(&self, state: &[u8]) -> Result<u64, BrokerError> {
        self.lock_wal().snapshot(state).map_err(wal_err)
    }
}

/// The loggable form of one enqueued message copy.
pub(crate) fn entry_of(message: &Message, deliveries: u32, id: u64) -> RecoveredEntry {
    RecoveredEntry {
        id,
        key: message.routing_key().as_str().to_owned(),
        headers: message
            .headers()
            .map(|(k, v)| (k.to_owned(), v.to_owned()))
            .collect(),
        payload: message.payload().to_vec(),
        deliveries,
    }
}

pub(crate) fn wal_err(e: mps_wal::WalError) -> BrokerError {
    BrokerError::Durability(e.to_string())
}

fn corrupt(why: impl std::fmt::Display) -> BrokerError {
    BrokerError::Durability(format!("log replay failed: {why}"))
}

// ----- payload hex codec (dependency-free, JSON-safe) -------------------

pub(crate) fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0x0f) as usize] as char);
    }
    out
}

pub(crate) fn from_hex(s: &str) -> Result<Vec<u8>, BrokerError> {
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        }
    }
    let raw = s.as_bytes();
    if raw.len() % 2 != 0 {
        return Err(corrupt("odd-length hex payload"));
    }
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        match (nibble(pair[0]), nibble(pair[1])) {
            (Some(hi), Some(lo)) => out.push((hi << 4) | lo),
            _ => return Err(corrupt("non-hex byte in payload")),
        }
    }
    Ok(out)
}

// ----- delta builders ---------------------------------------------------

fn kind_str(kind: ExchangeType) -> &'static str {
    match kind {
        ExchangeType::Direct => "direct",
        ExchangeType::Fanout => "fanout",
        ExchangeType::Topic => "topic",
    }
}

fn parse_kind(s: &str) -> Result<ExchangeType, BrokerError> {
    match s {
        "direct" => Ok(ExchangeType::Direct),
        "fanout" => Ok(ExchangeType::Fanout),
        "topic" => Ok(ExchangeType::Topic),
        other => Err(corrupt(format!("unknown exchange kind `{other}`"))),
    }
}

pub(crate) fn declare_exchange_delta(name: &str, kind: ExchangeType) -> Value {
    json!({"op": "declare_exchange", "name": name, "kind": kind_str(kind)})
}

pub(crate) fn declare_queue_delta(name: &str, capacity: Option<usize>) -> Value {
    json!({"op": "declare_queue", "name": name, "capacity": capacity})
}

pub(crate) fn bind_queue_delta(exchange: &str, queue: &str, pattern: &str) -> Value {
    json!({"op": "bind_queue", "exchange": exchange, "queue": queue, "pattern": pattern})
}

pub(crate) fn bind_exchange_delta(source: &str, destination: &str, pattern: &str) -> Value {
    json!({"op": "bind_exchange", "source": source, "destination": destination, "pattern": pattern})
}

pub(crate) fn unbind_queue_delta(exchange: &str, queue: &str, pattern: &str) -> Value {
    json!({"op": "unbind_queue", "exchange": exchange, "queue": queue, "pattern": pattern})
}

pub(crate) fn delete_exchange_delta(name: &str) -> Value {
    json!({"op": "delete_exchange", "name": name})
}

pub(crate) fn dead_letter_policy_delta(queue: &str, max_attempts: u32, target: &str) -> Value {
    json!({"op": "dead_letter_policy", "queue": queue, "max_attempts": max_attempts, "target": target})
}

pub(crate) fn enqueue_delta(queue: &str, entry: &RecoveredEntry) -> Value {
    let mut headers = Map::new();
    for (k, v) in &entry.headers {
        headers.insert(k.clone(), Value::String(v.clone()));
    }
    json!({
        "op": "enqueue",
        "queue": queue,
        "id": entry.id,
        "key": entry.key,
        "headers": headers,
        "payload": to_hex(&entry.payload),
        "deliveries": entry.deliveries,
    })
}

pub(crate) fn ack_delta(queue: &str, id: u64) -> Value {
    json!({"op": "ack", "queue": queue, "id": id})
}

pub(crate) fn discard_delta(queue: &str, id: u64) -> Value {
    json!({"op": "discard", "queue": queue, "id": id})
}

pub(crate) fn requeue_delta(queue: &str, id: u64, attempts: u32) -> Value {
    json!({"op": "requeue", "queue": queue, "id": id, "attempts": attempts})
}

pub(crate) fn dead_letter_delta(queue: &str, id: u64, to: &str) -> Value {
    json!({"op": "dead_letter", "queue": queue, "id": id, "to": to})
}

pub(crate) fn purge_delta(queue: &str, ids: &[u64]) -> Value {
    json!({"op": "purge", "queue": queue, "ids": ids})
}

pub(crate) fn delete_queue_delta(queue: &str) -> Value {
    json!({"op": "delete_queue", "queue": queue})
}

// ----- snapshot + replay ------------------------------------------------

/// Encodes the full queue state (ready + unacked folded together, queue
/// order) plus the declared topology as canonical snapshot bytes.
pub(crate) fn encode_snapshot(
    queues: &BTreeMap<String, Vec<RecoveredEntry>>,
    next_id: u64,
    topology: &ReplayedTopology,
) -> Result<Vec<u8>, BrokerError> {
    let mut out = Map::new();
    for (name, entries) in queues {
        let list: Vec<Value> = entries
            .iter()
            .map(|e| {
                let mut headers = Map::new();
                for (k, v) in &e.headers {
                    headers.insert(k.clone(), Value::String(v.clone()));
                }
                json!({
                    "id": e.id,
                    "key": e.key,
                    "headers": headers,
                    "payload": to_hex(&e.payload),
                    "deliveries": e.deliveries,
                })
            })
            .collect();
        out.insert(name.clone(), Value::Array(list));
    }
    let exchanges: Map<String, Value> = topology
        .exchanges
        .iter()
        .map(|(name, kind)| (name.clone(), Value::String(kind_str(*kind).to_owned())))
        .collect();
    let capacities: Map<String, Value> = topology
        .queue_capacities
        .iter()
        .map(|(name, cap)| (name.clone(), json!(cap)))
        .collect();
    let triple = |(a, b, c): &(String, String, String)| json!([a, b, c]);
    let dead_letters: Map<String, Value> = topology
        .dead_letters
        .iter()
        .map(|(queue, (max, target))| {
            (
                queue.clone(),
                json!({"max_attempts": max, "target": target}),
            )
        })
        .collect();
    serde_json::to_vec(&json!({
        "next_id": next_id,
        "queues": out,
        "topology": {
            "exchanges": exchanges,
            "queue_capacities": capacities,
            "queue_bindings": topology.queue_bindings.iter().map(triple).collect::<Vec<_>>(),
            "exchange_bindings": topology.exchange_bindings.iter().map(triple).collect::<Vec<_>>(),
            "dead_letters": dead_letters,
        },
    }))
    .map_err(corrupt)
}

fn parse_triples(
    value: Option<&Value>,
    at: &str,
) -> Result<Vec<(String, String, String)>, BrokerError> {
    let mut out = Vec::new();
    for entry in value.and_then(Value::as_array).into_iter().flatten() {
        let parts = entry
            .as_array()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| corrupt(format!("{at}: binding is not a 3-tuple")))?;
        let mut strings = Vec::with_capacity(3);
        for p in parts {
            strings.push(
                p.as_str()
                    .ok_or_else(|| corrupt(format!("{at}: non-string binding part")))?
                    .to_owned(),
            );
        }
        let c = strings.pop().unwrap_or_default();
        let b = strings.pop().unwrap_or_default();
        let a = strings.pop().unwrap_or_default();
        out.push((a, b, c));
    }
    Ok(out)
}

/// Parses the topology section of a snapshot; snapshots written before
/// topology became durable simply lack the key and recover empty.
fn parse_topology(snapshot: &Value) -> Result<ReplayedTopology, BrokerError> {
    let mut topology = ReplayedTopology::default();
    let Some(section) = snapshot.get("topology") else {
        return Ok(topology);
    };
    for (name, kind) in section
        .get("exchanges")
        .and_then(Value::as_object)
        .into_iter()
        .flatten()
    {
        let kind = kind
            .as_str()
            .ok_or_else(|| corrupt(format!("exchange {name}: non-string kind")))?;
        topology.exchanges.insert(name.clone(), parse_kind(kind)?);
    }
    for (name, cap) in section
        .get("queue_capacities")
        .and_then(Value::as_object)
        .into_iter()
        .flatten()
    {
        let capacity = if cap.is_null() {
            None
        } else {
            Some(
                cap.as_u64()
                    .ok_or_else(|| corrupt(format!("queue {name}: bad capacity")))?
                    as usize,
            )
        };
        topology.queue_capacities.insert(name.clone(), capacity);
    }
    topology.queue_bindings = parse_triples(section.get("queue_bindings"), "queue_bindings")?;
    topology.exchange_bindings =
        parse_triples(section.get("exchange_bindings"), "exchange_bindings")?;
    for (queue, policy) in section
        .get("dead_letters")
        .and_then(Value::as_object)
        .into_iter()
        .flatten()
    {
        let max = policy
            .get("max_attempts")
            .and_then(Value::as_u64)
            .ok_or_else(|| corrupt(format!("dead letter on {queue}: missing max_attempts")))?;
        let target = policy
            .get("target")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("dead letter on {queue}: missing target")))?;
        topology
            .dead_letters
            .insert(queue.clone(), (max as u32, target.to_owned()));
    }
    Ok(topology)
}

fn parse_entry(value: &Value, at: &str) -> Result<RecoveredEntry, BrokerError> {
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| corrupt(format!("{at}: missing id")))?;
    let key = value
        .get("key")
        .and_then(Value::as_str)
        .ok_or_else(|| corrupt(format!("{at}: missing key")))?
        .to_owned();
    let payload = from_hex(
        value
            .get("payload")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("{at}: missing payload")))?,
    )?;
    let deliveries = value.get("deliveries").and_then(Value::as_u64).unwrap_or(0) as u32;
    let mut headers = Vec::new();
    for (k, v) in value
        .get("headers")
        .and_then(Value::as_object)
        .into_iter()
        .flatten()
    {
        if let Some(v) = v.as_str() {
            headers.push((k.clone(), v.to_owned()));
        }
    }
    Ok(RecoveredEntry {
        id,
        key,
        headers,
        payload,
        deliveries,
    })
}

fn remove_by_id(queue: &mut VecDeque<RecoveredEntry>, id: u64) -> Option<RecoveredEntry> {
    let pos = queue.iter().position(|e| e.id == id)?;
    queue.remove(pos)
}

/// Rebuilds topology and queue contents from a recovered snapshot +
/// log tail.
///
/// Deltas referring to ids the replay no longer holds (e.g. an `ack`
/// logged after a crash-killed `enqueue` append) are ignored: the
/// message was never durably enqueued, so there is nothing to remove.
pub(crate) fn replay(recovered: &Recovered) -> Result<ReplayedState, BrokerError> {
    let mut queues: BTreeMap<String, VecDeque<RecoveredEntry>> = BTreeMap::new();
    let mut topology = ReplayedTopology::default();
    let mut next_id: u64 = 1;

    if let Some(bytes) = &recovered.snapshot {
        let state: Value = serde_json::from_slice(bytes).map_err(corrupt)?;
        next_id = state
            .get("next_id")
            .and_then(Value::as_u64)
            .ok_or_else(|| corrupt("snapshot missing next_id"))?;
        topology = parse_topology(&state)?;
        for (name, list) in state
            .get("queues")
            .and_then(Value::as_object)
            .ok_or_else(|| corrupt("snapshot missing queues"))?
        {
            let mut entries = VecDeque::new();
            for value in list.as_array().into_iter().flatten() {
                entries.push_back(parse_entry(value, &format!("snapshot queue {name}"))?);
            }
            queues.insert(name.clone(), entries);
        }
    }

    let field = |delta: &Value, name: &'static str, lsn: &u64| -> Result<String, BrokerError> {
        Ok(delta
            .get(name)
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("delta at lsn {lsn} has no {name}")))?
            .to_owned())
    };
    for (lsn, payload) in &recovered.entries {
        let delta: Value = serde_json::from_slice(payload)
            .map_err(|e| corrupt(format!("bad delta at lsn {lsn}: {e}")))?;
        let op = delta
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("delta at lsn {lsn} has no op")))?;

        // Topology deltas carry their own fields; handle them before the
        // queue-transition ops, which all require a `queue` field.
        match op {
            "declare_exchange" => {
                let name = field(&delta, "name", lsn)?;
                let kind = parse_kind(&field(&delta, "kind", lsn)?)?;
                topology.exchanges.insert(name, kind);
                continue;
            }
            "declare_queue" => {
                let name = field(&delta, "name", lsn)?;
                let capacity = match delta.get("capacity") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        corrupt(format!("declare_queue at lsn {lsn}: bad capacity"))
                    })? as usize),
                };
                topology.queue_capacities.entry(name).or_insert(capacity);
                continue;
            }
            "bind_queue" => {
                let binding = (
                    field(&delta, "exchange", lsn)?,
                    field(&delta, "queue", lsn)?,
                    field(&delta, "pattern", lsn)?,
                );
                if !topology.queue_bindings.contains(&binding) {
                    topology.queue_bindings.push(binding);
                }
                continue;
            }
            "bind_exchange" => {
                let binding = (
                    field(&delta, "source", lsn)?,
                    field(&delta, "destination", lsn)?,
                    field(&delta, "pattern", lsn)?,
                );
                if !topology.exchange_bindings.contains(&binding) {
                    topology.exchange_bindings.push(binding);
                }
                continue;
            }
            "unbind_queue" => {
                let binding = (
                    field(&delta, "exchange", lsn)?,
                    field(&delta, "queue", lsn)?,
                    field(&delta, "pattern", lsn)?,
                );
                topology.queue_bindings.retain(|b| *b != binding);
                continue;
            }
            "delete_exchange" => {
                let name = field(&delta, "name", lsn)?;
                topology.exchanges.remove(&name);
                topology
                    .queue_bindings
                    .retain(|(source, _, _)| *source != name);
                topology
                    .exchange_bindings
                    .retain(|(source, destination, _)| *source != name && *destination != name);
                continue;
            }
            "dead_letter_policy" => {
                let queue = field(&delta, "queue", lsn)?;
                let target = field(&delta, "target", lsn)?;
                let max = delta
                    .get("max_attempts")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| {
                        corrupt(format!("dead_letter_policy at lsn {lsn}: no max_attempts"))
                    })? as u32;
                topology.dead_letters.insert(queue, (max, target));
                continue;
            }
            _ => {}
        }

        let queue_name = delta
            .get("queue")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("delta at lsn {lsn} has no queue")))?;
        let id = delta.get("id").and_then(Value::as_u64);
        match op {
            "enqueue" => {
                let entry = parse_entry(&delta, &format!("enqueue at lsn {lsn}"))?;
                next_id = next_id.max(entry.id + 1);
                queues
                    .entry(queue_name.to_owned())
                    .or_default()
                    .push_back(entry);
            }
            "ack" | "discard" => {
                let id = id.ok_or_else(|| corrupt(format!("{op} at lsn {lsn} has no id")))?;
                if let Some(queue) = queues.get_mut(queue_name) {
                    remove_by_id(queue, id);
                }
            }
            "requeue" => {
                let id = id.ok_or_else(|| corrupt(format!("requeue at lsn {lsn} has no id")))?;
                let attempts = delta.get("attempts").and_then(Value::as_u64).unwrap_or(0) as u32;
                if let Some(queue) = queues.get_mut(queue_name) {
                    if let Some(mut entry) = remove_by_id(queue, id) {
                        entry.deliveries = attempts;
                        queue.push_front(entry);
                    }
                }
            }
            "dead_letter" => {
                let id =
                    id.ok_or_else(|| corrupt(format!("dead_letter at lsn {lsn} has no id")))?;
                let to = delta
                    .get("to")
                    .and_then(Value::as_str)
                    .ok_or_else(|| corrupt(format!("dead_letter at lsn {lsn} has no target")))?
                    .to_owned();
                let moved = queues
                    .get_mut(queue_name)
                    .and_then(|queue| remove_by_id(queue, id));
                if let Some(mut entry) = moved {
                    entry.deliveries = 0;
                    queues.entry(to).or_default().push_back(entry);
                }
            }
            "purge" => {
                if let Some(queue) = queues.get_mut(queue_name) {
                    for id in delta
                        .get("ids")
                        .and_then(Value::as_array)
                        .into_iter()
                        .flatten()
                        .filter_map(Value::as_u64)
                    {
                        remove_by_id(queue, id);
                    }
                }
            }
            "delete_queue" => {
                queues.remove(queue_name);
                topology.queue_capacities.remove(queue_name);
                topology.dead_letters.remove(queue_name);
                topology
                    .queue_bindings
                    .retain(|(_, queue, _)| queue != queue_name);
            }
            other => {
                return Err(corrupt(format!("unknown op `{other}` at lsn {lsn}")));
            }
        }
    }

    Ok(ReplayedState {
        topology,
        queues,
        next_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrips() {
        for payload in [&b""[..], &b"\x00\xff\x10observation"[..]] {
            assert_eq!(from_hex(&to_hex(payload)).unwrap(), payload);
        }
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn replay_applies_deltas_in_order() {
        let entry = |id: u64| RecoveredEntry {
            id,
            key: "obs.k".into(),
            headers: vec![("h".into(), "v".into())],
            payload: vec![id as u8],
            deliveries: 0,
        };
        let deltas = [
            enqueue_delta("q", &entry(1)),
            enqueue_delta("q", &entry(2)),
            enqueue_delta("q", &entry(3)),
            ack_delta("q", 1),
            requeue_delta("q", 3, 2),
            dead_letter_delta("q", 2, "dlq"),
        ];
        let recovered = Recovered {
            snapshot: None,
            snapshot_lsn: 0,
            entries: deltas
                .iter()
                .enumerate()
                .map(|(i, d)| (i as u64 + 1, serde_json::to_vec(d).unwrap()))
                .collect(),
            report: Default::default(),
        };
        let state = replay(&recovered).unwrap();
        assert_eq!(state.next_id, 4);
        let q: Vec<u64> = state.queues["q"].iter().map(|e| e.id).collect();
        assert_eq!(
            q,
            vec![3],
            "acked and dead-lettered removed, requeued at front"
        );
        assert_eq!(state.queues["q"][0].deliveries, 2);
        let dlq: Vec<u64> = state.queues["dlq"].iter().map(|e| e.id).collect();
        assert_eq!(dlq, vec![2]);
        assert_eq!(state.queues["dlq"][0].deliveries, 0);
    }

    #[test]
    fn replay_restores_topology_from_deltas() {
        let deltas = [
            declare_exchange_delta("obs", ExchangeType::Topic),
            declare_exchange_delta("doomed", ExchangeType::Fanout),
            declare_queue_delta("q", Some(64)),
            declare_queue_delta("unbounded", None),
            bind_queue_delta("obs", "q", "obs.#"),
            bind_queue_delta("obs", "q", "obs.#"), // idempotent re-bind
            bind_queue_delta("doomed", "q", "#"),
            bind_exchange_delta("obs", "doomed", "#"),
            dead_letter_policy_delta("q", 5, "dlq"),
            unbind_queue_delta("obs", "q", "never.bound"), // no-op
            delete_exchange_delta("doomed"),
        ];
        let recovered = Recovered {
            snapshot: None,
            snapshot_lsn: 0,
            entries: deltas
                .iter()
                .enumerate()
                .map(|(i, d)| (i as u64 + 1, serde_json::to_vec(d).unwrap()))
                .collect(),
            report: Default::default(),
        };
        let state = replay(&recovered).unwrap();
        let topology = &state.topology;
        assert_eq!(
            topology.exchanges,
            BTreeMap::from([("obs".to_owned(), ExchangeType::Topic)]),
            "deleted exchange must not survive replay"
        );
        assert_eq!(topology.queue_capacities["q"], Some(64));
        assert_eq!(topology.queue_capacities["unbounded"], None);
        assert_eq!(
            topology.queue_bindings,
            vec![("obs".to_owned(), "q".to_owned(), "obs.#".to_owned())],
            "duplicate binds collapse; bindings from a deleted exchange drop"
        );
        assert!(topology.exchange_bindings.is_empty());
        assert_eq!(topology.dead_letters["q"], (5, "dlq".to_owned()));
    }

    #[test]
    fn snapshot_roundtrips_topology() {
        let mut topology = ReplayedTopology::default();
        topology.exchanges.insert("obs".into(), ExchangeType::Topic);
        topology.queue_capacities.insert("q".into(), Some(8));
        topology.queue_capacities.insert("dlq".into(), None);
        topology
            .queue_bindings
            .push(("obs".into(), "q".into(), "obs.*.temp".into()));
        topology
            .exchange_bindings
            .push(("obs".into(), "audit".into(), "#".into()));
        topology.dead_letters.insert("q".into(), (3, "dlq".into()));
        let bytes = encode_snapshot(&BTreeMap::new(), 7, &topology).unwrap();
        let recovered = Recovered {
            snapshot: Some(bytes),
            snapshot_lsn: 1,
            entries: vec![],
            report: Default::default(),
        };
        let state = replay(&recovered).unwrap();
        assert_eq!(state.next_id, 7);
        assert_eq!(state.topology, topology);
    }

    #[test]
    fn pre_topology_snapshots_recover_with_empty_topology() {
        let bytes = serde_json::to_vec(&json!({"next_id": 3, "queues": {}})).unwrap();
        let recovered = Recovered {
            snapshot: Some(bytes),
            snapshot_lsn: 1,
            entries: vec![],
            report: Default::default(),
        };
        let state = replay(&recovered).unwrap();
        assert_eq!(state.topology, ReplayedTopology::default());
        assert_eq!(state.next_id, 3);
    }

    #[test]
    fn replay_ignores_deltas_for_unknown_ids() {
        let recovered = Recovered {
            snapshot: None,
            snapshot_lsn: 0,
            entries: vec![(1, serde_json::to_vec(&ack_delta("q", 99)).unwrap())],
            report: Default::default(),
        };
        let state = replay(&recovered).unwrap();
        assert!(state.queues.get("q").is_none());
    }
}
