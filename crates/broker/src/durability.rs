//! Durable brokers: write-ahead logging of queue transitions, recovery.
//!
//! A broker opened with [`Broker::open_durable`](crate::Broker::open_durable)
//! assigns every enqueued message copy a **durable id** and logs each
//! queue-state transition to an [`mps_wal::Wal`]: `enqueue` (with key,
//! headers and payload), `ack`, `discard`, `requeue`, `dead_letter`,
//! `purge` and `delete_queue`. A publish fanned out to several queues
//! appends all its enqueue deltas with **one** group-committed fsync.
//!
//! Recovery replays the newest snapshot plus the log tail. Deliveries
//! (`consume`) are deliberately *not* logged: a message that was
//! in-flight (unacked) at the crash is restored as ready and will be
//! redelivered — standard at-least-once semantics — while an acked
//! message is never resurrected, because its `ack` delta survives.
//!
//! **Limits.** Topology (exchanges, bindings, capacities, dead-letter
//! policies) is *not* persisted; applications re-declare it on startup,
//! which is idempotent and keeps recovered messages (`declare_queue` on
//! an existing queue is a no-op). Per-queue session counters
//! (`enqueued_total`, delivery tags) restart. As with the docstore, a
//! durability failure mid-operation can leave memory ahead of the log;
//! the instance must be discarded and reopened.

use crate::{BrokerError, Message};
use mps_wal::Recovered;
use serde_json::{json, Map, Value};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// Configuration for a durable broker.
#[derive(Debug, Clone)]
pub struct BrokerDurabilityConfig {
    /// Directory holding the broker's WAL segments and snapshots.
    pub dir: PathBuf,
    /// The underlying log's tuning (fsync policy, segment size,
    /// telemetry, recovery span, crash-kill switch).
    pub wal: mps_wal::WalConfig,
    /// Take a snapshot (and compact) every this many logged records;
    /// `0` disables automatic snapshots
    /// ([`Broker::checkpoint`](crate::Broker::checkpoint) still works).
    pub snapshot_every: u64,
}

impl BrokerDurabilityConfig {
    /// Durability in `dir` with default WAL tuning and a snapshot every
    /// 4096 logged records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            wal: mps_wal::WalConfig::default(),
            snapshot_every: 4096,
        }
    }

    /// Replaces the WAL tuning.
    pub fn wal(mut self, wal: mps_wal::WalConfig) -> Self {
        self.wal = wal;
        self
    }

    /// Sets the automatic snapshot cadence (`0` = manual only).
    pub fn snapshot_every(mut self, records: u64) -> Self {
        self.snapshot_every = records;
        self
    }
}

/// One message copy in a [`QueueSnapshot`] — enough to compare two
/// recovered brokers for identical queue state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageView {
    /// The store-wide durable id of this copy (0 on in-memory brokers).
    pub durable_id: u64,
    /// Times the copy was already delivered.
    pub deliveries: u32,
    /// Routing key the message was published with.
    pub key: String,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Management view of one queue's full message state, in queue order —
/// the determinism witness used by the recovery matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Queue name.
    pub name: String,
    /// Ready messages, front first.
    pub ready: Vec<MessageView>,
    /// Unacked deliveries, in tag order.
    pub unacked: Vec<MessageView>,
}

/// A message copy reconstructed from the log during recovery.
#[derive(Debug, Clone)]
pub(crate) struct RecoveredEntry {
    pub(crate) id: u64,
    pub(crate) key: String,
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) payload: Vec<u8>,
    pub(crate) deliveries: u32,
}

/// The replayed queue contents plus the next durable id to assign.
pub(crate) struct ReplayedState {
    pub(crate) queues: BTreeMap<String, VecDeque<RecoveredEntry>>,
    pub(crate) next_id: u64,
}

/// Broker-wide durable state: the log plus the snapshot cadence.
///
/// All broker mutations happen under the broker's state lock, which
/// also orders their log appends; the wal mutex is always taken *after*
/// the state lock (state → wal), never the other way around.
#[derive(Debug)]
pub(crate) struct BrokerDurable {
    wal: StdMutex<mps_wal::Wal>,
    snapshot_every: u64,
    appended: AtomicU64,
}

impl BrokerDurable {
    pub(crate) fn new(wal: mps_wal::Wal, snapshot_every: u64) -> Self {
        Self {
            wal: StdMutex::new(wal),
            snapshot_every,
            appended: AtomicU64::new(0),
        }
    }

    fn lock_wal(&self) -> MutexGuard<'_, mps_wal::Wal> {
        self.wal.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends `deltas` as one group-committed batch.
    pub(crate) fn append(&self, deltas: &[Value]) -> Result<(), BrokerError> {
        if deltas.is_empty() {
            return Ok(());
        }
        let mut payloads = Vec::with_capacity(deltas.len());
        for delta in deltas {
            payloads.push(serde_json::to_vec(delta).map_err(corrupt)?);
        }
        self.lock_wal().append_batch(&payloads).map_err(wal_err)?;
        self.appended
            .fetch_add(payloads.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Whether the snapshot cadence has been reached; resets the counter
    /// when it has.
    pub(crate) fn snapshot_due(&self) -> bool {
        if self.snapshot_every == 0 || self.appended.load(Ordering::Relaxed) < self.snapshot_every {
            return false;
        }
        self.appended.store(0, Ordering::Relaxed);
        true
    }

    /// Writes the snapshot bytes and compacts covered segments.
    pub(crate) fn write_snapshot(&self, state: &[u8]) -> Result<u64, BrokerError> {
        self.lock_wal().snapshot(state).map_err(wal_err)
    }
}

/// The loggable form of one enqueued message copy.
pub(crate) fn entry_of(message: &Message, deliveries: u32, id: u64) -> RecoveredEntry {
    RecoveredEntry {
        id,
        key: message.routing_key().as_str().to_owned(),
        headers: message
            .headers()
            .map(|(k, v)| (k.to_owned(), v.to_owned()))
            .collect(),
        payload: message.payload().to_vec(),
        deliveries,
    }
}

pub(crate) fn wal_err(e: mps_wal::WalError) -> BrokerError {
    BrokerError::Durability(e.to_string())
}

fn corrupt(why: impl std::fmt::Display) -> BrokerError {
    BrokerError::Durability(format!("log replay failed: {why}"))
}

// ----- payload hex codec (dependency-free, JSON-safe) -------------------

pub(crate) fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0x0f) as usize] as char);
    }
    out
}

pub(crate) fn from_hex(s: &str) -> Result<Vec<u8>, BrokerError> {
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        }
    }
    let raw = s.as_bytes();
    if raw.len() % 2 != 0 {
        return Err(corrupt("odd-length hex payload"));
    }
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        match (nibble(pair[0]), nibble(pair[1])) {
            (Some(hi), Some(lo)) => out.push((hi << 4) | lo),
            _ => return Err(corrupt("non-hex byte in payload")),
        }
    }
    Ok(out)
}

// ----- delta builders ---------------------------------------------------

pub(crate) fn enqueue_delta(queue: &str, entry: &RecoveredEntry) -> Value {
    let mut headers = Map::new();
    for (k, v) in &entry.headers {
        headers.insert(k.clone(), Value::String(v.clone()));
    }
    json!({
        "op": "enqueue",
        "queue": queue,
        "id": entry.id,
        "key": entry.key,
        "headers": headers,
        "payload": to_hex(&entry.payload),
        "deliveries": entry.deliveries,
    })
}

pub(crate) fn ack_delta(queue: &str, id: u64) -> Value {
    json!({"op": "ack", "queue": queue, "id": id})
}

pub(crate) fn discard_delta(queue: &str, id: u64) -> Value {
    json!({"op": "discard", "queue": queue, "id": id})
}

pub(crate) fn requeue_delta(queue: &str, id: u64, attempts: u32) -> Value {
    json!({"op": "requeue", "queue": queue, "id": id, "attempts": attempts})
}

pub(crate) fn dead_letter_delta(queue: &str, id: u64, to: &str) -> Value {
    json!({"op": "dead_letter", "queue": queue, "id": id, "to": to})
}

pub(crate) fn purge_delta(queue: &str, ids: &[u64]) -> Value {
    json!({"op": "purge", "queue": queue, "ids": ids})
}

pub(crate) fn delete_queue_delta(queue: &str) -> Value {
    json!({"op": "delete_queue", "queue": queue})
}

// ----- snapshot + replay ------------------------------------------------

/// Encodes the full queue state (ready + unacked folded together, queue
/// order) as canonical snapshot bytes.
pub(crate) fn encode_snapshot(
    queues: &BTreeMap<String, Vec<RecoveredEntry>>,
    next_id: u64,
) -> Result<Vec<u8>, BrokerError> {
    let mut out = Map::new();
    for (name, entries) in queues {
        let list: Vec<Value> = entries
            .iter()
            .map(|e| {
                let mut headers = Map::new();
                for (k, v) in &e.headers {
                    headers.insert(k.clone(), Value::String(v.clone()));
                }
                json!({
                    "id": e.id,
                    "key": e.key,
                    "headers": headers,
                    "payload": to_hex(&e.payload),
                    "deliveries": e.deliveries,
                })
            })
            .collect();
        out.insert(name.clone(), Value::Array(list));
    }
    serde_json::to_vec(&json!({"next_id": next_id, "queues": out})).map_err(corrupt)
}

fn parse_entry(value: &Value, at: &str) -> Result<RecoveredEntry, BrokerError> {
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| corrupt(format!("{at}: missing id")))?;
    let key = value
        .get("key")
        .and_then(Value::as_str)
        .ok_or_else(|| corrupt(format!("{at}: missing key")))?
        .to_owned();
    let payload = from_hex(
        value
            .get("payload")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("{at}: missing payload")))?,
    )?;
    let deliveries = value.get("deliveries").and_then(Value::as_u64).unwrap_or(0) as u32;
    let mut headers = Vec::new();
    for (k, v) in value
        .get("headers")
        .and_then(Value::as_object)
        .into_iter()
        .flatten()
    {
        if let Some(v) = v.as_str() {
            headers.push((k.clone(), v.to_owned()));
        }
    }
    Ok(RecoveredEntry {
        id,
        key,
        headers,
        payload,
        deliveries,
    })
}

fn remove_by_id(queue: &mut VecDeque<RecoveredEntry>, id: u64) -> Option<RecoveredEntry> {
    let pos = queue.iter().position(|e| e.id == id)?;
    queue.remove(pos)
}

/// Rebuilds queue contents from a recovered snapshot + log tail.
///
/// Deltas referring to ids the replay no longer holds (e.g. an `ack`
/// logged after a crash-killed `enqueue` append) are ignored: the
/// message was never durably enqueued, so there is nothing to remove.
pub(crate) fn replay(recovered: &Recovered) -> Result<ReplayedState, BrokerError> {
    let mut queues: BTreeMap<String, VecDeque<RecoveredEntry>> = BTreeMap::new();
    let mut next_id: u64 = 1;

    if let Some(bytes) = &recovered.snapshot {
        let state: Value = serde_json::from_slice(bytes).map_err(corrupt)?;
        next_id = state
            .get("next_id")
            .and_then(Value::as_u64)
            .ok_or_else(|| corrupt("snapshot missing next_id"))?;
        for (name, list) in state
            .get("queues")
            .and_then(Value::as_object)
            .ok_or_else(|| corrupt("snapshot missing queues"))?
        {
            let mut entries = VecDeque::new();
            for value in list.as_array().into_iter().flatten() {
                entries.push_back(parse_entry(value, &format!("snapshot queue {name}"))?);
            }
            queues.insert(name.clone(), entries);
        }
    }

    for (lsn, payload) in &recovered.entries {
        let delta: Value = serde_json::from_slice(payload)
            .map_err(|e| corrupt(format!("bad delta at lsn {lsn}: {e}")))?;
        let op = delta
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("delta at lsn {lsn} has no op")))?;
        let queue_name = delta
            .get("queue")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("delta at lsn {lsn} has no queue")))?;
        let id = delta.get("id").and_then(Value::as_u64);
        match op {
            "enqueue" => {
                let entry = parse_entry(&delta, &format!("enqueue at lsn {lsn}"))?;
                next_id = next_id.max(entry.id + 1);
                queues
                    .entry(queue_name.to_owned())
                    .or_default()
                    .push_back(entry);
            }
            "ack" | "discard" => {
                let id = id.ok_or_else(|| corrupt(format!("{op} at lsn {lsn} has no id")))?;
                if let Some(queue) = queues.get_mut(queue_name) {
                    remove_by_id(queue, id);
                }
            }
            "requeue" => {
                let id = id.ok_or_else(|| corrupt(format!("requeue at lsn {lsn} has no id")))?;
                let attempts = delta.get("attempts").and_then(Value::as_u64).unwrap_or(0) as u32;
                if let Some(queue) = queues.get_mut(queue_name) {
                    if let Some(mut entry) = remove_by_id(queue, id) {
                        entry.deliveries = attempts;
                        queue.push_front(entry);
                    }
                }
            }
            "dead_letter" => {
                let id =
                    id.ok_or_else(|| corrupt(format!("dead_letter at lsn {lsn} has no id")))?;
                let to = delta
                    .get("to")
                    .and_then(Value::as_str)
                    .ok_or_else(|| corrupt(format!("dead_letter at lsn {lsn} has no target")))?
                    .to_owned();
                let moved = queues
                    .get_mut(queue_name)
                    .and_then(|queue| remove_by_id(queue, id));
                if let Some(mut entry) = moved {
                    entry.deliveries = 0;
                    queues.entry(to).or_default().push_back(entry);
                }
            }
            "purge" => {
                if let Some(queue) = queues.get_mut(queue_name) {
                    for id in delta
                        .get("ids")
                        .and_then(Value::as_array)
                        .into_iter()
                        .flatten()
                        .filter_map(Value::as_u64)
                    {
                        remove_by_id(queue, id);
                    }
                }
            }
            "delete_queue" => {
                queues.remove(queue_name);
            }
            other => {
                return Err(corrupt(format!("unknown op `{other}` at lsn {lsn}")));
            }
        }
    }

    Ok(ReplayedState { queues, next_id })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrips() {
        for payload in [&b""[..], &b"\x00\xff\x10observation"[..]] {
            assert_eq!(from_hex(&to_hex(payload)).unwrap(), payload);
        }
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn replay_applies_deltas_in_order() {
        let entry = |id: u64| RecoveredEntry {
            id,
            key: "obs.k".into(),
            headers: vec![("h".into(), "v".into())],
            payload: vec![id as u8],
            deliveries: 0,
        };
        let deltas = [
            enqueue_delta("q", &entry(1)),
            enqueue_delta("q", &entry(2)),
            enqueue_delta("q", &entry(3)),
            ack_delta("q", 1),
            requeue_delta("q", 3, 2),
            dead_letter_delta("q", 2, "dlq"),
        ];
        let recovered = Recovered {
            snapshot: None,
            snapshot_lsn: 0,
            entries: deltas
                .iter()
                .enumerate()
                .map(|(i, d)| (i as u64 + 1, serde_json::to_vec(d).unwrap()))
                .collect(),
            report: Default::default(),
        };
        let state = replay(&recovered).unwrap();
        assert_eq!(state.next_id, 4);
        let q: Vec<u64> = state.queues["q"].iter().map(|e| e.id).collect();
        assert_eq!(
            q,
            vec![3],
            "acked and dead-lettered removed, requeued at front"
        );
        assert_eq!(state.queues["q"][0].deliveries, 2);
        let dlq: Vec<u64> = state.queues["dlq"].iter().map(|e| e.id).collect();
        assert_eq!(dlq, vec![2]);
        assert_eq!(state.queues["dlq"][0].deliveries, 0);
    }

    #[test]
    fn replay_ignores_deltas_for_unknown_ids() {
        let recovered = Recovered {
            snapshot: None,
            snapshot_lsn: 0,
            entries: vec![(1, serde_json::to_vec(&ack_delta("q", 99)).unwrap())],
            report: Default::default(),
        };
        let state = replay(&recovered).unwrap();
        assert!(state.queues.get("q").is_none());
    }
}
