//! [`ShardedBroker`]: N independent [`Broker`] shards behind one
//! [`BrokerTransport`].
//!
//! The middleware's scale story (paper §6: sustaining collection from
//! large fleets, not single-message latency) needs the hot publish path
//! to parallelise. A `ShardedBroker` partitions *messages* by routing-key
//! hash while mirroring the full *topology* (exchanges, queues, bindings,
//! dead-letter policies) on every shard:
//!
//! * **publish** hashes the routing key (FNV-1a) and runs the whole
//!   route — including `#`/`*` fan-out and exchange-to-exchange chains —
//!   on the owning shard's own `TopicTrie` index. Two publishes with
//!   different keys contend on different shard locks.
//! * **consume/ack/nack** see one logical queue: delivery tags encode
//!   the owning shard (`outer = inner * shards + shard`), so settlement
//!   routes straight back without a lookup table.
//! * **management** calls apply to every shard (they are rare), and
//!   reads aggregate (`queue_depth` sums) or delegate to shard 0
//!   (existence, policies — the mirrors are identical by construction).
//!
//! Because every queue exists on every shard and cross-shard fan-out is
//! resolved *within* the owning shard, a sharded broker delivers exactly
//! the same message multiset per queue as a single broker — per-queue
//! *order* across differently-keyed messages is the one relaxation (see
//! `docs/SHARDING.md`). Per-queue capacities are split across shards
//! (`ceil(capacity / shards)`, min 1), so the aggregate bound holds
//! approximately: a skewed key distribution can drop slightly earlier
//! than a single broker would.

use crate::broker::{Broker, DeadLetterPolicy, ExchangeType};
use crate::durability::BrokerDurabilityConfig;
use crate::error::BrokerError;
use crate::message::{Delivery, Message};
use crate::transport::BrokerTransport;
use mps_telemetry::Registry;
use std::sync::Arc;

/// FNV-1a, the workspace's dependency-free stable hash — the same
/// function the docstore uses to place collections, so a key's owning
/// shard is reproducible across crates and across runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The shard owning `key` among `shards` partitions. Stable across
/// processes and platforms; `shards` must be non-zero.
pub fn shard_for_key(key: &str, shards: usize) -> usize {
    (fnv1a(key.as_bytes()) % shards.max(1) as u64) as usize
}

/// N independent [`Broker`] shards presenting as one broker. See the
/// [module docs](self) for the partitioning scheme.
#[derive(Debug)]
pub struct ShardedBroker {
    shards: Vec<Arc<Broker>>,
}

impl ShardedBroker {
    /// An in-memory sharded broker with `shards` partitions (clamped to
    /// at least 1; `new(1)` behaves exactly like a single [`Broker`]).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let built = Self {
            shards: (0..shards).map(|_| Arc::new(Broker::new())).collect(),
        };
        built.report_shard_count();
        built
    }

    /// Opens a durable sharded broker: each shard write-ahead-logs into
    /// its own `shard-<i>` subdirectory of `config.dir`, so a shard's
    /// group-committed appends never serialise against another's.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Durability`] if any shard's log cannot be
    /// opened or replayed.
    pub fn open_durable(
        shards: usize,
        config: BrokerDurabilityConfig,
    ) -> Result<Self, BrokerError> {
        let shards = shards.max(1);
        let mut built = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut shard_config = config.clone();
            shard_config.dir = config.dir.join(format!("shard-{i}"));
            built.push(Arc::new(Broker::open_durable(shard_config)?));
        }
        let broker = Self { shards: built };
        broker.report_shard_count();
        Ok(broker)
    }

    fn report_shard_count(&self) {
        Registry::global()
            .gauge(
                "broker_shard_count",
                "Partitions of the most recently constructed sharded broker",
            )
            .set(self.shards.len() as i64);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The underlying shard brokers, in shard order — operator surface
    /// for checkpointing, snapshots and per-shard metrics.
    pub fn shards(&self) -> &[Arc<Broker>] {
        &self.shards
    }

    /// Checkpoints every durable shard. See [`Broker::checkpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Durability`] from the first shard that
    /// fails (or is not durable).
    pub fn checkpoint(&self) -> Result<(), BrokerError> {
        for shard in &self.shards {
            shard.checkpoint()?;
        }
        Ok(())
    }

    /// The shard index owning `key`.
    pub fn shard_of(&self, key: &str) -> usize {
        shard_for_key(key, self.shards.len())
    }

    fn shard_for(&self, key: &str) -> &Arc<Broker> {
        &self.shards[self.shard_of(key)]
    }

    /// Splits a per-queue capacity across shards so the aggregate bound
    /// is preserved (approximately, under key skew).
    fn shard_capacity(&self, capacity: usize) -> usize {
        if capacity == 0 {
            return 0;
        }
        let n = self.shards.len();
        ((capacity + n - 1) / n).max(1)
    }

    fn decode_tag(&self, tag: u64) -> (usize, u64) {
        let n = self.shards.len() as u64;
        ((tag % n) as usize, tag / n)
    }

    /// Re-encodes a shard-local error so the caller sees the outer tag
    /// it actually passed in.
    fn outer_error(&self, err: BrokerError, shard: usize) -> BrokerError {
        match err {
            BrokerError::UnknownDeliveryTag { queue, tag } => BrokerError::UnknownDeliveryTag {
                queue,
                tag: tag * self.shards.len() as u64 + shard as u64,
            },
            other => other,
        }
    }
}

impl BrokerTransport for ShardedBroker {
    fn declare_exchange(&self, name: &str, kind: ExchangeType) -> Result<(), BrokerError> {
        for shard in &self.shards {
            shard.declare_exchange(name, kind)?;
        }
        Ok(())
    }

    fn declare_queue(&self, name: &str) -> Result<(), BrokerError> {
        for shard in &self.shards {
            shard.declare_queue(name)?;
        }
        Ok(())
    }

    fn declare_queue_with_capacity(&self, name: &str, capacity: usize) -> Result<(), BrokerError> {
        let per_shard = self.shard_capacity(capacity);
        for shard in &self.shards {
            shard.declare_queue_with_capacity(name, per_shard)?;
        }
        Ok(())
    }

    fn exchange_exists(&self, name: &str) -> bool {
        self.shards[0].exchange_exists(name)
    }

    fn queue_exists(&self, name: &str) -> bool {
        self.shards[0].queue_exists(name)
    }

    fn bind_queue(&self, exchange: &str, queue: &str, pattern: &str) -> Result<(), BrokerError> {
        for shard in &self.shards {
            shard.bind_queue(exchange, queue, pattern)?;
        }
        Ok(())
    }

    fn bind_exchange(
        &self,
        source: &str,
        destination: &str,
        pattern: &str,
    ) -> Result<(), BrokerError> {
        for shard in &self.shards {
            shard.bind_exchange(source, destination, pattern)?;
        }
        Ok(())
    }

    fn unbind_queue(&self, exchange: &str, queue: &str, pattern: &str) -> Result<(), BrokerError> {
        for shard in &self.shards {
            shard.unbind_queue(exchange, queue, pattern)?;
        }
        Ok(())
    }

    fn delete_exchange(&self, name: &str) -> Result<(), BrokerError> {
        for shard in &self.shards {
            shard.delete_exchange(name)?;
        }
        Ok(())
    }

    fn delete_queue(&self, name: &str) -> Result<(), BrokerError> {
        for shard in &self.shards {
            shard.delete_queue(name)?;
        }
        Ok(())
    }

    fn purge_queue(&self, name: &str) -> Result<usize, BrokerError> {
        let mut purged = 0;
        for shard in &self.shards {
            purged += shard.purge_queue(name)?;
        }
        Ok(purged)
    }

    fn configure_dead_letter(
        &self,
        queue: &str,
        max_delivery_attempts: u32,
        target: &str,
    ) -> Result<(), BrokerError> {
        for shard in &self.shards {
            shard.configure_dead_letter(queue, max_delivery_attempts, target)?;
        }
        Ok(())
    }

    fn dead_letter_policy(&self, queue: &str) -> Result<Option<DeadLetterPolicy>, BrokerError> {
        self.shards[0].dead_letter_policy(queue)
    }

    fn queue_depth(&self, name: &str) -> Result<usize, BrokerError> {
        let mut depth = 0;
        for shard in &self.shards {
            depth += shard.queue_depth(name)?;
        }
        Ok(depth)
    }

    fn publish(&self, exchange: &str, key: &str, payload: &[u8]) -> Result<usize, BrokerError> {
        shared_counters().publishes.inc();
        self.shard_for(key).publish(exchange, key, payload.to_vec())
    }

    fn publish_message(&self, exchange: &str, message: Message) -> Result<usize, BrokerError> {
        shared_counters().publishes.inc();
        let shard = self.shard_of(message.routing_key().as_str());
        self.shards[shard].publish_message(exchange, message)
    }

    fn consume(&self, queue: &str, max: usize) -> Result<Vec<Delivery>, BrokerError> {
        // Deterministic shard order: drain shard 0 first, then 1, … so
        // equal inputs yield equal delivery sequences run over run.
        let n = self.shards.len() as u64;
        let mut out = Vec::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            if out.len() >= max {
                break;
            }
            let batch = shard.consume(queue, max - out.len())?;
            out.extend(batch.into_iter().map(|d| Delivery {
                tag: d.tag * n + idx as u64,
                message: d.message,
                redelivered: d.redelivered,
            }));
        }
        Ok(out)
    }

    fn ack(&self, queue: &str, tag: u64) -> Result<(), BrokerError> {
        let (shard, inner) = self.decode_tag(tag);
        self.shards[shard]
            .ack(queue, inner)
            .map_err(|e| self.outer_error(e, shard))
    }

    fn ack_many(&self, queue: &str, tags: &[u64]) -> Result<(), BrokerError> {
        // Group by owning shard so the whole batch still costs one
        // group-committed append *per shard touched*.
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); n];
        for &tag in tags {
            let (shard, inner) = self.decode_tag(tag);
            per_shard[shard].push(inner);
        }
        for (shard, inner_tags) in per_shard.iter().enumerate() {
            self.shards[shard]
                .ack_many(queue, inner_tags)
                .map_err(|e| self.outer_error(e, shard))?;
        }
        Ok(())
    }

    fn nack(&self, queue: &str, tag: u64, requeue: bool) -> Result<(), BrokerError> {
        let (shard, inner) = self.decode_tag(tag);
        self.shards[shard]
            .nack(queue, inner, requeue)
            .map_err(|e| self.outer_error(e, shard))
    }
}

struct ShardedCounters {
    publishes: mps_telemetry::Counter,
}

fn shared_counters() -> &'static ShardedCounters {
    static SHARED: std::sync::OnceLock<ShardedCounters> = std::sync::OnceLock::new();
    SHARED.get_or_init(|| ShardedCounters {
        publishes: Registry::global().counter(
            "broker_sharded_publishes_total",
            "Publishes routed through a sharded broker's key-hash partitioner",
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn topo(b: &dyn BrokerTransport) {
        b.declare_exchange("app", ExchangeType::Topic).unwrap();
        b.declare_queue("all").unwrap();
        b.declare_queue("noise").unwrap();
        b.declare_queue("dlq").unwrap();
        b.bind_queue("app", "all", "#").unwrap();
        b.bind_queue("app", "noise", "obs.*.noise").unwrap();
        b.configure_dead_letter("noise", 2, "dlq").unwrap();
    }

    #[test]
    fn shard_for_key_is_stable_and_in_range() {
        for shards in 1..=8 {
            for key in ["obs.paris.noise", "obs.lyon.gps", "a", ""] {
                let s = shard_for_key(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for_key(key, shards), "deterministic");
            }
        }
        assert_eq!(shard_for_key("anything", 1), 0);
    }

    #[test]
    fn single_shard_matches_plain_broker_exactly() {
        let sharded = ShardedBroker::new(1);
        let plain = Broker::new();
        topo(&sharded);
        topo(&plain);
        for key in ["obs.paris.noise", "obs.lyon.gps"] {
            assert_eq!(
                sharded.publish("app", key, b"x").unwrap(),
                plain.publish("app", key, b"x".to_vec()).unwrap()
            );
        }
        assert_eq!(
            sharded.queue_depth("all").unwrap(),
            plain.queue_depth("all").unwrap()
        );
        let d = sharded.consume("all", 10).unwrap();
        assert_eq!(d.len(), 2);
        sharded.ack("all", d[0].tag).unwrap();
        sharded.nack("all", d[1].tag, true).unwrap();
        assert_eq!(sharded.queue_depth("all").unwrap(), 1);
    }

    #[test]
    fn consume_spans_shards_and_tags_route_back() {
        let sharded = ShardedBroker::new(4);
        topo(&sharded);
        // Enough distinct keys to land on several shards.
        for i in 0..32 {
            sharded
                .publish("app", &format!("obs.city{i}.noise"), &[i as u8])
                .unwrap();
        }
        assert_eq!(sharded.queue_depth("all").unwrap(), 32);
        let deliveries = sharded.consume("all", 32).unwrap();
        assert_eq!(deliveries.len(), 32);
        // Settle every delivery through its re-encoded tag; every ack
        // must land on the shard that issued it.
        for d in &deliveries {
            sharded.ack("all", d.tag).unwrap();
        }
        assert_eq!(sharded.queue_depth("all").unwrap(), 0);
        assert!(sharded.consume("all", 1).unwrap().is_empty());
    }

    #[test]
    fn ack_many_groups_by_shard() {
        let sharded = ShardedBroker::new(4);
        topo(&sharded);
        for i in 0..16 {
            sharded
                .publish("app", &format!("obs.c{i}.gps"), &[i as u8])
                .unwrap();
        }
        let tags: Vec<u64> = sharded
            .consume("all", 16)
            .unwrap()
            .iter()
            .map(|d| d.tag)
            .collect();
        sharded.ack_many("all", &tags).unwrap();
        assert_eq!(sharded.queue_depth("all").unwrap(), 0);
        let err = sharded.ack_many("all", &[tags[0]]).unwrap_err();
        assert!(
            matches!(err, BrokerError::UnknownDeliveryTag { tag, .. } if tag == tags[0]),
            "errors surface the outer tag: {err:?}"
        );
    }

    #[test]
    fn dead_letter_fires_per_shard() {
        let sharded = ShardedBroker::new(4);
        topo(&sharded);
        sharded
            .publish("app", "obs.paris.noise", b"poison")
            .unwrap();
        for _ in 0..2 {
            let d = sharded.consume("noise", 1).unwrap();
            assert_eq!(d.len(), 1);
            sharded.nack("noise", d[0].tag, true).unwrap();
        }
        assert_eq!(sharded.queue_depth("noise").unwrap(), 0);
        assert_eq!(sharded.queue_depth("dlq").unwrap(), 1);
    }

    #[test]
    fn capacity_splits_across_shards() {
        let sharded = ShardedBroker::new(4);
        sharded.declare_exchange("e", ExchangeType::Topic).unwrap();
        sharded.declare_queue_with_capacity("q", 8).unwrap();
        sharded.bind_queue("e", "q", "#").unwrap();
        // Same key → same shard → that shard's slice (ceil(8/4) = 2)
        // fills; the logical queue never exceeds the aggregate bound.
        for i in 0..10 {
            sharded.publish("e", "one.key", &[i]).unwrap();
        }
        assert_eq!(sharded.queue_depth("q").unwrap(), 2);
    }

    #[test]
    fn durable_shards_recover_independently() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mps-sharded-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let config =
            BrokerDurabilityConfig::new(&dir).wal(mps_wal::WalConfig::default().telemetry(false));
        let sharded = ShardedBroker::open_durable(3, config.clone()).unwrap();
        topo(&sharded);
        let keys: Vec<String> = (0..12).map(|i| format!("obs.c{i}.gps")).collect();
        for key in &keys {
            sharded.publish("app", key, key.as_bytes()).unwrap();
        }
        drop(sharded);

        let sharded = ShardedBroker::open_durable(3, config).unwrap();
        assert_eq!(sharded.shard_count(), 3);
        // Topology recovered per shard — no re-declaration needed.
        assert!(sharded.exchange_exists("app"));
        assert_eq!(sharded.queue_depth("all").unwrap(), 12);
        let mut recovered: Vec<Vec<u8>> = sharded
            .consume("all", 12)
            .unwrap()
            .iter()
            .map(|d| d.payload().to_vec())
            .collect();
        recovered.sort();
        let mut expected: Vec<Vec<u8>> = keys.iter().map(|k| k.as_bytes().to_vec()).collect();
        expected.sort();
        assert_eq!(recovered, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Per-queue message multiset under a sharded broker equals the
    /// single-broker multiset for the same publish sequence — the
    /// equivalence contract of the partitioning scheme.
    fn per_queue_multisets(
        b: &dyn BrokerTransport,
        queues: &[&str],
    ) -> BTreeMap<String, Vec<Vec<u8>>> {
        let mut out = BTreeMap::new();
        for queue in queues {
            let mut payloads: Vec<Vec<u8>> = b
                .consume(queue, usize::MAX)
                .unwrap()
                .iter()
                .map(|d| d.payload().to_vec())
                .collect();
            payloads.sort();
            out.insert((*queue).to_owned(), payloads);
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sharded_broker_delivers_same_multiset_as_single(
            shards in 1usize..6,
            keys in prop::collection::vec(
                prop::collection::vec("[ab]{1,2}", 1..4).prop_map(|w| w.join(".")),
                1..40,
            ),
        ) {
            let single = Broker::new();
            let sharded = ShardedBroker::new(shards);
            for b in [&single as &dyn BrokerTransport, &sharded] {
                b.declare_exchange("client", ExchangeType::Topic).unwrap();
                b.declare_exchange("app", ExchangeType::Topic).unwrap();
                b.bind_exchange("client", "app", "#").unwrap();
                b.declare_queue("all").unwrap();
                b.declare_queue("a-only").unwrap();
                b.bind_queue("app", "all", "#").unwrap();
                b.bind_queue("app", "a-only", "a.#").unwrap();
            }
            for (i, key) in keys.iter().enumerate() {
                let payload = format!("{i}:{key}").into_bytes();
                let s = single.publish("client", key, payload.clone()).unwrap();
                let sh = sharded.publish("client", key, &payload).unwrap();
                prop_assert_eq!(s, sh, "same fan-out per publish");
            }
            prop_assert_eq!(
                per_queue_multisets(&single, &["all", "a-only"]),
                per_queue_multisets(&sharded, &["all", "a-only"])
            );
        }
    }
}
