//! Trie-indexed routing: the broker's publish hot path.
//!
//! Exchanges used to route by linearly scanning a `Vec<Binding>` and
//! re-matching every topic pattern per message. This module replaces that
//! scan with per-exchange indexes, keyed by the exchange type:
//!
//! * **Topic** — a word-segmented [`TopicTrie`] with explicit `*` and `#`
//!   wildcard child nodes and a precomputed `#`-closure per node, so a
//!   routing key is matched by walking its words once instead of running
//!   the pattern DP against every binding.
//! * **Direct** — a `BTreeMap` from the literal binding key to the
//!   binding set (direct exchanges compare keys byte-for-byte).
//! * **Fanout** — every binding matches; no index needed.
//!
//! On top of the indexes sits a bounded [`RouteCache`] memoizing the full
//! breadth-first destination set per `(entry exchange, routing key)`; the
//! broker invalidates it on every bind/unbind/delete. The naive matcher
//! ([`crate::topic_matches`] / `BindingPattern::matches`) is retained as
//! the reference implementation the trie is property-tested against.

use crate::topic::{CompiledPattern, PatternWord};
use crate::{BindingPattern, ExchangeType};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How many `(exchange, key)` entries the routing-result cache may hold
/// before it flushes. Flush-on-full keeps the policy deterministic and
/// the memory bound hard; steady-state key sets far smaller than this
/// (GoFlow's are per-district) never evict at all.
pub(crate) const ROUTE_CACHE_CAPACITY: usize = 1024;

/// A word-segmented trie over topic binding patterns.
///
/// Each node owns a literal-word edge map plus optional `*` (one word)
/// and `#` (zero or more words) child nodes. Bindings are stored as
/// opaque `usize` ids on the node where their pattern ends. Matching
/// walks the already-split routing key once; a `(node, position)`
/// visited set bounds the `#` backtracking so pathological stacks of
/// wildcards stay linear in `nodes × key words`.
///
/// Every node also carries its **`#`-closure**: the ids reachable from it
/// through chains of `#` edges each matching zero words. Without it,
/// `a.#` could not match the key `a` — the walk ends at the `a` node with
/// no words left to feed the `#` child. The closure is recomputed on
/// insert (bindings change rarely; routing is the hot path).
///
/// # Examples
///
/// ```
/// use mps_broker::router::TopicTrie;
/// use mps_broker::CompiledPattern;
///
/// let mut trie = TopicTrie::new();
/// trie.insert(&CompiledPattern::new(&"obs.paris.#".parse()?), 0);
/// trie.insert(&CompiledPattern::new(&"obs.*.noise".parse()?), 1);
/// assert_eq!(trie.matches(&["obs", "paris", "noise"]), vec![0, 1]);
/// assert_eq!(trie.matches(&["obs", "lyon", "noise"]), vec![1]);
/// assert_eq!(trie.matches(&["obs", "paris"]), vec![0]);
/// # Ok::<(), mps_broker::BrokerError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TopicTrie {
    /// Node arena; index 0 is the root. Children are always allocated
    /// after their parent, so child indexes are strictly greater — the
    /// closure pass below relies on that ordering.
    nodes: Vec<TrieNode>,
}

#[derive(Debug, Clone, Default)]
struct TrieNode {
    literal: BTreeMap<String, usize>,
    star: Option<usize>,
    hash: Option<usize>,
    /// Bindings whose pattern ends at this node.
    terminals: Vec<usize>,
    /// Bindings reachable from here via `#` edges each matching zero
    /// words (`a.#`, `a.#.#`, … all match the bare key `a`).
    hash_closure: Vec<usize>,
}

impl TopicTrie {
    /// An empty trie (just the root node).
    pub fn new() -> Self {
        Self {
            nodes: vec![TrieNode::default()],
        }
    }

    /// Number of bindings stored.
    pub fn len(&self) -> usize {
        self.nodes.iter().map(|n| n.terminals.len()).sum()
    }

    /// Whether the trie holds no bindings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a compiled pattern under an opaque binding id.
    pub fn insert(&mut self, pattern: &CompiledPattern, binding: usize) {
        let mut node = 0;
        for word in pattern.words() {
            node = match word {
                PatternWord::Star => self.star_child(node),
                PatternWord::Hash => self.hash_child(node),
                PatternWord::Literal(w) => self.literal_child(node, w),
            };
        }
        self.nodes[node].terminals.push(binding);
        self.recompute_closures();
    }

    fn literal_child(&mut self, node: usize, word: &str) -> usize {
        if let Some(&child) = self.nodes[node].literal.get(word) {
            return child;
        }
        let child = self.alloc();
        self.nodes[node].literal.insert(word.to_owned(), child);
        child
    }

    fn star_child(&mut self, node: usize) -> usize {
        if let Some(child) = self.nodes[node].star {
            return child;
        }
        let child = self.alloc();
        self.nodes[node].star = Some(child);
        child
    }

    fn hash_child(&mut self, node: usize) -> usize {
        if let Some(child) = self.nodes[node].hash {
            return child;
        }
        let child = self.alloc();
        self.nodes[node].hash = Some(child);
        child
    }

    fn alloc(&mut self) -> usize {
        self.nodes.push(TrieNode::default());
        self.nodes.len() - 1
    }

    /// Recomputes every node's `#`-closure. Children have larger indexes
    /// than their parents, so one reverse pass sees each `#` child's
    /// closure before the parent needs it.
    fn recompute_closures(&mut self) {
        let mut closures: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for n in (0..self.nodes.len()).rev() {
            if let Some(h) = self.nodes[n].hash {
                let mut closure = self.nodes[h].terminals.clone();
                closure.extend_from_slice(&closures[h]);
                closures[n] = closure;
            }
        }
        for (node, closure) in self.nodes.iter_mut().zip(closures) {
            node.hash_closure = closure;
        }
    }

    /// Binding ids matching an already-split routing key, sorted and
    /// deduplicated (a binding like `a.#.#` has several derivations for
    /// one key; it must still deliver once).
    pub fn matches(&self, key_words: &[&str]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut visited = vec![false; self.nodes.len() * (key_words.len() + 1)];
        self.walk(0, key_words, 0, &mut visited, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn walk(
        &self,
        node: usize,
        key: &[&str],
        pos: usize,
        visited: &mut [bool],
        out: &mut Vec<usize>,
    ) {
        let slot = node * (key.len() + 1) + pos;
        if visited[slot] {
            return;
        }
        visited[slot] = true;
        let n = &self.nodes[node];
        if pos == key.len() {
            out.extend_from_slice(&n.terminals);
            out.extend_from_slice(&n.hash_closure);
            return;
        }
        if let Some(&child) = n.literal.get(key[pos]) {
            self.walk(child, key, pos + 1, visited, out);
        }
        if let Some(child) = n.star {
            self.walk(child, key, pos + 1, visited, out);
        }
        if let Some(child) = n.hash {
            // `#` consumes zero or more words: enter its child node at
            // every remaining split point (including consuming nothing
            // and consuming the whole rest of the key).
            for split in pos..=key.len() {
                self.walk(child, key, split, visited, out);
            }
        }
    }
}

/// The per-exchange routing index, chosen by exchange type at declare
/// time and kept in lockstep with the exchange's binding list.
#[derive(Debug)]
pub(crate) enum ExchangeIndex {
    /// Every binding matches every key.
    Fanout { bindings: usize },
    /// Literal key → binding ids.
    Direct {
        by_key: BTreeMap<String, Vec<usize>>,
    },
    /// Wildcard patterns, trie-matched.
    Topic { trie: TopicTrie },
}

impl ExchangeIndex {
    /// An empty index of the right shape for `kind`.
    pub(crate) fn empty(kind: ExchangeType) -> Self {
        match kind {
            ExchangeType::Fanout => ExchangeIndex::Fanout { bindings: 0 },
            ExchangeType::Direct => ExchangeIndex::Direct {
                by_key: BTreeMap::new(),
            },
            ExchangeType::Topic => ExchangeIndex::Topic {
                trie: TopicTrie::new(),
            },
        }
    }

    /// Rebuilds the index from scratch after bindings were removed
    /// (unbind / delete compact the binding list, shifting ids).
    pub(crate) fn rebuild<'a>(
        kind: ExchangeType,
        bindings: impl Iterator<Item = (&'a BindingPattern, &'a CompiledPattern)>,
    ) -> Self {
        let mut index = ExchangeIndex::empty(kind);
        for (id, (pattern, compiled)) in bindings.enumerate() {
            index.insert(pattern, compiled, id);
        }
        index
    }

    /// Registers binding `id` under its pattern.
    pub(crate) fn insert(
        &mut self,
        pattern: &BindingPattern,
        compiled: &CompiledPattern,
        id: usize,
    ) {
        match self {
            ExchangeIndex::Fanout { bindings } => *bindings += 1,
            ExchangeIndex::Direct { by_key } => by_key
                .entry(pattern.as_str().to_owned())
                .or_default()
                .push(id),
            ExchangeIndex::Topic { trie } => trie.insert(compiled, id),
        }
    }

    /// Ids of the bindings matching `key`, in ascending order.
    pub(crate) fn matching_bindings(&self, key: &str, key_words: &[&str]) -> Vec<usize> {
        match self {
            ExchangeIndex::Fanout { bindings } => (0..*bindings).collect(),
            ExchangeIndex::Direct { by_key } => by_key.get(key).cloned().unwrap_or_default(),
            ExchangeIndex::Topic { trie } => trie.matches(key_words),
        }
    }
}

/// A bounded memo of fully-routed destination sets.
///
/// Keyed by `(entry exchange, routing key)`; the value is the sorted set
/// of destination queues the breadth-first exchange walk produced
/// (before per-queue capacity checks, which depend on queue fill and are
/// never cached). The broker clears the cache on every topology change
/// — bind, unbind, queue/exchange deletion — and the cache flushes
/// itself wholesale when it reaches capacity, keeping both the staleness
/// rule and the memory bound trivially auditable.
#[derive(Debug)]
pub(crate) struct RouteCache {
    capacity: usize,
    entries: usize,
    by_exchange: BTreeMap<String, BTreeMap<String, Arc<Vec<String>>>>,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new(ROUTE_CACHE_CAPACITY)
    }
}

impl RouteCache {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: 0,
            by_exchange: BTreeMap::new(),
        }
    }

    /// The cached destination set for this publish, if still valid.
    pub(crate) fn get(&self, exchange: &str, key: &str) -> Option<Arc<Vec<String>>> {
        self.by_exchange
            .get(exchange)
            .and_then(|keys| keys.get(key))
            .cloned()
    }

    /// Memoizes a routed destination set, flushing first when full.
    pub(crate) fn insert(&mut self, exchange: &str, key: &str, targets: Arc<Vec<String>>) {
        if self.entries >= self.capacity {
            self.invalidate();
        }
        let previous = self
            .by_exchange
            .entry(exchange.to_owned())
            .or_default()
            .insert(key.to_owned(), targets);
        if previous.is_none() {
            self.entries += 1;
        }
    }

    /// Drops every cached route (the topology changed under it).
    pub(crate) fn invalidate(&mut self) {
        self.by_exchange.clear();
        self.entries = 0;
    }

    /// Drops only the cached routes whose *entry* exchange is in
    /// `entries` — the sharper form of [`RouteCache::invalidate`] used
    /// when a topology change can only affect routes that traverse the
    /// changed exchange (the broker passes the reverse-reachable set).
    /// Routes entered through unrelated exchanges stay warm.
    pub(crate) fn invalidate_exchanges(&mut self, entries: &BTreeSet<String>) {
        for name in entries {
            if let Some(keys) = self.by_exchange.remove(name) {
                self.entries = self.entries.saturating_sub(keys.len());
            }
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic_matches;

    fn compiled(pattern: &str) -> CompiledPattern {
        CompiledPattern::new(&pattern.parse().expect("valid pattern"))
    }

    fn trie_of(patterns: &[&str]) -> TopicTrie {
        let mut trie = TopicTrie::new();
        for (id, p) in patterns.iter().enumerate() {
            trie.insert(&compiled(p), id);
        }
        trie
    }

    fn naive_of(patterns: &[&str], key: &str) -> Vec<usize> {
        patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| topic_matches(p, key))
            .map(|(id, _)| id)
            .collect()
    }

    #[test]
    fn trie_agrees_with_naive_matcher() {
        let patterns = [
            "a.b.c",
            "a.*.c",
            "a.#",
            "#",
            "#.c",
            "a.#.z",
            "a.*.#",
            "#.#",
            "#.*.#",
            "*.*",
            "a.#.#",
            "lazy.#",
            "*.orange.*",
        ];
        let keys = [
            "a",
            "a.b",
            "a.b.c",
            "a.z",
            "a.b.c.z",
            "c",
            "x.y",
            "lazy.orange.rabbit",
            "quick.orange.rabbit",
        ];
        let trie = trie_of(&patterns);
        for key in keys {
            let words: Vec<&str> = key.split('.').collect();
            assert_eq!(trie.matches(&words), naive_of(&patterns, key), "key {key}");
        }
    }

    #[test]
    fn hash_closure_matches_zero_words() {
        let trie = trie_of(&["a.#", "a.#.#"]);
        assert_eq!(trie.matches(&["a"]), vec![0, 1]);
    }

    #[test]
    fn stacked_hashes_deliver_once() {
        // Several derivations of `a.#.#` cover `a.b`; the id must come
        // back deduplicated.
        let trie = trie_of(&["a.#.#"]);
        assert_eq!(trie.matches(&["a", "b"]), vec![0]);
        assert_eq!(trie.matches(&["a", "b", "c", "d"]), vec![0]);
    }

    #[test]
    fn pathological_wildcard_stack_stays_fast() {
        let trie = trie_of(&["#.#.#.#.#.#.#.#"]);
        let key: Vec<String> = (0..64).map(|i| format!("w{i}")).collect();
        let words: Vec<&str> = key.iter().map(String::as_str).collect();
        // The (node, position) visited set makes this linear-ish; without
        // it the walk would explore ~64^8 derivations.
        assert_eq!(trie.matches(&words), vec![0]);
    }

    #[test]
    fn trie_len_counts_bindings() {
        let mut trie = TopicTrie::new();
        assert!(trie.is_empty());
        trie.insert(&compiled("a.b"), 0);
        trie.insert(&compiled("a.b"), 1); // same pattern, two bindings
        assert_eq!(trie.len(), 2);
    }

    #[test]
    fn direct_index_is_literal() {
        let mut index = ExchangeIndex::empty(ExchangeType::Direct);
        index.insert(&"a.*".parse().expect("pattern"), &compiled("a.*"), 0);
        // Direct exchanges compare byte-for-byte: `a.*` only matches the
        // literal key `a.*`, never `a.b`.
        assert_eq!(index.matching_bindings("a.*", &["a", "*"]), vec![0]);
        assert!(index.matching_bindings("a.b", &["a", "b"]).is_empty());
    }

    #[test]
    fn fanout_index_matches_everything() {
        let mut index = ExchangeIndex::empty(ExchangeType::Fanout);
        index.insert(&"x".parse().expect("pattern"), &compiled("x"), 0);
        index.insert(&"y".parse().expect("pattern"), &compiled("y"), 1);
        assert_eq!(
            index.matching_bindings("anything", &["anything"]),
            vec![0, 1]
        );
    }

    #[test]
    fn rebuild_renumbers_bindings() {
        let patterns: Vec<BindingPattern> = ["a.#", "b.#"]
            .iter()
            .map(|p| p.parse().expect("p"))
            .collect();
        let compiled: Vec<CompiledPattern> = patterns.iter().map(CompiledPattern::new).collect();
        let index =
            ExchangeIndex::rebuild(ExchangeType::Topic, patterns.iter().zip(compiled.iter()));
        assert_eq!(index.matching_bindings("b.x", &["b", "x"]), vec![1]);
    }

    #[test]
    fn per_exchange_invalidation_spares_unrelated_entries() {
        let mut cache = RouteCache::new(16);
        let targets = Arc::new(vec!["q".to_owned()]);
        cache.insert("a", "k1", Arc::clone(&targets));
        cache.insert("a", "k2", Arc::clone(&targets));
        cache.insert("b", "k1", Arc::clone(&targets));
        let gone: BTreeSet<String> = ["a".to_owned()].into();
        cache.invalidate_exchanges(&gone);
        assert_eq!(cache.len(), 1);
        assert!(cache.get("a", "k1").is_none());
        assert!(cache.get("a", "k2").is_none());
        assert!(cache.get("b", "k1").is_some(), "unrelated entry survives");
        // Invalidating an exchange with no cached routes is a no-op.
        cache.invalidate_exchanges(&gone);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn route_cache_bounds_and_invalidates() {
        let mut cache = RouteCache::new(2);
        let targets = Arc::new(vec!["q".to_owned()]);
        cache.insert("e", "k1", Arc::clone(&targets));
        cache.insert("e", "k1", Arc::clone(&targets)); // overwrite, not growth
        cache.insert("e", "k2", Arc::clone(&targets));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("e", "k1").as_deref(), Some(&vec!["q".to_owned()]));
        // At capacity: the next insert flushes everything first.
        cache.insert("e", "k3", Arc::clone(&targets));
        assert_eq!(cache.len(), 1);
        assert!(cache.get("e", "k1").is_none());
        cache.invalidate();
        assert_eq!(cache.len(), 0);
        assert!(cache.get("e", "k3").is_none());
    }
}
