//! Routing keys and AMQP topic-pattern matching.
//!
//! AMQP routing keys are dot-separated words (`obs.FR75013.Feedback`).
//! Topic-exchange binding patterns may use two wildcards: `*` matches
//! exactly one word, `#` matches zero or more words. GoFlow uses these to
//! filter crowd-sensed messages by location and data type (Figure 3).

use crate::BrokerError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum routing-key length accepted (mirrors AMQP's 255-byte limit).
const MAX_KEY_LEN: usize = 255;

fn validate_words(s: &str, allow_wildcards: bool) -> Result<(), BrokerError> {
    if s.is_empty() || s.len() > MAX_KEY_LEN {
        return Err(BrokerError::InvalidKey(s.to_owned()));
    }
    for word in s.split('.') {
        if word.is_empty() {
            return Err(BrokerError::InvalidKey(s.to_owned()));
        }
        let is_wildcard = word == "*" || word == "#";
        if is_wildcard {
            if !allow_wildcards {
                return Err(BrokerError::InvalidKey(s.to_owned()));
            }
            continue;
        }
        if !word
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(BrokerError::InvalidKey(s.to_owned()));
        }
    }
    Ok(())
}

/// A validated message routing key: non-empty dot-separated words of
/// ASCII alphanumerics, `-` and `_`, without wildcards.
///
/// # Examples
///
/// ```
/// use mps_broker::RoutingKey;
///
/// let key: RoutingKey = "obs.FR75013.Feedback".parse()?;
/// assert_eq!(key.words().count(), 3);
/// # Ok::<(), mps_broker::BrokerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RoutingKey(String);

impl RoutingKey {
    /// Validates and creates a routing key.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::InvalidKey`] if the key is empty, too long,
    /// has empty words, or contains wildcard or non-key characters.
    pub fn new(key: impl Into<String>) -> Result<Self, BrokerError> {
        let key = key.into();
        validate_words(&key, false)?;
        Ok(Self(key))
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over the key's dot-separated words.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }
}

impl FromStr for RoutingKey {
    type Err = BrokerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RoutingKey::new(s)
    }
}

impl fmt::Display for RoutingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for RoutingKey {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A validated topic-exchange binding pattern; like a routing key but words
/// may also be the wildcards `*` (one word) and `#` (zero or more words).
///
/// # Examples
///
/// ```
/// use mps_broker::BindingPattern;
///
/// let pattern: BindingPattern = "obs.#.Feedback".parse()?;
/// assert!(pattern.matches_key("obs.FR75013.Feedback".parse()?));
/// # Ok::<(), mps_broker::BrokerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BindingPattern(String);

impl BindingPattern {
    /// Validates and creates a binding pattern.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::InvalidKey`] on syntactically invalid
    /// patterns.
    pub fn new(pattern: impl Into<String>) -> Result<Self, BrokerError> {
        let pattern = pattern.into();
        validate_words(&pattern, true)?;
        Ok(Self(pattern))
    }

    /// The pattern as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this pattern matches `key` under AMQP topic semantics.
    pub fn matches(&self, key: &RoutingKey) -> bool {
        topic_matches(&self.0, key.as_str())
    }

    /// Convenience form of [`BindingPattern::matches`] taking the key by
    /// value.
    pub fn matches_key(&self, key: RoutingKey) -> bool {
        self.matches(&key)
    }
}

impl FromStr for BindingPattern {
    type Err = BrokerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BindingPattern::new(s)
    }
}

impl fmt::Display for BindingPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for BindingPattern {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// AMQP topic match: does `pattern` match `key`?
///
/// Words are dot-separated; `*` matches exactly one word and `#` matches
/// zero or more words. This is the raw algorithm; prefer the validated
/// [`BindingPattern`]/[`RoutingKey`] wrappers in APIs. It re-splits both
/// strings per call and is retained as the naive reference the trie
/// router is property-tested against; the publish hot path uses
/// [`CompiledPattern`] and the per-exchange trie instead.
///
/// # Examples
///
/// ```
/// use mps_broker::topic_matches;
///
/// assert!(topic_matches("a.*.c", "a.b.c"));
/// assert!(topic_matches("a.#", "a"));
/// assert!(topic_matches("#", "anything.at.all"));
/// assert!(!topic_matches("a.*", "a.b.c"));
/// ```
pub fn topic_matches(pattern: &str, key: &str) -> bool {
    let pat: Vec<&str> = pattern.split('.').collect();
    let key: Vec<&str> = key.split('.').collect();
    // dp[j] = does pat[..i] match key[..j]; iterate i over pattern words.
    let mut dp = vec![false; key.len() + 1];
    dp[0] = true;
    for &pw in &pat {
        if pw == "#" {
            // '#' matches zero or more words: propagate any true forward.
            let mut any = false;
            for slot in dp.iter_mut() {
                any |= *slot;
                *slot = any;
            }
        } else {
            // '*' or literal word consumes exactly one key word.
            let mut next = vec![false; key.len() + 1];
            for j in 1..=key.len() {
                if dp[j - 1] && (pw == "*" || pw == key[j - 1]) {
                    next[j] = true;
                }
            }
            dp = next;
        }
    }
    dp[key.len()]
}

/// One word of a [`CompiledPattern`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatternWord {
    /// `*` — matches exactly one key word.
    Star,
    /// `#` — matches zero or more key words.
    Hash,
    /// A literal word, matched byte-for-byte.
    Literal(String),
}

/// A binding pattern compiled once at bind time: the words are pre-split
/// and wildcard-classified, so matching never re-parses the pattern
/// string. This is what exchanges store per binding and what the topic
/// trie is built from.
///
/// # Examples
///
/// ```
/// use mps_broker::{BindingPattern, CompiledPattern};
///
/// let pattern: BindingPattern = "obs.*.Feedback".parse()?;
/// let compiled = CompiledPattern::new(&pattern);
/// assert!(compiled.matches_words(&["obs", "FR75013", "Feedback"]));
/// assert!(!compiled.matches_words(&["obs", "FR75013", "Noise"]));
/// # Ok::<(), mps_broker::BrokerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPattern {
    words: Vec<PatternWord>,
}

impl CompiledPattern {
    /// Compiles a validated pattern by splitting it into classified words.
    pub fn new(pattern: &BindingPattern) -> Self {
        let words = pattern
            .as_str()
            .split('.')
            .map(|w| match w {
                "*" => PatternWord::Star,
                "#" => PatternWord::Hash,
                literal => PatternWord::Literal(literal.to_owned()),
            })
            .collect();
        Self { words }
    }

    /// The pre-split pattern words.
    pub fn words(&self) -> &[PatternWord] {
        &self.words
    }

    /// Whether this pattern matches an already-split routing key.
    ///
    /// Same dynamic program as [`topic_matches`], but over the pre-split
    /// words: the caller splits the key once per publish instead of once
    /// per binding per publish.
    pub fn matches_words(&self, key: &[&str]) -> bool {
        let mut dp = vec![false; key.len() + 1];
        dp[0] = true;
        for pw in &self.words {
            match pw {
                PatternWord::Hash => {
                    let mut any = false;
                    for slot in dp.iter_mut() {
                        any |= *slot;
                        *slot = any;
                    }
                }
                PatternWord::Star | PatternWord::Literal(_) => {
                    let mut next = vec![false; key.len() + 1];
                    for j in 1..=key.len() {
                        let word_ok = match pw {
                            PatternWord::Literal(w) => w == key[j - 1],
                            _ => true,
                        };
                        if dp[j - 1] && word_ok {
                            next[j] = true;
                        }
                    }
                    dp = next;
                }
            }
        }
        dp[key.len()]
    }
}

impl From<&BindingPattern> for CompiledPattern {
    fn from(pattern: &BindingPattern) -> Self {
        CompiledPattern::new(pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_patterns_match_exactly() {
        assert!(topic_matches("a.b.c", "a.b.c"));
        assert!(!topic_matches("a.b.c", "a.b"));
        assert!(!topic_matches("a.b", "a.b.c"));
        assert!(!topic_matches("a.b.c", "a.b.d"));
    }

    #[test]
    fn star_matches_exactly_one_word() {
        assert!(topic_matches("a.*.c", "a.b.c"));
        assert!(topic_matches("*", "a"));
        assert!(!topic_matches("*", "a.b"));
        assert!(!topic_matches("a.*", "a"));
        assert!(!topic_matches("a.*.c", "a.b.b.c"));
    }

    #[test]
    fn hash_matches_zero_or_more() {
        assert!(topic_matches("#", "a"));
        assert!(topic_matches("#", "a.b.c"));
        assert!(topic_matches("a.#", "a"));
        assert!(topic_matches("a.#", "a.b.c.d"));
        assert!(topic_matches("#.c", "c"));
        assert!(topic_matches("#.c", "a.b.c"));
        assert!(!topic_matches("#.c", "a.b"));
    }

    #[test]
    fn mixed_wildcards() {
        assert!(topic_matches("a.#.z", "a.z"));
        assert!(topic_matches("a.#.z", "a.b.c.z"));
        assert!(topic_matches("a.*.#", "a.b"));
        assert!(topic_matches("a.*.#", "a.b.c.d"));
        assert!(!topic_matches("a.*.#", "a"));
        assert!(topic_matches("#.#", "a"));
        assert!(topic_matches("#.*.#", "a.b.c"));
        assert!(!topic_matches("*.*", "a"));
    }

    #[test]
    fn rabbitmq_documentation_examples() {
        // From the RabbitMQ topic tutorial: quick.orange.rabbit etc.
        let p1 = "*.orange.*";
        let p2 = "*.*.rabbit";
        let p3 = "lazy.#";
        assert!(topic_matches(p1, "quick.orange.rabbit"));
        assert!(topic_matches(p2, "quick.orange.rabbit"));
        assert!(topic_matches(p1, "lazy.orange.elephant"));
        assert!(topic_matches(p3, "lazy.brown.fox"));
        assert!(topic_matches(p3, "lazy.pink.rabbit"));
        assert!(!topic_matches(p1, "quick.brown.fox"));
        assert!(!topic_matches(p2, "quick.orange.male.rabbit"));
        assert!(topic_matches(p3, "lazy.orange.male.rabbit"));
    }

    #[test]
    fn routing_key_validation() {
        assert!(RoutingKey::new("obs.FR75013.Feedback").is_ok());
        assert!(RoutingKey::new("a-b_c.d1").is_ok());
        assert!(RoutingKey::new("").is_err());
        assert!(RoutingKey::new("a..b").is_err());
        assert!(
            RoutingKey::new("a.*").is_err(),
            "wildcards not allowed in keys"
        );
        assert!(RoutingKey::new("a.#").is_err());
        assert!(RoutingKey::new("a b").is_err());
        assert!(RoutingKey::new("x".repeat(256)).is_err());
    }

    #[test]
    fn pattern_validation() {
        assert!(BindingPattern::new("obs.*.Feedback").is_ok());
        assert!(BindingPattern::new("#").is_ok());
        assert!(BindingPattern::new("a.**").is_err(), "** is not a word");
        assert!(BindingPattern::new("a..b").is_err());
        assert!(BindingPattern::new("").is_err());
    }

    #[test]
    fn pattern_matches_wrapper() {
        let p: BindingPattern = "obs.#".parse().unwrap();
        let k: RoutingKey = "obs.FR75013.noise".parse().unwrap();
        assert!(p.matches(&k));
        assert!(p.matches_key(k));
    }

    #[test]
    fn key_accessors() {
        let k: RoutingKey = "a.b".parse().unwrap();
        assert_eq!(k.as_str(), "a.b");
        assert_eq!(k.as_ref(), "a.b");
        assert_eq!(k.to_string(), "a.b");
        assert_eq!(k.words().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn compiled_pattern_words_are_classified() {
        let p: BindingPattern = "obs.*.#.Feedback".parse().unwrap();
        let c = CompiledPattern::new(&p);
        assert_eq!(
            c.words(),
            &[
                PatternWord::Literal("obs".to_owned()),
                PatternWord::Star,
                PatternWord::Hash,
                PatternWord::Literal("Feedback".to_owned()),
            ]
        );
        assert_eq!(CompiledPattern::from(&p), c);
    }

    #[test]
    fn compiled_pattern_agrees_with_naive_matcher() {
        let patterns = [
            "a.b.c", "a.*.c", "a.#", "#", "#.c", "a.#.z", "a.*.#", "#.#", "#.*.#", "*.*",
        ];
        let keys = ["a", "a.b", "a.b.c", "a.z", "a.b.c.z", "c", "x.y"];
        for pat in patterns {
            let compiled = CompiledPattern::new(&pat.parse().unwrap());
            for key in keys {
                let words: Vec<&str> = key.split('.').collect();
                assert_eq!(
                    compiled.matches_words(&words),
                    topic_matches(pat, key),
                    "pattern {pat} vs key {key}"
                );
            }
        }
    }

    #[test]
    fn serde_transparent() {
        let k: RoutingKey = "a.b".parse().unwrap();
        assert_eq!(serde_json::to_string(&k).unwrap(), "\"a.b\"");
        let p: BindingPattern = "a.#".parse().unwrap();
        assert_eq!(serde_json::to_string(&p).unwrap(), "\"a.#\"");
    }
}
