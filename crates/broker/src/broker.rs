//! The broker: exchanges, queues, bindings, publish/consume.

use crate::durability::{self, BrokerDurabilityConfig, BrokerDurable, MessageView, QueueSnapshot};
use crate::metrics::MetricsSnapshot;
use crate::router::{ExchangeIndex, RouteCache};
use crate::topic::CompiledPattern;
use crate::{BindingPattern, BrokerError, BrokerMetrics, Delivery, Message, RoutingKey};
use bytes::Bytes;
use mps_telemetry::trace::{
    encode_contexts, parse_contexts, FlightRecorder, Hop, Outcome, SpanRecord, SENT_MS_HEADER,
    TRACE_HEADER,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// The kind of an exchange, determining its routing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeType {
    /// Routes to bindings whose key equals the message routing key.
    Direct,
    /// Routes to every binding, ignoring the routing key.
    Fanout,
    /// Routes to bindings whose pattern matches the routing key
    /// (`*` = one word, `#` = zero or more words).
    Topic,
}

impl fmt::Display for ExchangeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExchangeType::Direct => "direct",
            ExchangeType::Fanout => "fanout",
            ExchangeType::Topic => "topic",
        })
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Target {
    Queue(String),
    Exchange(String),
}

#[derive(Debug, Clone)]
struct Binding {
    pattern: BindingPattern,
    /// Pre-split pattern, compiled once at bind time — the publish path
    /// never re-parses the pattern string.
    compiled: CompiledPattern,
    target: Target,
}

#[derive(Debug)]
struct ExchangeState {
    kind: ExchangeType,
    bindings: Vec<Binding>,
    /// Routing index over `bindings` (trie for topic, key map for
    /// direct); rebuilt whenever bindings are removed, appended to on
    /// bind. Binding ids are positions in `bindings`.
    index: ExchangeIndex,
}

impl ExchangeState {
    fn new(kind: ExchangeType) -> Self {
        Self {
            kind,
            bindings: Vec::new(),
            index: ExchangeIndex::empty(kind),
        }
    }

    /// Appends a binding unless an identical one exists; returns whether
    /// the topology changed.
    fn add_binding(&mut self, binding: Binding) -> bool {
        if self
            .bindings
            .iter()
            .any(|b| b.pattern == binding.pattern && b.target == binding.target)
        {
            return false;
        }
        let id = self.bindings.len();
        self.index.insert(&binding.pattern, &binding.compiled, id);
        self.bindings.push(binding);
        true
    }

    /// Drops bindings failing `keep`; returns whether any were removed
    /// (the index is rebuilt, since removal renumbers binding ids).
    fn retain_bindings(&mut self, keep: impl Fn(&Binding) -> bool) -> bool {
        let before = self.bindings.len();
        self.bindings.retain(|b| keep(b));
        if self.bindings.len() == before {
            return false;
        }
        self.index = ExchangeIndex::rebuild(
            self.kind,
            self.bindings.iter().map(|b| (&b.pattern, &b.compiled)),
        );
        true
    }
}

/// A queue's dead-letter policy: after a message has been delivered
/// `max_delivery_attempts` times and nacked back each time, the next nack
/// moves it to the `target` queue instead of requeueing it — the AMQP
/// dead-letter-exchange pattern, which keeps poison messages from cycling
/// through a consumer forever while never losing them silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetterPolicy {
    /// Deliveries a message may consume before it is dead-lettered.
    pub max_delivery_attempts: u32,
    /// Queue that receives exhausted messages.
    pub target: String,
}

#[derive(Debug, Default)]
struct QueueState {
    /// Ready messages, each with the number of times it was already
    /// delivered (0 = fresh, > 0 = redelivery) and its durable id
    /// (0 on in-memory brokers).
    ready: VecDeque<(Arc<Message>, u32, u64)>,
    /// Unacked deliveries, keyed by tag, with the delivery count
    /// *including* the in-flight one and the durable id.
    unacked: BTreeMap<u64, (Arc<Message>, u32, u64)>,
    next_tag: u64,
    capacity: Option<usize>,
    enqueued_total: u64,
    dead_letter: Option<DeadLetterPolicy>,
}

#[derive(Debug, Default)]
struct State {
    exchanges: BTreeMap<String, ExchangeState>,
    queues: BTreeMap<String, QueueState>,
    /// Next durable id to assign to an enqueued message copy; starts at
    /// 1 on durable brokers, unused (0) on in-memory ones.
    next_durable_id: u64,
    /// Memoized `(entry exchange, key)` → destination-queue sets;
    /// invalidated on every bind/unbind/delete.
    route_cache: RouteCache,
}

/// Management view of an exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeInfo {
    /// Exchange name.
    pub name: String,
    /// Exchange type.
    pub kind: ExchangeType,
    /// Number of bindings out of this exchange.
    pub bindings: usize,
}

/// Management view of a queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueInfo {
    /// Queue name.
    pub name: String,
    /// Messages ready for delivery.
    pub ready: usize,
    /// Messages delivered but not yet acknowledged.
    pub unacked: usize,
    /// Total messages ever enqueued.
    pub enqueued_total: u64,
    /// Capacity limit, if bounded.
    pub capacity: Option<usize>,
    /// Dead-letter target, if the queue has a dead-letter policy.
    pub dead_letter_to: Option<String>,
}

/// An in-process AMQP-style message broker.
///
/// See the [crate documentation](crate) for the model and an example. All
/// methods take `&self`; the broker is internally synchronised and can be
/// shared across threads behind an [`Arc`].
///
/// Brokers are in-memory by default; [`Broker::open_durable`]
/// write-ahead-logs every queue transition and replays the log on reopen
/// — see [`mod@crate::durability`].
#[derive(Debug, Default)]
pub struct Broker {
    state: Mutex<State>,
    metrics: BrokerMetrics,
    durable: Option<BrokerDurable>,
}

impl Broker {
    /// Creates an empty broker (no exchanges, no queues).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a durable broker: recovers topology and queue contents from
    /// the log in `config.dir` (creating it on first open) and
    /// write-ahead-logs every subsequent declaration and queue
    /// transition.
    ///
    /// Topology (exchanges, bindings, capacities, dead-letter policies)
    /// is persisted and restored before queue transitions are replayed,
    /// so applications need not re-declare anything on startup
    /// (re-declaring stays idempotent and keeps recovered messages).
    /// Messages that were unacked at the crash come back as ready
    /// (at-least-once).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Durability`] if the log cannot be opened
    /// or replayed.
    pub fn open_durable(config: BrokerDurabilityConfig) -> Result<Self, BrokerError> {
        let (wal, recovered) =
            mps_wal::Wal::open(&config.dir, config.wal).map_err(durability::wal_err)?;
        let replayed = durability::replay(&recovered)?;

        // Topology first: exchanges, queue shells with capacities,
        // bindings, dead-letter policies. Bindings whose endpoint vanished
        // later in the log are skipped — same ignore-unknown policy as
        // message deltas.
        let mut exchanges: BTreeMap<String, ExchangeState> = BTreeMap::new();
        for (name, kind) in &replayed.topology.exchanges {
            exchanges.insert(name.clone(), ExchangeState::new(*kind));
        }
        let mut queues: BTreeMap<String, QueueState> = BTreeMap::new();
        for (name, capacity) in &replayed.topology.queue_capacities {
            queues.insert(
                name.clone(),
                QueueState {
                    capacity: *capacity,
                    ..QueueState::default()
                },
            );
        }
        for (ex_name, queue, pattern) in &replayed.topology.queue_bindings {
            if !queues.contains_key(queue) {
                continue;
            }
            let Some(ex) = exchanges.get_mut(ex_name) else {
                continue;
            };
            let pattern = BindingPattern::new(pattern.as_str())?;
            let compiled = CompiledPattern::new(&pattern);
            ex.add_binding(Binding {
                pattern,
                compiled,
                target: Target::Queue(queue.clone()),
            });
        }
        for (source, destination, pattern) in &replayed.topology.exchange_bindings {
            if !exchanges.contains_key(destination) {
                continue;
            }
            let Some(ex) = exchanges.get_mut(source) else {
                continue;
            };
            let pattern = BindingPattern::new(pattern.as_str())?;
            let compiled = CompiledPattern::new(&pattern);
            ex.add_binding(Binding {
                pattern,
                compiled,
                target: Target::Exchange(destination.clone()),
            });
        }
        for (queue, (max, target)) in &replayed.topology.dead_letters {
            if !queues.contains_key(target) {
                continue;
            }
            if let Some(q) = queues.get_mut(queue) {
                q.dead_letter = Some(DeadLetterPolicy {
                    max_delivery_attempts: *max,
                    target: target.clone(),
                });
            }
        }

        for (name, entries) in replayed.queues {
            let q = queues.entry(name).or_default();
            for e in entries {
                let mut message = Message::new(RoutingKey::new(&e.key)?, e.payload);
                for (k, v) in e.headers {
                    message = message.with_header(k, v);
                }
                q.ready.push_back((Arc::new(message), e.deliveries, e.id));
            }
            q.enqueued_total = q.ready.len() as u64;
        }
        let state = State {
            exchanges,
            queues,
            next_durable_id: replayed.next_id,
            ..State::default()
        };
        Ok(Self {
            state: Mutex::new(state),
            metrics: BrokerMetrics::default(),
            durable: Some(BrokerDurable::new(wal, config.snapshot_every)),
        })
    }

    /// Whether this broker write-ahead-logs its queue transitions.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Snapshots the full queue state into the log and compacts covered
    /// segments. Returns the LSN the snapshot covers through.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Durability`] on an in-memory broker or if
    /// the snapshot cannot be written.
    pub fn checkpoint(&self) -> Result<u64, BrokerError> {
        let durable = self
            .durable
            .as_ref()
            .ok_or_else(|| BrokerError::Durability("broker is not durable".into()))?;
        let state = self.state.lock();
        let mut view: BTreeMap<String, Vec<durability::RecoveredEntry>> = BTreeMap::new();
        for (name, q) in &state.queues {
            let mut entries: Vec<durability::RecoveredEntry> = q
                .ready
                .iter()
                .map(|(m, d, id)| durability::entry_of(m, *d, *id))
                .collect();
            // An unacked delivery is durably still owed to the queue:
            // fold it back as ready, in tag order, so recovery
            // redelivers it.
            entries.extend(
                q.unacked
                    .values()
                    .map(|(m, d, id)| durability::entry_of(m, *d, *id)),
            );
            if !entries.is_empty() {
                view.insert(name.clone(), entries);
            }
        }
        let mut topology = durability::ReplayedTopology::default();
        for (name, ex) in &state.exchanges {
            topology.exchanges.insert(name.clone(), ex.kind);
            for b in &ex.bindings {
                let pattern = b.pattern.as_str().to_owned();
                match &b.target {
                    Target::Queue(q) => {
                        topology
                            .queue_bindings
                            .push((name.clone(), q.clone(), pattern));
                    }
                    Target::Exchange(e) => {
                        topology
                            .exchange_bindings
                            .push((name.clone(), e.clone(), pattern));
                    }
                }
            }
        }
        for (name, q) in &state.queues {
            topology.queue_capacities.insert(name.clone(), q.capacity);
            if let Some(policy) = &q.dead_letter {
                topology.dead_letters.insert(
                    name.clone(),
                    (policy.max_delivery_attempts, policy.target.clone()),
                );
            }
        }
        let bytes = durability::encode_snapshot(&view, state.next_durable_id, &topology)?;
        durable.write_snapshot(&bytes)
    }

    /// Takes a snapshot when the cadence says so; snapshot failures are
    /// deliberately swallowed (the log itself is still intact, and a
    /// crash-killed instance fails its next mutation anyway). Must be
    /// called *without* the state lock held.
    fn maybe_snapshot(&self) {
        if self
            .durable
            .as_ref()
            .is_some_and(BrokerDurable::snapshot_due)
        {
            let _ = self.checkpoint();
        }
    }

    /// Management view of one queue's full message state — ready and
    /// unacked copies in order, with durable ids and delivery counts.
    /// Two recovered brokers with equal snapshots hold identical state.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::QueueNotFound`] if the queue does not exist.
    pub fn queue_snapshot(&self, name: &str) -> Result<QueueSnapshot, BrokerError> {
        let state = self.state.lock();
        let q = state
            .queues
            .get(name)
            .ok_or_else(|| BrokerError::QueueNotFound(name.into()))?;
        let view = |m: &Arc<Message>, deliveries: u32, id: u64| MessageView {
            durable_id: id,
            deliveries,
            key: m.routing_key().as_str().to_owned(),
            payload: m.payload().to_vec(),
        };
        Ok(QueueSnapshot {
            name: name.to_owned(),
            ready: q.ready.iter().map(|(m, d, id)| view(m, *d, *id)).collect(),
            unacked: q
                .unacked
                .values()
                .map(|(m, d, id)| view(m, *d, *id))
                .collect(),
        })
    }

    // ----- management -----------------------------------------------------

    /// Declares an exchange. Redeclaring with the same type is a no-op
    /// (and logs nothing on a durable broker).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::ExchangeTypeMismatch`] if the exchange exists
    /// with a different type, or [`BrokerError::Durability`] if a durable
    /// broker fails to log the declaration.
    pub fn declare_exchange(&self, name: &str, kind: ExchangeType) -> Result<(), BrokerError> {
        let mut state = self.state.lock();
        match state.exchanges.get(name) {
            Some(existing) if existing.kind != kind => {
                return Err(BrokerError::ExchangeTypeMismatch { name: name.into() });
            }
            Some(_) => return Ok(()),
            None => {}
        }
        state
            .exchanges
            .insert(name.to_owned(), ExchangeState::new(kind));
        if let Some(durable) = &self.durable {
            durable.append(&[durability::declare_exchange_delta(name, kind)])?;
        }
        Ok(())
    }

    /// Declares an unbounded queue. Redeclaring is a no-op (and logs
    /// nothing on a durable broker).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Durability`] if a durable broker fails to
    /// log the declaration.
    pub fn declare_queue(&self, name: &str) -> Result<(), BrokerError> {
        self.declare_queue_inner(name, None)
    }

    /// Declares a queue that holds at most `capacity` ready messages;
    /// further publishes to it are dropped (and counted in the metrics).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Durability`] if a durable broker fails to
    /// log the declaration.
    pub fn declare_queue_with_capacity(
        &self,
        name: &str,
        capacity: usize,
    ) -> Result<(), BrokerError> {
        self.declare_queue_inner(name, Some(capacity))
    }

    fn declare_queue_inner(&self, name: &str, capacity: Option<usize>) -> Result<(), BrokerError> {
        let mut state = self.state.lock();
        if state.queues.contains_key(name) {
            return Ok(());
        }
        state.queues.insert(
            name.to_owned(),
            QueueState {
                capacity,
                ..QueueState::default()
            },
        );
        if let Some(durable) = &self.durable {
            durable.append(&[durability::declare_queue_delta(name, capacity)])?;
        }
        Ok(())
    }

    /// Whether an exchange with this name exists.
    pub fn exchange_exists(&self, name: &str) -> bool {
        self.state.lock().exchanges.contains_key(name)
    }

    /// Whether a queue with this name exists.
    pub fn queue_exists(&self, name: &str) -> bool {
        self.state.lock().queues.contains_key(name)
    }

    /// Binds `queue` to `exchange` with a topic `pattern`. Duplicate
    /// bindings are idempotent.
    ///
    /// # Errors
    ///
    /// Returns a not-found error if either endpoint is missing, or
    /// [`BrokerError::InvalidKey`] for a malformed pattern.
    pub fn bind_queue(
        &self,
        exchange: &str,
        queue: &str,
        pattern: &str,
    ) -> Result<(), BrokerError> {
        let parsed = BindingPattern::new(pattern)?;
        let mut state = self.state.lock();
        if !state.queues.contains_key(queue) {
            return Err(BrokerError::QueueNotFound(queue.into()));
        }
        let ex = state
            .exchanges
            .get_mut(exchange)
            .ok_or_else(|| BrokerError::ExchangeNotFound(exchange.into()))?;
        let compiled = CompiledPattern::new(&parsed);
        let changed = ex.add_binding(Binding {
            pattern: parsed,
            compiled,
            target: Target::Queue(queue.to_owned()),
        });
        if changed {
            let affected = exchanges_reaching(&state.exchanges, exchange);
            state.route_cache.invalidate_exchanges(&affected);
            if let Some(durable) = &self.durable {
                durable.append(&[durability::bind_queue_delta(exchange, queue, pattern)])?;
            }
        }
        Ok(())
    }

    /// Binds exchange `destination` to exchange `source`: messages routed
    /// by `source` whose key matches `pattern` are re-routed through
    /// `destination` (AMQP exchange-to-exchange binding, used by GoFlow to
    /// chain client exchanges into the application exchange).
    ///
    /// # Errors
    ///
    /// Returns a not-found error if either exchange is missing, or
    /// [`BrokerError::InvalidKey`] for a malformed pattern.
    pub fn bind_exchange(
        &self,
        source: &str,
        destination: &str,
        pattern: &str,
    ) -> Result<(), BrokerError> {
        let parsed = BindingPattern::new(pattern)?;
        let mut state = self.state.lock();
        if !state.exchanges.contains_key(destination) {
            return Err(BrokerError::ExchangeNotFound(destination.into()));
        }
        let ex = state
            .exchanges
            .get_mut(source)
            .ok_or_else(|| BrokerError::ExchangeNotFound(source.into()))?;
        let compiled = CompiledPattern::new(&parsed);
        let changed = ex.add_binding(Binding {
            pattern: parsed,
            compiled,
            target: Target::Exchange(destination.to_owned()),
        });
        if changed {
            let affected = exchanges_reaching(&state.exchanges, source);
            state.route_cache.invalidate_exchanges(&affected);
            if let Some(durable) = &self.durable {
                durable.append(&[durability::bind_exchange_delta(
                    source,
                    destination,
                    pattern,
                )])?;
            }
        }
        Ok(())
    }

    /// Removes a queue binding. Removing a non-existent binding is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::ExchangeNotFound`] if the exchange is missing.
    pub fn unbind_queue(
        &self,
        exchange: &str,
        queue: &str,
        pattern: &str,
    ) -> Result<(), BrokerError> {
        let parsed = BindingPattern::new(pattern)?;
        let mut state = self.state.lock();
        let ex = state
            .exchanges
            .get_mut(exchange)
            .ok_or_else(|| BrokerError::ExchangeNotFound(exchange.into()))?;
        let target = Target::Queue(queue.to_owned());
        let changed = ex.retain_bindings(|b| !(b.pattern == parsed && b.target == target));
        if changed {
            let affected = exchanges_reaching(&state.exchanges, exchange);
            state.route_cache.invalidate_exchanges(&affected);
            if let Some(durable) = &self.durable {
                durable.append(&[durability::unbind_queue_delta(exchange, queue, pattern)])?;
            }
        }
        Ok(())
    }

    /// Deletes an exchange and every binding pointing at it.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::ExchangeNotFound`] if it does not exist, or
    /// [`BrokerError::Durability`] if a durable broker fails to log the
    /// deletion.
    pub fn delete_exchange(&self, name: &str) -> Result<(), BrokerError> {
        let mut state = self.state.lock();
        if !state.exchanges.contains_key(name) {
            return Err(BrokerError::ExchangeNotFound(name.into()));
        }
        // Cached routes entering through any exchange that can reach the
        // doomed one may traverse it — compute the set before removal.
        let affected = exchanges_reaching(&state.exchanges, name);
        state.exchanges.remove(name);
        let gone = Target::Exchange(name.to_owned());
        for ex in state.exchanges.values_mut() {
            ex.retain_bindings(|b| b.target != gone);
        }
        state.route_cache.invalidate_exchanges(&affected);
        if let Some(durable) = &self.durable {
            durable.append(&[durability::delete_exchange_delta(name)])?;
        }
        Ok(())
    }

    /// Deletes a queue (with its messages) and every binding pointing at it.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::QueueNotFound`] if it does not exist, or
    /// [`BrokerError::Durability`] if a durable broker fails to log the
    /// deletion.
    pub fn delete_queue(&self, name: &str) -> Result<(), BrokerError> {
        let mut state = self.state.lock();
        if state.queues.remove(name).is_none() {
            return Err(BrokerError::QueueNotFound(name.into()));
        }
        let gone = Target::Queue(name.to_owned());
        let mut touched: Vec<String> = Vec::new();
        for (ex_name, ex) in state.exchanges.iter_mut() {
            if ex.retain_bindings(|b| b.target != gone) {
                touched.push(ex_name.clone());
            }
        }
        // Only routes that could name the deleted queue are stale: those
        // entering through an exchange that reaches one that bound it.
        let mut affected = BTreeSet::new();
        for ex_name in &touched {
            affected.extend(exchanges_reaching(&state.exchanges, ex_name));
        }
        state.route_cache.invalidate_exchanges(&affected);
        if let Some(durable) = &self.durable {
            durable.append(&[durability::delete_queue_delta(name)])?;
        }
        drop(state);
        self.maybe_snapshot();
        Ok(())
    }

    /// Discards all ready messages in a queue, returning how many were
    /// dropped (unacked deliveries are unaffected, as in AMQP `purge`).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::QueueNotFound`] if the queue does not
    /// exist, or [`BrokerError::Durability`] if a durable broker fails
    /// to log the purge.
    pub fn purge_queue(&self, name: &str) -> Result<usize, BrokerError> {
        let mut state = self.state.lock();
        let q = state
            .queues
            .get_mut(name)
            .ok_or_else(|| BrokerError::QueueNotFound(name.into()))?;
        let n = q.ready.len();
        let ids: Vec<u64> = q.ready.iter().map(|(_, _, id)| *id).collect();
        q.ready.clear();
        if let Some(durable) = &self.durable {
            if !ids.is_empty() {
                durable.append(&[durability::purge_delta(name, &ids)])?;
            }
        }
        drop(state);
        self.maybe_snapshot();
        Ok(n)
    }

    /// Lists all exchanges in name order.
    pub fn exchanges(&self) -> Vec<ExchangeInfo> {
        let state = self.state.lock();
        state
            .exchanges
            .iter()
            .map(|(name, ex)| ExchangeInfo {
                name: name.clone(),
                kind: ex.kind,
                bindings: ex.bindings.len(),
            })
            .collect()
    }

    /// Lists all queues in name order.
    pub fn queues(&self) -> Vec<QueueInfo> {
        let state = self.state.lock();
        state
            .queues
            .iter()
            .map(|(name, q)| QueueInfo {
                name: name.clone(),
                ready: q.ready.len(),
                unacked: q.unacked.len(),
                enqueued_total: q.enqueued_total,
                capacity: q.capacity,
                dead_letter_to: q.dead_letter.as_ref().map(|p| p.target.clone()),
            })
            .collect()
    }

    /// Attaches a [`DeadLetterPolicy`] to `queue`: once a message has been
    /// delivered `max_delivery_attempts` times and nacked back with
    /// `requeue` each time, the next nack moves it to `target` instead of
    /// requeueing it. Both queues must already exist; reconfiguring
    /// replaces the previous policy.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::QueueNotFound`] if either queue is missing
    /// and [`BrokerError::InvalidDeadLetter`] if the policy is ill-formed
    /// (zero attempts, or a queue dead-lettering to itself).
    pub fn configure_dead_letter(
        &self,
        queue: &str,
        max_delivery_attempts: u32,
        target: &str,
    ) -> Result<(), BrokerError> {
        if max_delivery_attempts == 0 {
            return Err(BrokerError::InvalidDeadLetter(
                "max_delivery_attempts must be at least 1".into(),
            ));
        }
        if queue == target {
            return Err(BrokerError::InvalidDeadLetter(format!(
                "queue {queue:?} cannot dead-letter to itself"
            )));
        }
        let mut state = self.state.lock();
        if !state.queues.contains_key(target) {
            return Err(BrokerError::QueueNotFound(target.into()));
        }
        let q = state
            .queues
            .get_mut(queue)
            .ok_or_else(|| BrokerError::QueueNotFound(queue.into()))?;
        let policy = DeadLetterPolicy {
            max_delivery_attempts,
            target: target.to_owned(),
        };
        let changed = q.dead_letter.as_ref() != Some(&policy);
        q.dead_letter = Some(policy);
        if changed {
            if let Some(durable) = &self.durable {
                durable.append(&[durability::dead_letter_policy_delta(
                    queue,
                    max_delivery_attempts,
                    target,
                )])?;
            }
        }
        Ok(())
    }

    /// The dead-letter policy of a queue, if one is configured.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::QueueNotFound`] if the queue does not exist.
    pub fn dead_letter_policy(&self, queue: &str) -> Result<Option<DeadLetterPolicy>, BrokerError> {
        let state = self.state.lock();
        state
            .queues
            .get(queue)
            .map(|q| q.dead_letter.clone())
            .ok_or_else(|| BrokerError::QueueNotFound(queue.into()))
    }

    /// Number of ready messages in a queue.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::QueueNotFound`] if the queue does not exist.
    pub fn queue_depth(&self, name: &str) -> Result<usize, BrokerError> {
        let state = self.state.lock();
        state
            .queues
            .get(name)
            .map(|q| q.ready.len())
            .ok_or_else(|| BrokerError::QueueNotFound(name.into()))
    }

    // ----- publish / consume ----------------------------------------------

    /// Publishes a payload to `exchange` with routing key `key`. Returns
    /// the number of queues the message was enqueued on (0 means the
    /// message was unroutable and dropped, as with an unset AMQP
    /// `mandatory` flag).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::ExchangeNotFound`] for an unknown exchange or
    /// [`BrokerError::InvalidKey`] for a malformed routing key.
    pub fn publish(
        &self,
        exchange: &str,
        key: &str,
        payload: impl Into<Bytes>,
    ) -> Result<usize, BrokerError> {
        let key = RoutingKey::new(key)?;
        self.publish_message(exchange, Message::new(key, payload))
    }

    /// Publishes a prepared [`Message`] to `exchange`. See
    /// [`Broker::publish`].
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::ExchangeNotFound`] for an unknown exchange.
    pub fn publish_message(&self, exchange: &str, message: Message) -> Result<usize, BrokerError> {
        let mut state = self.state.lock();
        if !state.exchanges.contains_key(exchange) {
            return Err(BrokerError::ExchangeNotFound(exchange.into()));
        }
        self.metrics.on_publish();

        // Destination set: served from the routing-result cache when the
        // topology has not changed since this (exchange, key) was last
        // routed, else recomputed by the indexed breadth-first walk.
        let key = message.routing_key().clone();
        let targets = match state.route_cache.get(exchange, key.as_str()) {
            Some(cached) => {
                self.metrics.on_route_cache_hit();
                cached
            }
            None => {
                self.metrics.on_route_cache_miss();
                let routed = Arc::new(compute_route(&state, exchange, &key));
                state
                    .route_cache
                    .insert(exchange, key.as_str(), Arc::clone(&routed));
                routed
            }
        };

        // Settle the capacity-aware accept set before freezing the message
        // behind an `Arc`, so the broker-publish trace span can carry the
        // routed count and the trace header can be re-parented under it.
        let mut accepting: Vec<String> = Vec::new();
        for queue_name in targets.iter() {
            if let Some(q) = state.queues.get(queue_name) {
                if q.capacity.is_some_and(|cap| q.ready.len() >= cap) {
                    self.metrics.on_dropped();
                    continue;
                }
                accepting.push(queue_name.clone());
            }
        }
        let enqueued = accepting.len();
        let message = trace_publish(message, enqueued, targets.is_empty());

        let shared = Arc::new(message);
        let mut deltas = Vec::new();
        for queue_name in &accepting {
            let id = if self.durable.is_some() {
                let id = state.next_durable_id;
                state.next_durable_id += 1;
                id
            } else {
                0
            };
            let q = state
                .queues
                .get_mut(queue_name)
                // mps-lint: allow(L003) -- accept set was built from existing queues under the same lock; no deletion can interleave
                .expect("accept set built from existing queues");
            q.ready.push_back((Arc::clone(&shared), 0, id));
            q.enqueued_total += 1;
            self.metrics.sample_queue_depth(queue_name, q.ready.len());
            if self.durable.is_some() {
                deltas.push(durability::enqueue_delta(
                    queue_name,
                    &durability::entry_of(&shared, 0, id),
                ));
            }
        }
        // One group-committed append (one fsync) covers the whole fan-out.
        if let Some(durable) = &self.durable {
            durable.append(&deltas)?;
        }
        self.metrics.on_routed(enqueued as u64);
        drop(state);
        self.maybe_snapshot();
        Ok(enqueued)
    }

    /// Takes up to `max` ready messages from a queue. Delivered messages
    /// move to the unacked set until [`Broker::ack`]ed or
    /// [`Broker::nack`]ed.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::QueueNotFound`] if the queue does not exist.
    pub fn consume(&self, queue: &str, max: usize) -> Result<Vec<Delivery>, BrokerError> {
        let mut state = self.state.lock();
        let q = state
            .queues
            .get_mut(queue)
            .ok_or_else(|| BrokerError::QueueNotFound(queue.into()))?;
        let n = max.min(q.ready.len());
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let Some((message, prior_deliveries, durable_id)) = q.ready.pop_front() else {
                break;
            };
            let tag = q.next_tag;
            q.next_tag += 1;
            // Deliveries are deliberately not logged: an unacked message
            // is restored as ready on recovery (at-least-once).
            q.unacked.insert(
                tag,
                (Arc::clone(&message), prior_deliveries + 1, durable_id),
            );
            out.push(Delivery {
                tag,
                message,
                redelivered: prior_deliveries > 0,
            });
        }
        self.metrics.sample_queue_depth(queue, q.ready.len());
        self.metrics.on_delivered(out.len() as u64);
        Ok(out)
    }

    /// Acknowledges a delivery, removing it from the unacked set. On a
    /// durable broker the ack is logged, so the message is never
    /// resurrected by recovery.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownDeliveryTag`] for an unknown tag,
    /// [`BrokerError::QueueNotFound`] for an unknown queue, and
    /// [`BrokerError::Durability`] if logging the ack fails.
    pub fn ack(&self, queue: &str, tag: u64) -> Result<(), BrokerError> {
        let mut state = self.state.lock();
        let q = state
            .queues
            .get_mut(queue)
            .ok_or_else(|| BrokerError::QueueNotFound(queue.into()))?;
        let (_, _, durable_id) = q
            .unacked
            .remove(&tag)
            .ok_or(BrokerError::UnknownDeliveryTag {
                queue: queue.into(),
                tag,
            })?;
        let depth = q.ready.len();
        if let Some(durable) = &self.durable {
            durable.append(&[durability::ack_delta(queue, durable_id)])?;
        }
        self.metrics.on_acked();
        self.metrics.sample_queue_depth(queue, depth);
        drop(state);
        self.maybe_snapshot();
        Ok(())
    }

    /// Acknowledges a batch of deliveries from one queue with a single
    /// group-committed log append — one fsync settles the whole batch,
    /// the hot-path counterpart of per-delivery [`Broker::ack`] used by
    /// batched ingest. Tags are settled in order; on the first unknown
    /// tag the acks gathered so far are still committed and the error is
    /// returned.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownDeliveryTag`] for an unknown tag,
    /// [`BrokerError::QueueNotFound`] for an unknown queue, and
    /// [`BrokerError::Durability`] if logging the batch fails.
    pub fn ack_many(&self, queue: &str, tags: &[u64]) -> Result<(), BrokerError> {
        if tags.is_empty() {
            return Ok(());
        }
        let mut state = self.state.lock();
        let q = state
            .queues
            .get_mut(queue)
            .ok_or_else(|| BrokerError::QueueNotFound(queue.into()))?;
        let mut deltas = Vec::with_capacity(tags.len());
        let mut settled: u64 = 0;
        let mut unknown = None;
        for &tag in tags {
            match q.unacked.remove(&tag) {
                Some((_, _, durable_id)) => {
                    settled += 1;
                    if self.durable.is_some() {
                        deltas.push(durability::ack_delta(queue, durable_id));
                    }
                }
                None => {
                    unknown = Some(tag);
                    break;
                }
            }
        }
        let depth = q.ready.len();
        if let Some(durable) = &self.durable {
            durable.append(&deltas)?;
        }
        self.metrics.on_acked_many(settled);
        self.metrics.sample_queue_depth(queue, depth);
        drop(state);
        self.maybe_snapshot();
        match unknown {
            None => Ok(()),
            Some(tag) => Err(BrokerError::UnknownDeliveryTag {
                queue: queue.into(),
                tag,
            }),
        }
    }

    /// Negatively acknowledges a delivery. With `requeue`, the message
    /// returns to the **front** of the queue flagged as redelivered —
    /// unless the queue's [`DeadLetterPolicy`] is exhausted, in which case
    /// the message moves to the dead-letter queue instead. Without
    /// `requeue` it is discarded. Every nack counts as a delivery failure
    /// in the metrics.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownDeliveryTag`] for an unknown tag,
    /// [`BrokerError::QueueNotFound`] for an unknown queue, and
    /// [`BrokerError::Durability`] if a durable broker fails to log the
    /// transition.
    pub fn nack(&self, queue: &str, tag: u64, requeue: bool) -> Result<(), BrokerError> {
        let mut state = self.state.lock();
        let (message, attempts, durable_id, dead_letter_to) = {
            let q = state
                .queues
                .get_mut(queue)
                .ok_or_else(|| BrokerError::QueueNotFound(queue.into()))?;
            let (message, attempts, durable_id) =
                q.unacked
                    .remove(&tag)
                    .ok_or(BrokerError::UnknownDeliveryTag {
                        queue: queue.into(),
                        tag,
                    })?;
            let dead_letter_to = q
                .dead_letter
                .as_ref()
                .filter(|policy| attempts >= policy.max_delivery_attempts)
                .map(|policy| policy.target.clone());
            (message, attempts, durable_id, dead_letter_to)
        };
        self.metrics.on_delivery_failed();
        let durable_on = self.durable.is_some();
        let delta = if !requeue {
            self.metrics.on_dropped();
            trace_message_terminal(
                &message,
                Hop::BrokerDlq,
                Outcome::Dropped,
                &[("reason", "nack_discarded"), ("queue", queue)],
            );
            durable_on.then(|| durability::discard_delta(queue, durable_id))
        } else {
            match dead_letter_to {
                None => match state.queues.get_mut(queue) {
                    Some(q) => {
                        q.ready.push_front((message, attempts, durable_id));
                        self.metrics.on_requeued();
                        self.metrics.sample_queue_depth(queue, q.ready.len());
                        durable_on.then(|| durability::requeue_delta(queue, durable_id, attempts))
                    }
                    // The home queue cannot vanish while we hold the lock,
                    // but if it ever did, degrade to a counted drop — never
                    // a panic, never a silent loss. No delta: deleting the
                    // queue already logged the removal of its messages.
                    None => {
                        self.metrics.on_dropped();
                        trace_message_terminal(
                            &message,
                            Hop::BrokerDlq,
                            Outcome::Dropped,
                            &[("reason", "queue_vanished"), ("queue", queue)],
                        );
                        None
                    }
                },
                // Delivery attempts are exhausted: the message leaves its home
                // queue for good. A full or deleted dead-letter queue degrades
                // to a counted drop — never a silent loss.
                Some(target) => match state.queues.get_mut(&target) {
                    Some(dlq) if !dlq.capacity.is_some_and(|cap| dlq.ready.len() >= cap) => {
                        dlq.ready.push_back((Arc::clone(&message), 0, durable_id));
                        dlq.enqueued_total += 1;
                        self.metrics.on_dead_lettered();
                        self.metrics.sample_dlq_depth(&target, dlq.ready.len());
                        trace_message_terminal(
                            &message,
                            Hop::BrokerDlq,
                            Outcome::DeadLettered,
                            &[("attempts", &attempts.to_string()), ("to", &target)],
                        );
                        durable_on
                            .then(|| durability::dead_letter_delta(queue, durable_id, &target))
                    }
                    _ => {
                        self.metrics.on_dropped();
                        trace_message_terminal(
                            &message,
                            Hop::BrokerDlq,
                            Outcome::Dropped,
                            &[("reason", "dlq_unavailable"), ("to", &target)],
                        );
                        durable_on.then(|| durability::discard_delta(queue, durable_id))
                    }
                },
            }
        };
        if let (Some(durable), Some(delta)) = (&self.durable, delta) {
            durable.append(&[delta])?;
        }
        drop(state);
        self.maybe_snapshot();
        Ok(())
    }

    /// Snapshot of the broker counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

/// The set of exchanges from which `changed` is reachable over
/// exchange-to-exchange bindings, including `changed` itself — exactly
/// the route-cache entry points whose memoized destination sets could
/// traverse the changed exchange. Fixpoint over the reversed binding
/// graph; topologies are small and topology changes rare, so the
/// quadratic sweep is fine.
fn exchanges_reaching(
    exchanges: &BTreeMap<String, ExchangeState>,
    changed: &str,
) -> BTreeSet<String> {
    let mut reaching: BTreeSet<String> = BTreeSet::new();
    reaching.insert(changed.to_owned());
    loop {
        let mut grew = false;
        for (name, ex) in exchanges {
            if reaching.contains(name) {
                continue;
            }
            let feeds = ex.bindings.iter().any(|b| match &b.target {
                Target::Exchange(dst) => reaching.contains(dst),
                Target::Queue(_) => false,
            });
            if feeds {
                reaching.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    reaching
}

/// Breadth-first walk across exchange-to-exchange bindings from `entry`,
/// matching `key` against each exchange's routing index, with a visited
/// set for cycle safety. Target queues are deduplicated so a message
/// lands at most once per queue (AMQP semantics); the result is sorted
/// and cacheable — it depends only on the binding topology, never on
/// queue fill.
fn compute_route(state: &State, entry: &str, key: &RoutingKey) -> Vec<String> {
    let key_words: Vec<&str> = key.as_str().split('.').collect();
    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut frontier: VecDeque<String> = VecDeque::new();
    let mut targets: BTreeSet<String> = BTreeSet::new();
    visited.insert(entry.to_owned());
    frontier.push_back(entry.to_owned());
    while let Some(name) = frontier.pop_front() {
        let Some(ex) = state.exchanges.get(&name) else {
            continue;
        };
        for id in ex.index.matching_bindings(key.as_str(), &key_words) {
            let Some(binding) = ex.bindings.get(id) else {
                continue;
            };
            match &binding.target {
                Target::Queue(q) => {
                    targets.insert(q.clone());
                }
                Target::Exchange(e) => {
                    if visited.insert(e.clone()) {
                        frontier.push_back(e.clone());
                    }
                }
            }
        }
    }
    targets.into_iter().collect()
}

/// Records one `broker_publish` span per trace context carried in the
/// message's `x-trace` header and re-parents the header under those
/// spans. A publish that lands on no queue is a terminal counted drop
/// (`unroutable` or `queue_full`); the broker is time-agnostic, so spans
/// are stamped with the sender's `x-trace-sent-ms`. Untraced messages
/// pass through unchanged.
fn trace_publish(message: Message, enqueued: usize, unroutable: bool) -> Message {
    let Some(header) = message.header(TRACE_HEADER) else {
        return message;
    };
    let contexts = parse_contexts(header);
    if contexts.is_empty() {
        return message;
    }
    let at_ms = message
        .header(SENT_MS_HEADER)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let recorder = FlightRecorder::global();
    let mut forwarded = Vec::with_capacity(contexts.len());
    for ctx in &contexts {
        let mut span = SpanRecord::new(ctx.trace, Hop::BrokerPublish, at_ms)
            .parent(ctx.parent)
            .duplicate(ctx.duplicate);
        if enqueued == 0 {
            let reason = if unroutable {
                "unroutable"
            } else {
                "queue_full"
            };
            span = span
                .outcome(Outcome::Dropped)
                .attr("reason", reason.to_owned());
        } else {
            span = span.attr("routed", enqueued.to_string());
        }
        let id = recorder.record(span);
        if enqueued > 0 {
            forwarded.push(ctx.child_of(id));
        }
    }
    if forwarded.is_empty() {
        message
    } else {
        message.with_header(TRACE_HEADER, encode_contexts(&forwarded))
    }
}

/// Records a terminal span at `hop` for every trace context carried in
/// `message` — the broker-side ends of a trace (dead-letter, counted
/// discard). Untraced messages record nothing.
fn trace_message_terminal(
    message: &Message,
    hop: Hop,
    outcome: Outcome,
    attrs: &[(&'static str, &str)],
) {
    let Some(header) = message.header(TRACE_HEADER) else {
        return;
    };
    let at_ms = message
        .header(SENT_MS_HEADER)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    for ctx in parse_contexts(header) {
        let mut span = SpanRecord::new(ctx.trace, hop, at_ms)
            .parent(ctx.parent)
            .duplicate(ctx.duplicate)
            .outcome(outcome);
        for &(k, v) in attrs {
            span = span.attr(k, v.to_owned());
        }
        FlightRecorder::global().record(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker_with_topic_setup() -> Broker {
        let b = Broker::new();
        b.declare_exchange("app", ExchangeType::Topic).unwrap();
        b.declare_queue("q1").unwrap();
        b.declare_queue("q2").unwrap();
        b
    }

    #[test]
    fn declare_exchange_idempotent_same_type() {
        let b = Broker::new();
        b.declare_exchange("e", ExchangeType::Topic).unwrap();
        b.declare_exchange("e", ExchangeType::Topic).unwrap();
        assert_eq!(
            b.declare_exchange("e", ExchangeType::Direct).unwrap_err(),
            BrokerError::ExchangeTypeMismatch { name: "e".into() }
        );
    }

    #[test]
    fn topic_routing_filters_by_pattern() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "obs.paris.#").unwrap();
        b.bind_queue("app", "q2", "obs.*.noise").unwrap();
        let routed = b.publish("app", "obs.paris.noise", &b"x"[..]).unwrap();
        assert_eq!(routed, 2);
        let routed = b.publish("app", "obs.lyon.noise", &b"x"[..]).unwrap();
        assert_eq!(routed, 1);
        assert_eq!(b.queue_depth("q1").unwrap(), 1);
        assert_eq!(b.queue_depth("q2").unwrap(), 2);
    }

    #[test]
    fn direct_exchange_requires_exact_match() {
        let b = Broker::new();
        b.declare_exchange("d", ExchangeType::Direct).unwrap();
        b.declare_queue("q").unwrap();
        b.bind_queue("d", "q", "exact.key").unwrap();
        assert_eq!(b.publish("d", "exact.key", &b""[..]).unwrap(), 1);
        assert_eq!(b.publish("d", "exact.other", &b""[..]).unwrap(), 0);
    }

    #[test]
    fn direct_exchange_treats_star_literally() {
        let b = Broker::new();
        b.declare_exchange("d", ExchangeType::Direct).unwrap();
        b.declare_queue("q").unwrap();
        b.bind_queue("d", "q", "a.*").unwrap();
        // Direct exchanges compare keys literally, so "a.b" must not match.
        assert_eq!(b.publish("d", "a.b", &b""[..]).unwrap(), 0);
    }

    #[test]
    fn fanout_ignores_key() {
        let b = Broker::new();
        b.declare_exchange("f", ExchangeType::Fanout).unwrap();
        b.declare_queue("q1").unwrap();
        b.declare_queue("q2").unwrap();
        b.bind_queue("f", "q1", "ignored").unwrap();
        b.bind_queue("f", "q2", "also-ignored").unwrap();
        assert_eq!(b.publish("f", "whatever.key", &b""[..]).unwrap(), 2);
    }

    #[test]
    fn duplicate_bindings_deliver_once() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "obs.#").unwrap();
        b.bind_queue("app", "q1", "obs.#").unwrap(); // idempotent
        b.bind_queue("app", "q1", "obs.paris.*").unwrap(); // overlapping
        assert_eq!(b.publish("app", "obs.paris.noise", &b""[..]).unwrap(), 1);
        assert_eq!(b.queue_depth("q1").unwrap(), 1);
    }

    #[test]
    fn exchange_to_exchange_chain_routes() {
        // Reproduces the paper's Figure 3: client exchange -> app exchange
        // -> GF queue.
        let b = Broker::new();
        b.declare_exchange("E1", ExchangeType::Topic).unwrap();
        b.declare_exchange("SC", ExchangeType::Topic).unwrap();
        b.declare_queue("GF").unwrap();
        b.bind_exchange("E1", "SC", "#").unwrap();
        b.bind_queue("SC", "GF", "#").unwrap();
        assert_eq!(b.publish("E1", "obs.FR75013.noise", &b"m"[..]).unwrap(), 1);
        assert_eq!(b.queue_depth("GF").unwrap(), 1);
    }

    #[test]
    fn exchange_cycles_terminate() {
        let b = Broker::new();
        b.declare_exchange("a", ExchangeType::Fanout).unwrap();
        b.declare_exchange("x", ExchangeType::Fanout).unwrap();
        b.declare_queue("q").unwrap();
        b.bind_exchange("a", "x", "#").unwrap();
        b.bind_exchange("x", "a", "#").unwrap(); // cycle
        b.bind_queue("x", "q", "#").unwrap();
        assert_eq!(b.publish("a", "k", &b""[..]).unwrap(), 1);
    }

    #[test]
    fn consume_moves_to_unacked_and_ack_clears() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "#").unwrap();
        b.publish("app", "k", &b"1"[..]).unwrap();
        b.publish("app", "k", &b"2"[..]).unwrap();
        let deliveries = b.consume("q1", 10).unwrap();
        assert_eq!(deliveries.len(), 2);
        assert_eq!(deliveries[0].payload().as_ref(), b"1");
        assert!(!deliveries[0].redelivered);
        assert_eq!(b.queue_depth("q1").unwrap(), 0);
        let info = &b.queues()[0]; // queues list sorts by name: q1, q2
        assert_eq!(info.name, "q1");
        assert_eq!(info.unacked, 2);
        b.ack("q1", deliveries[0].tag).unwrap();
        b.ack("q1", deliveries[1].tag).unwrap();
        assert_eq!(b.queues()[0].unacked, 0);
        // Double-ack is an error.
        assert!(matches!(
            b.ack("q1", deliveries[0].tag),
            Err(BrokerError::UnknownDeliveryTag { .. })
        ));
    }

    #[test]
    fn nack_requeues_at_front_with_redelivered_flag() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "#").unwrap();
        b.publish("app", "k", &b"first"[..]).unwrap();
        b.publish("app", "k", &b"second"[..]).unwrap();
        let d = b.consume("q1", 1).unwrap().remove(0);
        b.nack("q1", d.tag, true).unwrap();
        let redelivered = b.consume("q1", 1).unwrap().remove(0);
        assert_eq!(redelivered.payload().as_ref(), b"first");
        assert!(redelivered.redelivered);
    }

    #[test]
    fn nack_without_requeue_discards() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "#").unwrap();
        b.publish("app", "k", &b"x"[..]).unwrap();
        let d = b.consume("q1", 1).unwrap().remove(0);
        b.nack("q1", d.tag, false).unwrap();
        assert_eq!(b.queue_depth("q1").unwrap(), 0);
        assert_eq!(b.consume("q1", 1).unwrap().len(), 0);
        // Both failure modes of a nack are counted.
        assert_eq!(b.metrics().delivery_failed, 1);
        assert_eq!(b.metrics().dropped, 1);
    }

    fn broker_with_dead_letter(max_attempts: u32) -> Broker {
        let b = Broker::new();
        b.declare_exchange("e", ExchangeType::Fanout).unwrap();
        b.declare_queue("work").unwrap();
        b.declare_queue("graveyard").unwrap();
        b.bind_queue("e", "work", "#").unwrap();
        b.configure_dead_letter("work", max_attempts, "graveyard")
            .unwrap();
        b
    }

    #[test]
    fn dead_letter_moves_message_after_exhausted_attempts() {
        let b = broker_with_dead_letter(2);
        b.publish("e", "k", &b"poison"[..]).unwrap();

        // First delivery: one attempt used, still below the limit.
        let d = b.consume("work", 1).unwrap().remove(0);
        b.nack("work", d.tag, true).unwrap();
        assert_eq!(b.queue_depth("work").unwrap(), 1);
        assert_eq!(b.queue_depth("graveyard").unwrap(), 0);

        // Second delivery exhausts the policy: the nack dead-letters.
        let d = b.consume("work", 1).unwrap().remove(0);
        assert!(d.redelivered);
        b.nack("work", d.tag, true).unwrap();
        assert_eq!(b.queue_depth("work").unwrap(), 0);
        assert_eq!(b.queue_depth("graveyard").unwrap(), 1);

        let m = b.metrics();
        assert_eq!(m.delivery_failed, 2);
        assert_eq!(m.requeued, 1);
        assert_eq!(m.dead_lettered, 1);
        assert_eq!(m.dropped, 0);

        // The dead-lettered message is a fresh delivery on its new queue
        // and still carries the original payload.
        let d = b.consume("graveyard", 1).unwrap().remove(0);
        assert!(!d.redelivered);
        assert_eq!(d.payload().as_ref(), b"poison");
    }

    #[test]
    fn depth_gauges_follow_publish_consume_and_dead_letter() {
        // Unique queue names: the gauges live in the process-global
        // registry and other tests sample their own queues in parallel.
        let b = Broker::new();
        b.declare_exchange("dg-e", ExchangeType::Fanout).unwrap();
        b.declare_queue("dg-work").unwrap();
        b.declare_queue("dg-grave").unwrap();
        b.bind_queue("dg-e", "dg-work", "#").unwrap();
        b.configure_dead_letter("dg-work", 1, "dg-grave").unwrap();

        let registry = mps_telemetry::Registry::global();
        let depth = |name: &str, queue: &str| {
            registry
                .gauge_value_labeled(name, &[("queue", queue)])
                .unwrap_or(-1)
        };

        b.publish("dg-e", "k", &b"a"[..]).unwrap();
        b.publish("dg-e", "k", &b"b"[..]).unwrap();
        assert_eq!(depth("broker_queue_depth", "dg-work"), 2);

        let d = b.consume("dg-work", 1).unwrap().remove(0);
        assert_eq!(depth("broker_queue_depth", "dg-work"), 1);
        b.ack("dg-work", d.tag).unwrap();
        assert_eq!(depth("broker_queue_depth", "dg-work"), 1);

        // One attempt allowed: the first nack dead-letters straight away.
        let d = b.consume("dg-work", 1).unwrap().remove(0);
        b.nack("dg-work", d.tag, true).unwrap();
        assert_eq!(depth("broker_queue_depth", "dg-work"), 0);
        assert_eq!(depth("broker_dlq_depth", "dg-grave"), 1);
    }

    #[test]
    fn dead_letter_to_full_queue_degrades_to_counted_drop() {
        let b = Broker::new();
        b.declare_exchange("e", ExchangeType::Fanout).unwrap();
        b.declare_queue("work").unwrap();
        b.declare_queue_with_capacity("graveyard", 0).unwrap();
        b.bind_queue("e", "work", "#").unwrap();
        b.configure_dead_letter("work", 1, "graveyard").unwrap();
        b.publish("e", "k", &b"x"[..]).unwrap();
        let d = b.consume("work", 1).unwrap().remove(0);
        b.nack("work", d.tag, true).unwrap();
        assert_eq!(b.queue_depth("work").unwrap(), 0);
        assert_eq!(b.queue_depth("graveyard").unwrap(), 0);
        assert_eq!(b.metrics().dead_lettered, 0);
        assert_eq!(b.metrics().dropped, 1);
    }

    #[test]
    fn configure_dead_letter_validations() {
        let b = Broker::new();
        b.declare_queue("work").unwrap();
        b.declare_queue("graveyard").unwrap();
        assert_eq!(
            b.configure_dead_letter("work", 0, "graveyard").unwrap_err(),
            BrokerError::InvalidDeadLetter("max_delivery_attempts must be at least 1".into())
        );
        assert!(matches!(
            b.configure_dead_letter("work", 3, "work"),
            Err(BrokerError::InvalidDeadLetter(_))
        ));
        assert_eq!(
            b.configure_dead_letter("work", 3, "ghost").unwrap_err(),
            BrokerError::QueueNotFound("ghost".into())
        );
        assert_eq!(
            b.configure_dead_letter("ghost", 3, "graveyard")
                .unwrap_err(),
            BrokerError::QueueNotFound("ghost".into())
        );

        assert_eq!(b.dead_letter_policy("work").unwrap(), None);
        b.configure_dead_letter("work", 3, "graveyard").unwrap();
        assert_eq!(
            b.dead_letter_policy("work").unwrap(),
            Some(DeadLetterPolicy {
                max_delivery_attempts: 3,
                target: "graveyard".into(),
            })
        );
        let work = b.queues().iter().find(|q| q.name == "work").cloned();
        assert_eq!(work.unwrap().dead_letter_to.as_deref(), Some("graveyard"));
    }

    #[test]
    fn bounded_queue_drops_overflow() {
        let b = Broker::new();
        b.declare_exchange("e", ExchangeType::Fanout).unwrap();
        b.declare_queue_with_capacity("q", 2).unwrap();
        b.bind_queue("e", "q", "#").unwrap();
        assert_eq!(b.publish("e", "k", &b"1"[..]).unwrap(), 1);
        assert_eq!(b.publish("e", "k", &b"2"[..]).unwrap(), 1);
        assert_eq!(b.publish("e", "k", &b"3"[..]).unwrap(), 0);
        assert_eq!(b.queue_depth("q").unwrap(), 2);
        assert_eq!(b.metrics().dropped, 1);
    }

    #[test]
    fn unroutable_counts_in_metrics() {
        let b = broker_with_topic_setup();
        b.publish("app", "no.binding", &b""[..]).unwrap();
        let m = b.metrics();
        assert_eq!(m.published, 1);
        assert_eq!(m.unroutable, 1);
        assert_eq!(m.routed, 0);
    }

    #[test]
    fn publish_to_unknown_exchange_fails() {
        let b = Broker::new();
        assert_eq!(
            b.publish("ghost", "k", &b""[..]).unwrap_err(),
            BrokerError::ExchangeNotFound("ghost".into())
        );
    }

    #[test]
    fn bind_validations() {
        let b = broker_with_topic_setup();
        assert!(matches!(
            b.bind_queue("ghost", "q1", "#"),
            Err(BrokerError::ExchangeNotFound(_))
        ));
        assert!(matches!(
            b.bind_queue("app", "ghost", "#"),
            Err(BrokerError::QueueNotFound(_))
        ));
        assert!(matches!(
            b.bind_queue("app", "q1", "bad..pattern"),
            Err(BrokerError::InvalidKey(_))
        ));
        assert!(matches!(
            b.bind_exchange("app", "ghost", "#"),
            Err(BrokerError::ExchangeNotFound(_))
        ));
    }

    #[test]
    fn unbind_stops_routing() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "obs.#").unwrap();
        b.unbind_queue("app", "q1", "obs.#").unwrap();
        assert_eq!(b.publish("app", "obs.x", &b""[..]).unwrap(), 0);
        // Unbinding a non-existent binding is a no-op.
        b.unbind_queue("app", "q1", "other.#").unwrap();
    }

    #[test]
    fn delete_queue_removes_bindings() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "#").unwrap();
        b.delete_queue("q1").unwrap();
        assert!(!b.queue_exists("q1"));
        assert_eq!(b.publish("app", "k", &b""[..]).unwrap(), 0);
        assert!(b.delete_queue("q1").is_err());
        assert_eq!(b.exchanges()[0].bindings, 0);
    }

    #[test]
    fn delete_exchange_removes_e2e_bindings() {
        let b = Broker::new();
        b.declare_exchange("src", ExchangeType::Fanout).unwrap();
        b.declare_exchange("dst", ExchangeType::Fanout).unwrap();
        b.bind_exchange("src", "dst", "#").unwrap();
        b.delete_exchange("dst").unwrap();
        assert!(!b.exchange_exists("dst"));
        assert_eq!(b.exchanges()[0].bindings, 0);
        assert!(b.delete_exchange("dst").is_err());
    }

    #[test]
    fn purge_clears_ready_only() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "#").unwrap();
        b.publish("app", "k", &b"1"[..]).unwrap();
        b.publish("app", "k", &b"2"[..]).unwrap();
        let d = b.consume("q1", 1).unwrap().remove(0);
        assert_eq!(b.purge_queue("q1").unwrap(), 1);
        assert_eq!(b.queue_depth("q1").unwrap(), 0);
        // The unacked delivery survives purge and can still be nacked back.
        b.nack("q1", d.tag, true).unwrap();
        assert_eq!(b.queue_depth("q1").unwrap(), 1);
    }

    #[test]
    fn queue_info_reports_totals() {
        let b = Broker::new();
        b.declare_exchange("e", ExchangeType::Fanout).unwrap();
        b.declare_queue_with_capacity("q", 10).unwrap();
        b.bind_queue("e", "q", "#").unwrap();
        b.publish("e", "k", &b""[..]).unwrap();
        b.publish("e", "k", &b""[..]).unwrap();
        b.consume("q", 1).unwrap();
        let info = &b.queues()[0];
        assert_eq!(info.ready, 1);
        assert_eq!(info.unacked, 1);
        assert_eq!(info.enqueued_total, 2);
        assert_eq!(info.capacity, Some(10));
    }

    #[test]
    fn exchange_info_lists_sorted() {
        let b = Broker::new();
        b.declare_exchange("zeta", ExchangeType::Direct).unwrap();
        b.declare_exchange("alpha", ExchangeType::Topic).unwrap();
        let infos = b.exchanges();
        assert_eq!(infos[0].name, "alpha");
        assert_eq!(infos[0].kind, ExchangeType::Topic);
        assert_eq!(infos[1].name, "zeta");
    }

    #[test]
    fn fifo_order_preserved() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "#").unwrap();
        for i in 0..50u8 {
            b.publish("app", "k", vec![i]).unwrap();
        }
        let all = b.consume("q1", 100).unwrap();
        let order: Vec<u8> = all.iter().map(|d| d.payload()[0]).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_publishers_lose_nothing() {
        use std::sync::Arc;
        let b = Arc::new(Broker::new());
        b.declare_exchange("e", ExchangeType::Fanout).unwrap();
        b.declare_queue("q").unwrap();
        b.bind_queue("e", "q", "#").unwrap();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        b.publish("e", "k", &b"m"[..]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(b.queue_depth("q").unwrap(), 8000);
        assert_eq!(b.metrics().published, 8000);
    }

    #[test]
    fn traced_publish_reparents_header_and_records_span() {
        use mps_telemetry::trace::{TraceContext, TraceId};
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "#").unwrap();
        let trace = TraceId::from_raw(0xb0b0_0001);
        let msg = Message::new("k".parse().unwrap(), &b"x"[..])
            .with_header(TRACE_HEADER, encode_contexts(&[TraceContext::new(trace)]))
            .with_header(SENT_MS_HEADER, "1234");
        assert_eq!(b.publish_message("app", msg).unwrap(), 1);

        let d = b.consume("q1", 1).unwrap().remove(0);
        let ctxs = parse_contexts(d.message.header(TRACE_HEADER).unwrap());
        assert_eq!(ctxs.len(), 1);
        assert_eq!(ctxs[0].trace, trace);
        let parent = ctxs[0].parent.expect("re-parented under broker_publish");
        let span = FlightRecorder::global()
            .snapshot()
            .into_iter()
            .find(|s| s.span == parent)
            .expect("publish span recorded");
        assert_eq!(span.hop, Hop::BrokerPublish);
        assert_eq!(span.start_ms, 1234);
        assert_eq!(span.outcome, Outcome::Forwarded);
        assert!(span.attrs.iter().any(|(k, v)| *k == "routed" && v == "1"));
    }

    #[test]
    fn traced_unroutable_publish_is_a_counted_terminal_drop() {
        use mps_telemetry::trace::{TraceContext, TraceId};
        let b = broker_with_topic_setup(); // queues exist, nothing bound
        let trace = TraceId::from_raw(0xb0b0_0002);
        let msg = Message::new("k".parse().unwrap(), &b"x"[..])
            .with_header(TRACE_HEADER, encode_contexts(&[TraceContext::new(trace)]))
            .with_header(SENT_MS_HEADER, "50");
        assert_eq!(b.publish_message("app", msg).unwrap(), 0);
        let spans: Vec<_> = FlightRecorder::global()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].outcome, Outcome::Dropped);
        assert!(spans[0]
            .attrs
            .iter()
            .any(|(k, v)| *k == "reason" && v == "unroutable"));
    }

    #[test]
    fn traced_dead_letter_records_terminal_span() {
        use mps_telemetry::trace::{TraceContext, TraceId};
        let b = broker_with_dead_letter(1);
        let trace = TraceId::from_raw(0xb0b0_0003);
        let msg = Message::new("k".parse().unwrap(), &b"poison"[..])
            .with_header(TRACE_HEADER, encode_contexts(&[TraceContext::new(trace)]))
            .with_header(SENT_MS_HEADER, "77");
        b.publish_message("e", msg).unwrap();
        let d = b.consume("work", 1).unwrap().remove(0);
        b.nack("work", d.tag, true).unwrap();
        assert_eq!(b.queue_depth("graveyard").unwrap(), 1);

        let spans: Vec<_> = FlightRecorder::global()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        let publish = spans.iter().find(|s| s.hop == Hop::BrokerPublish).unwrap();
        let dlq = spans.iter().find(|s| s.hop == Hop::BrokerDlq).unwrap();
        assert_eq!(dlq.outcome, Outcome::DeadLettered);
        assert_eq!(dlq.parent, Some(publish.span));
        assert!(dlq
            .attrs
            .iter()
            .any(|(k, v)| *k == "to" && v == "graveyard"));
    }

    #[test]
    fn route_cache_hits_after_first_publish() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "obs.#").unwrap();
        b.publish("app", "obs.a", &b""[..]).unwrap();
        b.publish("app", "obs.a", &b""[..]).unwrap();
        b.publish("app", "obs.a", &b""[..]).unwrap();
        let m = b.metrics();
        assert_eq!(m.route_cache_misses, 1);
        assert_eq!(m.route_cache_hits, 2);
        assert_eq!(b.queue_depth("q1").unwrap(), 3);
    }

    #[test]
    fn route_cache_invalidated_by_bind_and_unbind() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "obs.#").unwrap();
        assert_eq!(b.publish("app", "obs.a", &b""[..]).unwrap(), 1);
        // A new binding must be visible to the very next publish.
        b.bind_queue("app", "q2", "obs.*").unwrap();
        assert_eq!(b.publish("app", "obs.a", &b""[..]).unwrap(), 2);
        // And an unbind must stop routing immediately.
        b.unbind_queue("app", "q1", "obs.#").unwrap();
        b.unbind_queue("app", "q2", "obs.*").unwrap();
        assert_eq!(b.publish("app", "obs.a", &b""[..]).unwrap(), 0);
        let m = b.metrics();
        assert_eq!(m.route_cache_hits, 0);
        assert_eq!(m.route_cache_misses, 3);
    }

    #[test]
    fn route_cache_invalidated_by_deletes() {
        let b = Broker::new();
        b.declare_exchange("src", ExchangeType::Topic).unwrap();
        b.declare_exchange("dst", ExchangeType::Fanout).unwrap();
        b.declare_queue("q").unwrap();
        b.bind_exchange("src", "dst", "#").unwrap();
        b.bind_queue("dst", "q", "#").unwrap();
        assert_eq!(b.publish("src", "k", &b""[..]).unwrap(), 1);
        b.delete_exchange("dst").unwrap();
        assert_eq!(b.publish("src", "k", &b""[..]).unwrap(), 0);

        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "#").unwrap();
        assert_eq!(b.publish("app", "k", &b""[..]).unwrap(), 1);
        b.delete_queue("q1").unwrap();
        assert_eq!(b.publish("app", "k", &b""[..]).unwrap(), 0);
    }

    #[test]
    fn cached_route_still_respects_queue_capacity() {
        let b = Broker::new();
        b.declare_exchange("e", ExchangeType::Topic).unwrap();
        b.declare_queue_with_capacity("q", 1).unwrap();
        b.bind_queue("e", "q", "#").unwrap();
        assert_eq!(b.publish("e", "k", &b"1"[..]).unwrap(), 1);
        // Second publish hits the cache but the queue is full: the
        // capacity check runs per publish, never from the cache.
        assert_eq!(b.publish("e", "k", &b"2"[..]).unwrap(), 0);
        let m = b.metrics();
        assert_eq!(m.route_cache_hits, 1);
        assert_eq!(m.dropped, 1);
    }

    #[test]
    fn duplicate_bind_keeps_cache_warm() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "obs.#").unwrap();
        b.publish("app", "obs.a", &b""[..]).unwrap();
        // Re-binding the same (pattern, target) is a topology no-op and
        // must not flush the cache.
        b.bind_queue("app", "q1", "obs.#").unwrap();
        b.publish("app", "obs.a", &b""[..]).unwrap();
        assert_eq!(b.metrics().route_cache_hits, 1);
    }

    #[test]
    fn exchange_type_display() {
        assert_eq!(ExchangeType::Direct.to_string(), "direct");
        assert_eq!(ExchangeType::Fanout.to_string(), "fanout");
        assert_eq!(ExchangeType::Topic.to_string(), "topic");
    }

    // ----- durability ------------------------------------------------------

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "mps-broker-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn durable_config(dir: &std::path::Path) -> BrokerDurabilityConfig {
        BrokerDurabilityConfig::new(dir).wal(mps_wal::WalConfig::default().telemetry(false))
    }

    /// Re-declares the topology apps set up on startup.
    fn declare_app(b: &Broker) {
        b.declare_exchange("app", ExchangeType::Topic).unwrap();
        b.declare_queue("q").unwrap();
        b.declare_queue("dlq").unwrap();
        b.bind_queue("app", "q", "obs.#").unwrap();
        b.configure_dead_letter("q", 2, "dlq").unwrap();
    }

    #[test]
    fn reopen_reproduces_queue_and_dlq_state() {
        let dir = temp_dir("reopen");
        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        assert!(b.is_durable());
        declare_app(&b);
        for i in 0..4 {
            b.publish("app", "obs.x", format!("m{i}").into_bytes())
                .unwrap();
        }
        // m0 acked; m1 nacked to exhaustion (dead-lettered); m2 left
        // unacked (in flight at the crash); m3 never consumed.
        let d = b.consume("q", 1).unwrap();
        b.ack("q", d[0].tag).unwrap();
        for _ in 0..2 {
            let d = b.consume("q", 1).unwrap();
            b.nack("q", d[0].tag, true).unwrap();
        }
        let _in_flight = b.consume("q", 1).unwrap();
        drop(b);

        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        declare_app(&b);
        let q = b.queue_snapshot("q").unwrap();
        let payloads: Vec<&[u8]> = q.ready.iter().map(|m| m.payload.as_slice()).collect();
        assert_eq!(
            payloads,
            vec![&b"m2"[..], &b"m3"[..]],
            "unacked restored as ready"
        );
        assert!(q.unacked.is_empty());
        let dlq = b.queue_snapshot("dlq").unwrap();
        assert_eq!(dlq.ready.len(), 1);
        assert_eq!(dlq.ready[0].payload, b"m1");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_replay_is_identical() {
        let dir = temp_dir("replay");
        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        declare_app(&b);
        for i in 0..8 {
            b.publish("app", "obs.x", vec![i]).unwrap();
        }
        let d = b.consume("q", 3).unwrap();
        b.ack("q", d[0].tag).unwrap();
        b.nack("q", d[1].tag, true).unwrap();
        b.nack("q", d[2].tag, false).unwrap();
        drop(b);

        let first = Broker::open_durable(durable_config(&dir)).unwrap();
        let second = Broker::open_durable(durable_config(&dir)).unwrap();
        for queue in ["q", "dlq"] {
            let a = first.queue_snapshot(queue);
            let b = second.queue_snapshot(queue);
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "queue {queue}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "queue {queue}"),
                (a, b) => panic!("divergent replay for {queue}: {a:?} vs {b:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_and_compaction_preserve_state() {
        let dir = temp_dir("snap");
        let config = durable_config(&dir)
            .wal(
                mps_wal::WalConfig::default()
                    .telemetry(false)
                    .segment_max_bytes(256),
            )
            .snapshot_every(4);
        let b = Broker::open_durable(config.clone()).unwrap();
        declare_app(&b);
        for i in 0..32u8 {
            b.publish("app", "obs.x", vec![i]).unwrap();
        }
        let d = b.consume("q", 8).unwrap();
        for delivery in &d {
            b.ack("q", delivery.tag).unwrap();
        }
        b.checkpoint().unwrap();
        let live = b.queue_snapshot("q").unwrap();
        drop(b);

        let recovered = Broker::open_durable(config).unwrap();
        let q = recovered.queue_snapshot("q").unwrap();
        assert_eq!(q.ready, live.ready);
        assert_eq!(q.ready.len(), 24);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_never_resurrects_acked_messages() {
        let dir = temp_dir("torn");
        let kill = mps_wal::KillSwitch::new();
        let config = durable_config(&dir).wal(
            mps_wal::WalConfig::default()
                .telemetry(false)
                .kill(kill.clone()),
        );
        let b = Broker::open_durable(config).unwrap();
        declare_app(&b);
        b.publish("app", "obs.x", &b"acked"[..]).unwrap();
        b.publish("app", "obs.x", &b"kept"[..]).unwrap();
        let d = b.consume("q", 1).unwrap();
        b.ack("q", d[0].tag).unwrap();
        // The next publish tears the tail mid-append: its record must be
        // truncated on recovery, while the ack before it stays effective.
        kill.arm(mps_wal::KillPoint::MidAppend, 0);
        let err = b.publish("app", "obs.x", &b"torn"[..]).unwrap_err();
        assert!(matches!(err, BrokerError::Durability(_)));
        // The instance is dead: every further durable mutation fails.
        assert!(b.publish("app", "obs.x", &b"after"[..]).is_err());
        drop(b);

        let recovered = Broker::open_durable(durable_config(&dir)).unwrap();
        let q = recovered.queue_snapshot("q").unwrap();
        let payloads: Vec<&[u8]> = q.ready.iter().map(|m| m.payload.as_slice()).collect();
        assert_eq!(payloads, vec![&b"kept"[..]], "acked gone, torn batch gone");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn purge_and_delete_survive_recovery() {
        let dir = temp_dir("purge");
        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        declare_app(&b);
        b.declare_queue("gone").unwrap();
        b.bind_queue("app", "gone", "obs.#").unwrap();
        b.publish("app", "obs.x", &b"1"[..]).unwrap();
        b.publish("app", "obs.x", &b"2"[..]).unwrap();
        assert_eq!(b.purge_queue("q").unwrap(), 2);
        b.delete_queue("gone").unwrap();
        b.publish("app", "obs.x", &b"3"[..]).unwrap();
        drop(b);

        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        let q = b.queue_snapshot("q").unwrap();
        assert_eq!(q.ready.len(), 1);
        assert_eq!(q.ready[0].payload, b"3");
        assert!(
            b.queue_snapshot("gone").is_err(),
            "deleted queue not recovered"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_messages_keep_headers_and_redelivery_flag() {
        let dir = temp_dir("headers");
        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        declare_app(&b);
        let key = RoutingKey::new("obs.x").unwrap();
        let message = Message::new(key, &b"payload"[..]).with_header("x-client", "c1");
        b.publish_message("app", message).unwrap();
        let d = b.consume("q", 1).unwrap();
        b.nack("q", d[0].tag, true).unwrap();
        drop(b);

        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        declare_app(&b);
        let d = b.consume("q", 1).unwrap();
        assert_eq!(d[0].message.header("x-client"), Some("c1"));
        assert!(d[0].redelivered, "delivery count survives recovery");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn topology_survives_recovery_without_redeclare() {
        let dir = temp_dir("topo");
        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        b.declare_exchange("client", ExchangeType::Topic).unwrap();
        b.declare_exchange("app", ExchangeType::Topic).unwrap();
        b.declare_exchange("old", ExchangeType::Fanout).unwrap();
        b.declare_queue_with_capacity("q", 8).unwrap();
        b.declare_queue("dlq").unwrap();
        b.declare_queue("spill").unwrap();
        b.bind_exchange("client", "app", "#").unwrap();
        b.bind_queue("app", "q", "obs.#").unwrap();
        b.bind_queue("app", "spill", "obs.#").unwrap();
        b.unbind_queue("app", "spill", "obs.#").unwrap();
        b.configure_dead_letter("q", 2, "dlq").unwrap();
        b.delete_exchange("old").unwrap();
        b.publish("client", "obs.x", &b"m"[..]).unwrap();
        drop(b);

        // No re-declaration: the recovered broker routes, bounds and
        // dead-letters exactly like the one that crashed.
        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        assert!(b.exchange_exists("client") && b.exchange_exists("app"));
        assert!(!b.exchange_exists("old"), "deleted exchange stays deleted");
        assert_eq!(b.publish("client", "obs.y", &b"n"[..]).unwrap(), 1);
        assert_eq!(b.queue_depth("q").unwrap(), 2);
        assert_eq!(b.queue_depth("spill").unwrap(), 0, "unbind survives");
        let info = b.queues().into_iter().find(|q| q.name == "q").unwrap();
        assert_eq!(info.capacity, Some(8), "capacity survives");
        assert_eq!(
            b.dead_letter_policy("q").unwrap(),
            Some(DeadLetterPolicy {
                max_delivery_attempts: 2,
                target: "dlq".into()
            })
        );
        // And the recovered policy still fires.
        for _ in 0..2 {
            let d = b.consume("q", 1).unwrap();
            b.nack("q", d[0].tag, true).unwrap();
        }
        assert_eq!(b.queue_depth("dlq").unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn topology_survives_snapshot_compaction() {
        let dir = temp_dir("topo-snap");
        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        declare_app(&b);
        b.publish("app", "obs.x", &b"m"[..]).unwrap();
        // Checkpointing folds topology into the snapshot; the compacted
        // log must still recover every declaration.
        b.checkpoint().unwrap();
        drop(b);

        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        assert!(b.exchange_exists("app"));
        assert_eq!(
            b.dead_letter_policy("q").unwrap().map(|p| p.target),
            Some("dlq".into())
        );
        assert_eq!(b.publish("app", "obs.y", &b"n"[..]).unwrap(), 1);
        assert_eq!(b.queue_depth("q").unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn route_cache_survives_unrelated_churn() {
        let b = Broker::new();
        b.declare_exchange("hot", ExchangeType::Topic).unwrap();
        b.declare_exchange("churn", ExchangeType::Topic).unwrap();
        b.declare_queue("hq").unwrap();
        b.declare_queue("cq").unwrap();
        b.bind_queue("hot", "hq", "obs.#").unwrap();

        // Warm the hot entry: one miss, then hits.
        b.publish("hot", "obs.x", &b"1"[..]).unwrap();
        b.publish("hot", "obs.x", &b"2"[..]).unwrap();
        let warm = b.metrics();
        assert_eq!(warm.route_cache_misses, 1);
        assert_eq!(warm.route_cache_hits, 1);

        // Churn on an unrelated exchange must not evict the hot entry.
        for _ in 0..16 {
            b.bind_queue("churn", "cq", "obs.#").unwrap();
            b.unbind_queue("churn", "cq", "obs.#").unwrap();
        }
        b.publish("hot", "obs.x", &b"3"[..]).unwrap();
        let after = b.metrics();
        assert_eq!(after.route_cache_misses, 1, "no re-route after churn");
        assert_eq!(after.route_cache_hits, 2);

        // Churn on the hot exchange itself does invalidate.
        b.bind_queue("hot", "cq", "other.#").unwrap();
        b.publish("hot", "obs.x", &b"4"[..]).unwrap();
        assert_eq!(b.metrics().route_cache_misses, 2);
    }

    #[test]
    fn route_cache_invalidation_follows_exchange_chains() {
        let b = Broker::new();
        b.declare_exchange("entry", ExchangeType::Topic).unwrap();
        b.declare_exchange("inner", ExchangeType::Topic).unwrap();
        b.declare_queue("q").unwrap();
        b.bind_exchange("entry", "inner", "#").unwrap();
        b.publish("entry", "obs.x", &b"1"[..]).unwrap();
        // Binding deep in the chain must invalidate routes cached at the
        // entry exchange, or the new queue would be silently skipped.
        b.bind_queue("inner", "q", "obs.#").unwrap();
        assert_eq!(b.publish("entry", "obs.x", &b"2"[..]).unwrap(), 1);
        assert_eq!(b.queue_depth("q").unwrap(), 1);

        // Deleting a routed-to queue likewise refreshes ancestor entries.
        b.delete_queue("q").unwrap();
        assert_eq!(b.publish("entry", "obs.x", &b"3"[..]).unwrap(), 0);
    }

    #[test]
    fn ack_many_settles_batch_and_reports_unknown_tags() {
        let b = broker_with_topic_setup();
        b.bind_queue("app", "q1", "obs.#").unwrap();
        for i in 0..4u8 {
            b.publish("app", "obs.x", vec![i]).unwrap();
        }
        let d = b.consume("q1", 4).unwrap();
        let tags: Vec<u64> = d.iter().map(|d| d.tag).collect();
        b.ack_many("q1", &tags[..3]).unwrap();
        assert_eq!(b.metrics().acked, 3);
        // Unknown tag after a valid one: the valid ack still settles.
        let err = b.ack_many("q1", &[tags[3], 999]).unwrap_err();
        assert!(matches!(
            err,
            BrokerError::UnknownDeliveryTag { tag: 999, .. }
        ));
        assert_eq!(b.metrics().acked, 4);
        assert!(b.ack("q1", tags[3]).is_err(), "already settled");
        b.ack_many("q1", &[]).unwrap();
    }

    #[test]
    fn ack_many_is_durable_across_recovery() {
        let dir = temp_dir("ackmany");
        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        declare_app(&b);
        for i in 0..4u8 {
            b.publish("app", "obs.x", vec![i]).unwrap();
        }
        let d = b.consume("q", 3).unwrap();
        let tags: Vec<u64> = d.iter().map(|d| d.tag).collect();
        b.ack_many("q", &tags).unwrap();
        drop(b);

        let b = Broker::open_durable(durable_config(&dir)).unwrap();
        let q = b.queue_snapshot("q").unwrap();
        let payloads: Vec<&[u8]> = q.ready.iter().map(|m| m.payload.as_slice()).collect();
        assert_eq!(payloads, vec![&[3u8][..]], "batch-acked never resurrected");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_broker_rejects_checkpoint() {
        let b = Broker::new();
        assert!(!b.is_durable());
        assert!(matches!(
            b.checkpoint().unwrap_err(),
            BrokerError::Durability(_)
        ));
    }
}
