//! # mps-broker — an AMQP-style message broker
//!
//! In the paper's deployment, messaging between the SoundCity app and the
//! GoFlow crowd-sensing server is routed through RabbitMQ using the AMQP
//! model: *exchanges* forward messages to *queues* (or to other exchanges)
//! according to *bindings*, and topic exchanges filter on routing-key
//! patterns. This crate is a faithful in-process substitute implementing
//! the subset GoFlow relies on (Section 3.2, Figure 3 of the paper):
//!
//! * direct, fanout and topic exchanges;
//! * queue and **exchange-to-exchange** bindings (GoFlow chains a
//!   per-client exchange into the application exchange into the GF queue);
//! * AMQP topic patterns (`*` matches exactly one word, `#` matches zero or
//!   more words);
//! * durable queues that retain messages while a mobile consumer is
//!   disconnected, with ack/nack redelivery;
//! * per-queue **dead-letter policies**
//!   ([`Broker::configure_dead_letter`]): a message nacked back after
//!   exhausting its delivery attempts moves to a dead-letter queue instead
//!   of cycling forever — nothing is ever lost silently;
//! * a management API (declare / bind / purge / delete) and broker-wide
//!   metrics, including delivery-failure and dead-letter counters.
//!
//! The broker is thread-safe and deliberately unclocked: delivery is
//! immediate, and the *simulated* network delays of the experiment are
//! modelled where they belong, in the mobile client's connectivity model.
//!
//! Brokers are in-memory by default; [`Broker::open_durable`]
//! write-ahead-logs topology and every queue transition and replays the
//! log on reopen — see [`mod@durability`].
//!
//! For fleet-scale throughput, [`ShardedBroker`] partitions messages by
//! routing-key hash across N independent brokers behind the same
//! [`BrokerTransport`] surface — see [`mod@sharded`].
//!
//! # Examples
//!
//! ```
//! use mps_broker::{Broker, ExchangeType};
//!
//! let broker = Broker::new();
//! broker.declare_exchange("app", ExchangeType::Topic)?;
//! broker.declare_queue("inbox")?;
//! broker.bind_queue("app", "inbox", "obs.paris.*")?;
//!
//! broker.publish("app", "obs.paris.noise", br#"{"spl": 61.5}"#.as_ref())?;
//! let deliveries = broker.consume("inbox", 10)?;
//! assert_eq!(deliveries.len(), 1);
//! broker.ack("inbox", deliveries[0].tag)?;
//! # Ok::<(), mps_broker::BrokerError>(())
//! ```

mod broker;
pub mod durability;
mod error;
mod message;
mod metrics;
#[cfg(test)]
mod proptests;
pub mod router;
pub mod sharded;
mod topic;
mod transport;

pub use broker::{Broker, DeadLetterPolicy, ExchangeInfo, ExchangeType, QueueInfo};
pub use durability::{BrokerDurabilityConfig, MessageView, QueueSnapshot};
pub use error::BrokerError;
pub use message::{Delivery, Message};
pub use metrics::{BrokerMetrics, MetricsSnapshot};
pub use router::TopicTrie;
pub use sharded::{shard_for_key, ShardedBroker};
pub use topic::{topic_matches, BindingPattern, CompiledPattern, PatternWord, RoutingKey};
pub use transport::BrokerTransport;
