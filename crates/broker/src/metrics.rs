//! Broker-wide counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing broker activity since start-up.
///
/// Updated lock-free on the publish/consume paths; read with
/// [`BrokerMetrics::snapshot`].
#[derive(Debug, Default)]
pub struct BrokerMetrics {
    published: AtomicU64,
    routed: AtomicU64,
    unroutable: AtomicU64,
    delivered: AtomicU64,
    acked: AtomicU64,
    requeued: AtomicU64,
    dropped: AtomicU64,
}

/// A point-in-time copy of [`BrokerMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Messages accepted by `publish`.
    pub published: u64,
    /// Queue enqueues resulting from routing (one publish may route to
    /// several queues, or to none).
    pub routed: u64,
    /// Publishes that matched no queue at all.
    pub unroutable: u64,
    /// Messages handed to consumers.
    pub delivered: u64,
    /// Deliveries acknowledged.
    pub acked: u64,
    /// Deliveries negatively acknowledged and requeued.
    pub requeued: u64,
    /// Messages rejected because a queue was full.
    pub dropped: u64,
}

impl BrokerMetrics {
    pub(crate) fn on_publish(&self) {
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_routed(&self, queues: u64) {
        if queues == 0 {
            self.unroutable.fetch_add(1, Ordering::Relaxed);
        } else {
            self.routed.fetch_add(queues, Ordering::Relaxed);
        }
    }

    pub(crate) fn on_delivered(&self, n: u64) {
        self.delivered.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn on_acked(&self) {
        self.acked.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_requeued(&self) {
        self.requeued.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters (each counter is
    /// read atomically; the set is not a transaction).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            published: self.published.load(Ordering::Relaxed),
            routed: self.routed.load(Ordering::Relaxed),
            unroutable: self.unroutable.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            acked: self.acked.load(Ordering::Relaxed),
            requeued: self.requeued.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = BrokerMetrics::default();
        m.on_publish();
        m.on_publish();
        m.on_routed(3);
        m.on_routed(0);
        m.on_delivered(2);
        m.on_acked();
        m.on_requeued();
        m.on_dropped();
        let s = m.snapshot();
        assert_eq!(s.published, 2);
        assert_eq!(s.routed, 3);
        assert_eq!(s.unroutable, 1);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.acked, 1);
        assert_eq!(s.requeued, 1);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn snapshot_default_is_zero() {
        let s = BrokerMetrics::default().snapshot();
        assert_eq!(s, MetricsSnapshot::default());
    }
}
