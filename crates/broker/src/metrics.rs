//! Broker-wide counters.

use mps_telemetry::{Counter, Registry};
use std::sync::OnceLock;

/// Mirrors of the per-broker counters in the process-wide telemetry
/// registry ([`Registry::global`]), under the workspace naming
/// convention `broker_core_<metric>`. Every broker instance reports into
/// the same shared series; per-instance accounting stays exact through
/// [`BrokerMetrics::snapshot`].
struct SharedCounters {
    published: Counter,
    routed: Counter,
    unroutable: Counter,
    delivered: Counter,
    acked: Counter,
    requeued: Counter,
    dropped: Counter,
    delivery_failed: Counter,
    dead_lettered: Counter,
    route_cache_hits: Counter,
    route_cache_misses: Counter,
}

fn shared() -> &'static SharedCounters {
    static SHARED: OnceLock<SharedCounters> = OnceLock::new();
    SHARED.get_or_init(|| {
        let registry = Registry::global();
        SharedCounters {
            published: registry.counter(
                "broker_core_published_total",
                "Messages accepted by publish",
            ),
            routed: registry.counter(
                "broker_core_routed_total",
                "Queue enqueues resulting from routing",
            ),
            unroutable: registry.counter(
                "broker_core_unroutable_total",
                "Publishes that matched no queue at all",
            ),
            delivered: registry.counter(
                "broker_core_delivered_total",
                "Messages handed to consumers",
            ),
            acked: registry.counter("broker_core_acked_total", "Deliveries acknowledged"),
            requeued: registry.counter(
                "broker_core_requeued_total",
                "Deliveries negatively acknowledged and requeued",
            ),
            dropped: registry.counter(
                "broker_core_dropped_total",
                "Messages rejected because a queue was full",
            ),
            delivery_failed: registry.counter(
                "broker_core_delivery_failures_total",
                "Deliveries negatively acknowledged by a consumer",
            ),
            dead_lettered: registry.counter(
                "broker_core_dead_lettered_total",
                "Messages moved to a dead-letter queue after exhausting redelivery",
            ),
            route_cache_hits: registry.counter(
                "broker_route_cache_hits_total",
                "Publishes whose destination set came from the routing-result cache",
            ),
            route_cache_misses: registry.counter(
                "broker_route_cache_misses_total",
                "Publishes that had to walk the exchange graph to route",
            ),
        }
    })
}

/// Monotonic counters describing broker activity since start-up.
///
/// Updated lock-free on the publish/consume paths; read with
/// [`BrokerMetrics::snapshot`]. Each update also feeds the shared
/// `broker_core_*` series of the global [`Registry`], so the broker
/// shows up in the pipeline-wide health report alongside ingest,
/// storage and assimilation.
#[derive(Debug, Default)]
pub struct BrokerMetrics {
    published: Counter,
    routed: Counter,
    unroutable: Counter,
    delivered: Counter,
    acked: Counter,
    requeued: Counter,
    dropped: Counter,
    delivery_failed: Counter,
    dead_lettered: Counter,
    route_cache_hits: Counter,
    route_cache_misses: Counter,
}

/// A point-in-time copy of [`BrokerMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Messages accepted by `publish`.
    pub published: u64,
    /// Queue enqueues resulting from routing (one publish may route to
    /// several queues, or to none).
    pub routed: u64,
    /// Publishes that matched no queue at all.
    pub unroutable: u64,
    /// Messages handed to consumers.
    pub delivered: u64,
    /// Deliveries acknowledged.
    pub acked: u64,
    /// Deliveries negatively acknowledged and requeued.
    pub requeued: u64,
    /// Messages rejected because a queue was full.
    pub dropped: u64,
    /// Deliveries negatively acknowledged by a consumer (with or without
    /// requeue — every nack is a failed delivery attempt).
    pub delivery_failed: u64,
    /// Messages moved to a dead-letter queue after exhausting redelivery.
    pub dead_lettered: u64,
    /// Publishes whose destination set came from the routing-result cache.
    pub route_cache_hits: u64,
    /// Publishes that had to walk the exchange graph to route.
    pub route_cache_misses: u64,
}

impl BrokerMetrics {
    pub(crate) fn on_publish(&self) {
        self.published.inc();
        shared().published.inc();
    }

    pub(crate) fn on_routed(&self, queues: u64) {
        if queues == 0 {
            self.unroutable.inc();
            shared().unroutable.inc();
        } else {
            self.routed.add(queues);
            shared().routed.add(queues);
        }
    }

    pub(crate) fn on_delivered(&self, n: u64) {
        self.delivered.add(n);
        shared().delivered.add(n);
    }

    pub(crate) fn on_acked(&self) {
        self.acked.inc();
        shared().acked.inc();
    }

    pub(crate) fn on_acked_many(&self, n: u64) {
        self.acked.add(n);
        shared().acked.add(n);
    }

    pub(crate) fn on_requeued(&self) {
        self.requeued.inc();
        shared().requeued.inc();
    }

    pub(crate) fn on_dropped(&self) {
        self.dropped.inc();
        shared().dropped.inc();
    }

    pub(crate) fn on_delivery_failed(&self) {
        self.delivery_failed.inc();
        shared().delivery_failed.inc();
    }

    pub(crate) fn on_dead_lettered(&self) {
        self.dead_lettered.inc();
        shared().dead_lettered.inc();
    }

    pub(crate) fn on_route_cache_hit(&self) {
        self.route_cache_hits.inc();
        shared().route_cache_hits.inc();
    }

    pub(crate) fn on_route_cache_miss(&self) {
        self.route_cache_misses.inc();
        shared().route_cache_misses.inc();
    }

    /// Publishes the observed ready depth of a queue as
    /// `broker_queue_depth{queue=…}` — sampled wherever the depth
    /// changes (publish, consume, ack, requeue), so the health endpoint
    /// and fleet dashboard see backlog without polling the broker.
    pub(crate) fn sample_queue_depth(&self, queue: &str, depth: usize) {
        Registry::global()
            .gauge_labeled(
                "broker_queue_depth",
                &[("queue", queue)],
                "Ready messages in a broker queue, sampled as depth changes",
            )
            .set(depth as i64);
    }

    /// Publishes the observed depth of a dead-letter queue as
    /// `broker_dlq_depth{queue=…}`, sampled when a message is parked
    /// there (and when the DLQ itself is consumed or purged).
    pub(crate) fn sample_dlq_depth(&self, queue: &str, depth: usize) {
        Registry::global()
            .gauge_labeled(
                "broker_dlq_depth",
                &[("queue", queue)],
                "Messages parked in a dead-letter queue, sampled as depth changes",
            )
            .set(depth as i64);
    }

    /// Takes a consistent-enough snapshot of all counters (each counter is
    /// read atomically; the set is not a transaction).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            published: self.published.get(),
            routed: self.routed.get(),
            unroutable: self.unroutable.get(),
            delivered: self.delivered.get(),
            acked: self.acked.get(),
            requeued: self.requeued.get(),
            dropped: self.dropped.get(),
            delivery_failed: self.delivery_failed.get(),
            dead_lettered: self.dead_lettered.get(),
            route_cache_hits: self.route_cache_hits.get(),
            route_cache_misses: self.route_cache_misses.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = BrokerMetrics::default();
        m.on_publish();
        m.on_publish();
        m.on_routed(3);
        m.on_routed(0);
        m.on_delivered(2);
        m.on_acked();
        m.on_requeued();
        m.on_dropped();
        m.on_delivery_failed();
        m.on_delivery_failed();
        m.on_dead_lettered();
        m.on_route_cache_hit();
        m.on_route_cache_miss();
        m.on_route_cache_miss();
        let s = m.snapshot();
        assert_eq!(s.published, 2);
        assert_eq!(s.routed, 3);
        assert_eq!(s.unroutable, 1);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.acked, 1);
        assert_eq!(s.requeued, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.delivery_failed, 2);
        assert_eq!(s.dead_lettered, 1);
        assert_eq!(s.route_cache_hits, 1);
        assert_eq!(s.route_cache_misses, 2);
    }

    #[test]
    fn snapshot_default_is_zero() {
        let s = BrokerMetrics::default().snapshot();
        assert_eq!(s, MetricsSnapshot::default());
    }

    #[test]
    fn shared_registry_sees_broker_activity() {
        let before = Registry::global()
            .counter_value("broker_core_published_total")
            .unwrap_or(0);
        let m = BrokerMetrics::default();
        m.on_publish();
        let after = Registry::global()
            .counter_value("broker_core_published_total")
            .expect("registered");
        assert!(after >= before + 1);
    }
}
