//! The [`BrokerTransport`] trait: the broker's messaging surface as an
//! object-safe abstraction, so in-process and remote brokers are
//! interchangeable.
//!
//! [`Broker`] implements the trait by pure delegation, which makes the
//! embedded path zero-cost. A remote implementation (see `mps-net`'s
//! `RemoteBroker`) carries the same calls over a socket and surfaces
//! connectivity failures as [`BrokerError::Transport`]. Consumers that
//! should work against either — the GoFlow server, the mobile upload
//! path — take `Arc<dyn BrokerTransport>` (or a generic bound) instead
//! of the concrete [`Broker`].
//!
//! The trait covers topology management, publishing and consuming: the
//! operations a *client* of the broker performs. Durability controls
//! (`open_durable`, `checkpoint`, `queue_snapshot`) and metrics
//! snapshots stay on the concrete type — they are operator concerns of
//! the process that owns the broker, not part of the wire contract.

use crate::broker::{Broker, DeadLetterPolicy, ExchangeType};
use crate::error::BrokerError;
use crate::message::{Delivery, Message};
use std::fmt;
use std::sync::Arc;

/// The broker operations a client may perform, over any transport.
///
/// Mirrors the inherent [`Broker`] API method for method, with two
/// deliberate deviations that keep the trait object-safe and
/// wire-friendly:
///
/// * [`publish`](BrokerTransport::publish) takes `&[u8]` instead of
///   `impl Into<Bytes>`;
/// * existence probes ([`exchange_exists`](BrokerTransport::exchange_exists),
///   [`queue_exists`](BrokerTransport::queue_exists)) stay infallible —
///   a remote implementation reports `false` when it cannot reach the
///   server (and counts the failure in its own metrics).
pub trait BrokerTransport: fmt::Debug + Send + Sync {
    /// Declares an exchange of the given type. Redeclaring with the same
    /// type is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::ExchangeTypeMismatch`] on a type conflict,
    /// or [`BrokerError::Transport`] when the broker is unreachable.
    fn declare_exchange(&self, name: &str, kind: ExchangeType) -> Result<(), BrokerError>;

    /// Declares an unbounded queue. Redeclaring is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Transport`] when the broker is unreachable.
    fn declare_queue(&self, name: &str) -> Result<(), BrokerError>;

    /// Declares a queue holding at most `capacity` ready messages.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Transport`] when the broker is unreachable.
    fn declare_queue_with_capacity(&self, name: &str, capacity: usize) -> Result<(), BrokerError>;

    /// Whether an exchange with this name exists (`false` when the
    /// broker cannot be reached).
    fn exchange_exists(&self, name: &str) -> bool;

    /// Whether a queue with this name exists (`false` when the broker
    /// cannot be reached).
    fn queue_exists(&self, name: &str) -> bool;

    /// Binds `queue` to `exchange` with a topic `pattern`.
    ///
    /// # Errors
    ///
    /// Propagates the broker's not-found / invalid-pattern errors, or
    /// [`BrokerError::Transport`].
    fn bind_queue(&self, exchange: &str, queue: &str, pattern: &str) -> Result<(), BrokerError>;

    /// Binds exchange `destination` to exchange `source` with `pattern`.
    ///
    /// # Errors
    ///
    /// Propagates the broker's not-found / invalid-pattern errors, or
    /// [`BrokerError::Transport`].
    fn bind_exchange(
        &self,
        source: &str,
        destination: &str,
        pattern: &str,
    ) -> Result<(), BrokerError>;

    /// Removes a queue binding. Removing a non-existent binding is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError::ExchangeNotFound`], or
    /// [`BrokerError::Transport`].
    fn unbind_queue(&self, exchange: &str, queue: &str, pattern: &str) -> Result<(), BrokerError>;

    /// Deletes an exchange and every binding pointing at it.
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError::ExchangeNotFound`], or
    /// [`BrokerError::Transport`].
    fn delete_exchange(&self, name: &str) -> Result<(), BrokerError>;

    /// Deletes a queue and any messages still buffered in it.
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError::QueueNotFound`], or
    /// [`BrokerError::Transport`].
    fn delete_queue(&self, name: &str) -> Result<(), BrokerError>;

    /// Discards every ready message in a queue, returning how many were
    /// removed.
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError::QueueNotFound`], or
    /// [`BrokerError::Transport`].
    fn purge_queue(&self, name: &str) -> Result<usize, BrokerError>;

    /// Installs a dead-letter policy on `queue`.
    ///
    /// # Errors
    ///
    /// Propagates the broker's validation errors, or
    /// [`BrokerError::Transport`].
    fn configure_dead_letter(
        &self,
        queue: &str,
        max_delivery_attempts: u32,
        target: &str,
    ) -> Result<(), BrokerError>;

    /// The dead-letter policy of a queue, if one is configured.
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError::QueueNotFound`], or
    /// [`BrokerError::Transport`].
    fn dead_letter_policy(&self, queue: &str) -> Result<Option<DeadLetterPolicy>, BrokerError>;

    /// Number of ready messages in a queue.
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError::QueueNotFound`], or
    /// [`BrokerError::Transport`].
    fn queue_depth(&self, name: &str) -> Result<usize, BrokerError>;

    /// Publishes `payload` to `exchange` under routing key `key`,
    /// returning how many queues received it.
    ///
    /// # Errors
    ///
    /// Propagates the broker's routing errors, or
    /// [`BrokerError::Transport`].
    fn publish(&self, exchange: &str, key: &str, payload: &[u8]) -> Result<usize, BrokerError>;

    /// Publishes a full [`Message`] (routing key, payload and headers)
    /// to `exchange`, returning how many queues received it.
    ///
    /// # Errors
    ///
    /// Propagates the broker's routing errors, or
    /// [`BrokerError::Transport`].
    fn publish_message(&self, exchange: &str, message: Message) -> Result<usize, BrokerError>;

    /// Takes up to `max` ready messages from a queue for processing.
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError::QueueNotFound`], or
    /// [`BrokerError::Transport`].
    fn consume(&self, queue: &str, max: usize) -> Result<Vec<Delivery>, BrokerError>;

    /// Acknowledges a delivery, removing it permanently.
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError::UnknownDeliveryTag`], or
    /// [`BrokerError::Transport`].
    fn ack(&self, queue: &str, tag: u64) -> Result<(), BrokerError>;

    /// Acknowledges a batch of deliveries from one queue. The default
    /// implementation loops [`ack`](BrokerTransport::ack), so remote
    /// transports work unchanged; the embedded broker overrides it with
    /// a single group-committed log append for the whole batch.
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError::UnknownDeliveryTag`] (tags settled
    /// before the unknown one stay settled), or
    /// [`BrokerError::Transport`].
    fn ack_many(&self, queue: &str, tags: &[u64]) -> Result<(), BrokerError> {
        for &tag in tags {
            self.ack(queue, tag)?;
        }
        Ok(())
    }

    /// Rejects a delivery; with `requeue` it is redelivered (subject to
    /// the queue's dead-letter policy), otherwise dropped (counted).
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError::UnknownDeliveryTag`], or
    /// [`BrokerError::Transport`].
    fn nack(&self, queue: &str, tag: u64, requeue: bool) -> Result<(), BrokerError>;
}

impl BrokerTransport for Broker {
    fn declare_exchange(&self, name: &str, kind: ExchangeType) -> Result<(), BrokerError> {
        Broker::declare_exchange(self, name, kind)
    }

    fn declare_queue(&self, name: &str) -> Result<(), BrokerError> {
        Broker::declare_queue(self, name)
    }

    fn declare_queue_with_capacity(&self, name: &str, capacity: usize) -> Result<(), BrokerError> {
        Broker::declare_queue_with_capacity(self, name, capacity)
    }

    fn exchange_exists(&self, name: &str) -> bool {
        Broker::exchange_exists(self, name)
    }

    fn queue_exists(&self, name: &str) -> bool {
        Broker::queue_exists(self, name)
    }

    fn bind_queue(&self, exchange: &str, queue: &str, pattern: &str) -> Result<(), BrokerError> {
        Broker::bind_queue(self, exchange, queue, pattern)
    }

    fn bind_exchange(
        &self,
        source: &str,
        destination: &str,
        pattern: &str,
    ) -> Result<(), BrokerError> {
        Broker::bind_exchange(self, source, destination, pattern)
    }

    fn unbind_queue(&self, exchange: &str, queue: &str, pattern: &str) -> Result<(), BrokerError> {
        Broker::unbind_queue(self, exchange, queue, pattern)
    }

    fn delete_exchange(&self, name: &str) -> Result<(), BrokerError> {
        Broker::delete_exchange(self, name)
    }

    fn delete_queue(&self, name: &str) -> Result<(), BrokerError> {
        Broker::delete_queue(self, name)
    }

    fn purge_queue(&self, name: &str) -> Result<usize, BrokerError> {
        Broker::purge_queue(self, name)
    }

    fn configure_dead_letter(
        &self,
        queue: &str,
        max_delivery_attempts: u32,
        target: &str,
    ) -> Result<(), BrokerError> {
        Broker::configure_dead_letter(self, queue, max_delivery_attempts, target)
    }

    fn dead_letter_policy(&self, queue: &str) -> Result<Option<DeadLetterPolicy>, BrokerError> {
        Broker::dead_letter_policy(self, queue)
    }

    fn queue_depth(&self, name: &str) -> Result<usize, BrokerError> {
        Broker::queue_depth(self, name)
    }

    fn publish(&self, exchange: &str, key: &str, payload: &[u8]) -> Result<usize, BrokerError> {
        Broker::publish(self, exchange, key, payload.to_vec())
    }

    fn publish_message(&self, exchange: &str, message: Message) -> Result<usize, BrokerError> {
        Broker::publish_message(self, exchange, message)
    }

    fn consume(&self, queue: &str, max: usize) -> Result<Vec<Delivery>, BrokerError> {
        Broker::consume(self, queue, max)
    }

    fn ack(&self, queue: &str, tag: u64) -> Result<(), BrokerError> {
        Broker::ack(self, queue, tag)
    }

    fn ack_many(&self, queue: &str, tags: &[u64]) -> Result<(), BrokerError> {
        Broker::ack_many(self, queue, tags)
    }

    fn nack(&self, queue: &str, tag: u64, requeue: bool) -> Result<(), BrokerError> {
        Broker::nack(self, queue, tag, requeue)
    }
}

/// Shared transports are transports: lets `Arc<Broker>` (or any shared
/// remote client) be used directly wherever a [`BrokerTransport`] bound
/// is expected.
impl<T: BrokerTransport + ?Sized> BrokerTransport for Arc<T> {
    fn declare_exchange(&self, name: &str, kind: ExchangeType) -> Result<(), BrokerError> {
        (**self).declare_exchange(name, kind)
    }

    fn declare_queue(&self, name: &str) -> Result<(), BrokerError> {
        (**self).declare_queue(name)
    }

    fn declare_queue_with_capacity(&self, name: &str, capacity: usize) -> Result<(), BrokerError> {
        (**self).declare_queue_with_capacity(name, capacity)
    }

    fn exchange_exists(&self, name: &str) -> bool {
        (**self).exchange_exists(name)
    }

    fn queue_exists(&self, name: &str) -> bool {
        (**self).queue_exists(name)
    }

    fn bind_queue(&self, exchange: &str, queue: &str, pattern: &str) -> Result<(), BrokerError> {
        (**self).bind_queue(exchange, queue, pattern)
    }

    fn bind_exchange(
        &self,
        source: &str,
        destination: &str,
        pattern: &str,
    ) -> Result<(), BrokerError> {
        (**self).bind_exchange(source, destination, pattern)
    }

    fn unbind_queue(&self, exchange: &str, queue: &str, pattern: &str) -> Result<(), BrokerError> {
        (**self).unbind_queue(exchange, queue, pattern)
    }

    fn delete_exchange(&self, name: &str) -> Result<(), BrokerError> {
        (**self).delete_exchange(name)
    }

    fn delete_queue(&self, name: &str) -> Result<(), BrokerError> {
        (**self).delete_queue(name)
    }

    fn purge_queue(&self, name: &str) -> Result<usize, BrokerError> {
        (**self).purge_queue(name)
    }

    fn configure_dead_letter(
        &self,
        queue: &str,
        max_delivery_attempts: u32,
        target: &str,
    ) -> Result<(), BrokerError> {
        (**self).configure_dead_letter(queue, max_delivery_attempts, target)
    }

    fn dead_letter_policy(&self, queue: &str) -> Result<Option<DeadLetterPolicy>, BrokerError> {
        (**self).dead_letter_policy(queue)
    }

    fn queue_depth(&self, name: &str) -> Result<usize, BrokerError> {
        (**self).queue_depth(name)
    }

    fn publish(&self, exchange: &str, key: &str, payload: &[u8]) -> Result<usize, BrokerError> {
        (**self).publish(exchange, key, payload)
    }

    fn publish_message(&self, exchange: &str, message: Message) -> Result<usize, BrokerError> {
        (**self).publish_message(exchange, message)
    }

    fn consume(&self, queue: &str, max: usize) -> Result<Vec<Delivery>, BrokerError> {
        (**self).consume(queue, max)
    }

    fn ack(&self, queue: &str, tag: u64) -> Result<(), BrokerError> {
        (**self).ack(queue, tag)
    }

    fn ack_many(&self, queue: &str, tags: &[u64]) -> Result<(), BrokerError> {
        (**self).ack_many(queue, tags)
    }

    fn nack(&self, queue: &str, tag: u64, requeue: bool) -> Result<(), BrokerError> {
        (**self).nack(queue, tag, requeue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The embedded broker drives the same topology + messaging flow
    /// through the trait surface as through the inherent API.
    #[test]
    fn broker_implements_transport_by_delegation() {
        let broker = Broker::new();
        let transport: &dyn BrokerTransport = &broker;
        transport
            .declare_exchange("ex", ExchangeType::Topic)
            .unwrap();
        transport.declare_queue("q").unwrap();
        transport.declare_queue("dlq").unwrap();
        transport.bind_queue("ex", "q", "obs.#").unwrap();
        transport.configure_dead_letter("q", 2, "dlq").unwrap();
        assert!(transport.exchange_exists("ex"));
        assert!(transport.queue_exists("q"));
        assert!(!transport.queue_exists("ghost"));

        assert_eq!(transport.publish("ex", "obs.noise", b"hello").unwrap(), 1);
        assert_eq!(transport.queue_depth("q").unwrap(), 1);
        let deliveries = transport.consume("q", 10).unwrap();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].payload().as_ref(), b"hello");

        // Nack to exhaustion: the dead-letter policy fires through the
        // trait exactly as it does through the inherent API.
        transport.nack("q", deliveries[0].tag, true).unwrap();
        let redelivered = transport.consume("q", 10).unwrap();
        assert!(redelivered[0].redelivered);
        transport.nack("q", redelivered[0].tag, true).unwrap();
        assert_eq!(transport.queue_depth("q").unwrap(), 0);
        assert_eq!(transport.queue_depth("dlq").unwrap(), 1);
        let policy = transport.dead_letter_policy("q").unwrap().unwrap();
        assert_eq!(policy.max_delivery_attempts, 2);
        assert_eq!(policy.target, "dlq");
    }

    #[test]
    fn arc_broker_is_a_transport() {
        let broker = Arc::new(Broker::new());
        fn takes_transport(t: &impl BrokerTransport) {
            t.declare_queue("q").unwrap();
        }
        takes_transport(&broker);
        assert!(broker.queue_exists("q"));
    }

    #[test]
    fn ack_many_default_loops_ack() {
        /// A transport that only implements `ack`, exercising the
        /// trait-default batch path a remote client would use.
        #[derive(Debug)]
        struct CountingAcks(Arc<Broker>);
        impl BrokerTransport for CountingAcks {
            fn declare_exchange(&self, n: &str, k: ExchangeType) -> Result<(), BrokerError> {
                self.0.declare_exchange(n, k)
            }
            fn declare_queue(&self, n: &str) -> Result<(), BrokerError> {
                self.0.declare_queue(n)
            }
            fn declare_queue_with_capacity(&self, n: &str, c: usize) -> Result<(), BrokerError> {
                self.0.declare_queue_with_capacity(n, c)
            }
            fn exchange_exists(&self, n: &str) -> bool {
                self.0.exchange_exists(n)
            }
            fn queue_exists(&self, n: &str) -> bool {
                self.0.queue_exists(n)
            }
            fn bind_queue(&self, e: &str, q: &str, p: &str) -> Result<(), BrokerError> {
                self.0.bind_queue(e, q, p)
            }
            fn bind_exchange(&self, s: &str, d: &str, p: &str) -> Result<(), BrokerError> {
                self.0.bind_exchange(s, d, p)
            }
            fn unbind_queue(&self, e: &str, q: &str, p: &str) -> Result<(), BrokerError> {
                self.0.unbind_queue(e, q, p)
            }
            fn delete_exchange(&self, n: &str) -> Result<(), BrokerError> {
                self.0.delete_exchange(n)
            }
            fn delete_queue(&self, n: &str) -> Result<(), BrokerError> {
                self.0.delete_queue(n)
            }
            fn purge_queue(&self, n: &str) -> Result<usize, BrokerError> {
                self.0.purge_queue(n)
            }
            fn configure_dead_letter(&self, q: &str, m: u32, t: &str) -> Result<(), BrokerError> {
                self.0.configure_dead_letter(q, m, t)
            }
            fn dead_letter_policy(&self, q: &str) -> Result<Option<DeadLetterPolicy>, BrokerError> {
                self.0.dead_letter_policy(q)
            }
            fn queue_depth(&self, n: &str) -> Result<usize, BrokerError> {
                self.0.queue_depth(n)
            }
            fn publish(&self, e: &str, k: &str, p: &[u8]) -> Result<usize, BrokerError> {
                self.0.publish(e, k, p.to_vec())
            }
            fn publish_message(&self, e: &str, m: Message) -> Result<usize, BrokerError> {
                self.0.publish_message(e, m)
            }
            fn consume(&self, q: &str, max: usize) -> Result<Vec<Delivery>, BrokerError> {
                self.0.consume(q, max)
            }
            fn ack(&self, q: &str, tag: u64) -> Result<(), BrokerError> {
                self.0.ack(q, tag)
            }
            fn nack(&self, q: &str, tag: u64, requeue: bool) -> Result<(), BrokerError> {
                self.0.nack(q, tag, requeue)
            }
        }

        let broker = Arc::new(Broker::new());
        let t = CountingAcks(Arc::clone(&broker));
        t.declare_exchange("ex", ExchangeType::Topic).unwrap();
        t.declare_queue("q").unwrap();
        t.bind_queue("ex", "q", "#").unwrap();
        for i in 0..3u8 {
            t.publish("ex", "a.b", &[i]).unwrap();
        }
        let tags: Vec<u64> = t.consume("q", 3).unwrap().iter().map(|d| d.tag).collect();
        t.ack_many("q", &tags).unwrap();
        assert_eq!(broker.metrics().acked, 3);
    }

    #[test]
    fn publish_message_round_trips_headers() {
        let broker = Broker::new();
        let transport: &dyn BrokerTransport = &broker;
        transport
            .declare_exchange("ex", ExchangeType::Topic)
            .unwrap();
        transport.declare_queue("q").unwrap();
        transport.bind_queue("ex", "q", "#").unwrap();
        let message =
            Message::new("a.b".parse().unwrap(), &b"payload"[..]).with_header("x-test", "42");
        assert_eq!(transport.publish_message("ex", message).unwrap(), 1);
        let deliveries = transport.consume("q", 1).unwrap();
        assert_eq!(deliveries[0].message.header("x-test"), Some("42"));
        transport.ack("q", deliveries[0].tag).unwrap();
    }
}
