//! Messages and deliveries.

use crate::RoutingKey;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A published message: a routing key, an opaque payload, and optional
/// string headers.
///
/// Payloads are [`Bytes`], so a message fanned out to many queues shares
/// one buffer. GoFlow publishes JSON-serialized observations.
///
/// # Examples
///
/// ```
/// use mps_broker::Message;
///
/// let msg = Message::new("obs.FR75013.noise".parse()?, br#"{"spl":60}"#.as_ref())
///     .with_header("content-type", "application/json");
/// assert_eq!(msg.header("content-type"), Some("application/json"));
/// # Ok::<(), mps_broker::BrokerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    routing_key: RoutingKey,
    payload: Bytes,
    headers: BTreeMap<String, String>,
}

impl Message {
    /// Creates a message with the given routing key and payload.
    pub fn new(routing_key: RoutingKey, payload: impl Into<Bytes>) -> Self {
        Self {
            routing_key,
            payload: payload.into(),
            headers: BTreeMap::new(),
        }
    }

    /// Adds a header, replacing any existing value for the same name.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.insert(name.into(), value.into());
        self
    }

    /// The routing key the message was published with.
    pub fn routing_key(&self) -> &RoutingKey {
        &self.routing_key
    }

    /// The message payload.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Looks up a header by name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// Iterates over all headers in name order.
    pub fn headers(&self) -> impl Iterator<Item = (&str, &str)> {
        self.headers.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Message[{}, {} bytes]",
            self.routing_key,
            self.payload.len()
        )
    }
}

/// A message handed to a consumer, carrying the delivery tag used to
/// ack/nack it and a redelivery flag.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Per-queue delivery tag; pass to [`Broker::ack`](crate::Broker::ack)
    /// or [`Broker::nack`](crate::Broker::nack).
    pub tag: u64,
    /// The delivered message (shared, cheap to clone).
    pub message: Arc<Message>,
    /// True if the message was previously delivered and requeued.
    pub redelivered: bool,
}

impl Delivery {
    /// Shorthand for the message payload.
    pub fn payload(&self) -> &Bytes {
        self.message.payload()
    }

    /// Shorthand for the message routing key.
    pub fn routing_key(&self) -> &RoutingKey {
        self.message.routing_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> RoutingKey {
        s.parse().unwrap()
    }

    #[test]
    fn message_accessors() {
        let msg = Message::new(key("a.b"), &b"hello"[..]);
        assert_eq!(msg.routing_key().as_str(), "a.b");
        assert_eq!(msg.payload().as_ref(), b"hello");
        assert_eq!(msg.len(), 5);
        assert!(!msg.is_empty());
    }

    #[test]
    fn empty_payload() {
        let msg = Message::new(key("a"), Bytes::new());
        assert!(msg.is_empty());
        assert_eq!(msg.len(), 0);
    }

    #[test]
    fn headers_set_get_iterate() {
        let msg = Message::new(key("a"), Bytes::new())
            .with_header("b", "2")
            .with_header("a", "1")
            .with_header("b", "3"); // replaces
        assert_eq!(msg.header("a"), Some("1"));
        assert_eq!(msg.header("b"), Some("3"));
        assert_eq!(msg.header("missing"), None);
        let all: Vec<_> = msg.headers().collect();
        assert_eq!(all, vec![("a", "1"), ("b", "3")]);
    }

    #[test]
    fn display_mentions_key_and_size() {
        let msg = Message::new(key("x.y"), &b"12345"[..]);
        let s = msg.to_string();
        assert!(s.contains("x.y"));
        assert!(s.contains('5'));
    }

    #[test]
    fn delivery_shorthands() {
        let msg = Arc::new(Message::new(key("q.r"), &b"p"[..]));
        let d = Delivery {
            tag: 1,
            message: Arc::clone(&msg),
            redelivered: false,
        };
        assert_eq!(d.payload().as_ref(), b"p");
        assert_eq!(d.routing_key().as_str(), "q.r");
    }
}
