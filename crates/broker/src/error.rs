//! Broker error types.

use std::error::Error;
use std::fmt;

/// Errors returned by [`Broker`](crate::Broker) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// No exchange with the given name exists.
    ExchangeNotFound(String),
    /// No queue with the given name exists.
    QueueNotFound(String),
    /// An exchange with this name already exists with a different type
    /// (AMQP calls this a *precondition failure*).
    ExchangeTypeMismatch {
        /// Name of the conflicting exchange.
        name: String,
    },
    /// A routing key or binding pattern was syntactically invalid.
    InvalidKey(String),
    /// The delivery tag is unknown for this queue (already acked, or never
    /// delivered).
    UnknownDeliveryTag {
        /// The queue on which the ack/nack was attempted.
        queue: String,
        /// The unrecognised tag.
        tag: u64,
    },
    /// The queue's capacity is exhausted and the message was rejected.
    QueueFull(String),
    /// A dead-letter configuration was rejected (zero attempts, or a queue
    /// targeting itself).
    InvalidDeadLetter(String),
    /// The write-ahead log failed (I/O error, corrupt record, or an armed
    /// crash-kill fired). The broker instance must be discarded and
    /// reopened to recover.
    Durability(String),
    /// A remote broker could not be reached, or the wire exchange failed
    /// (connection refused, protocol violation, shed by backpressure).
    /// The operation may or may not have taken effect — the caller's
    /// retry machinery decides what to do, exactly as it would for a
    /// network error against a real broker.
    Transport(String),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::ExchangeNotFound(name) => write!(f, "exchange not found: {name}"),
            BrokerError::QueueNotFound(name) => write!(f, "queue not found: {name}"),
            BrokerError::ExchangeTypeMismatch { name } => {
                write!(f, "exchange {name} already exists with a different type")
            }
            BrokerError::InvalidKey(key) => write!(f, "invalid routing key or pattern: {key:?}"),
            BrokerError::UnknownDeliveryTag { queue, tag } => {
                write!(f, "unknown delivery tag {tag} on queue {queue}")
            }
            BrokerError::QueueFull(name) => write!(f, "queue full: {name}"),
            BrokerError::InvalidDeadLetter(reason) => {
                write!(f, "invalid dead-letter configuration: {reason}")
            }
            BrokerError::Durability(msg) => write!(f, "durability failure: {msg}"),
            BrokerError::Transport(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl Error for BrokerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(BrokerError, &str)> = vec![
            (BrokerError::ExchangeNotFound("e1".into()), "e1"),
            (BrokerError::QueueNotFound("q1".into()), "q1"),
            (
                BrokerError::ExchangeTypeMismatch { name: "sc".into() },
                "sc",
            ),
            (BrokerError::InvalidKey("a..b".into()), "a..b"),
            (
                BrokerError::UnknownDeliveryTag {
                    queue: "q".into(),
                    tag: 42,
                },
                "42",
            ),
            (BrokerError::QueueFull("gf".into()), "gf"),
            (
                BrokerError::InvalidDeadLetter("self target".into()),
                "self target",
            ),
            (BrokerError::Durability("torn tail".into()), "torn tail"),
            (
                BrokerError::Transport("connection refused".into()),
                "connection refused",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BrokerError>();
    }
}
