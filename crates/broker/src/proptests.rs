//! In-crate property tests over broker invariants.

use crate::{topic_matches, Broker, CompiledPattern, ExchangeType, RoutingKey, TopicTrie};
use mps_faults::{FaultPlan, FaultSpec, FaultyLink, Link, LinkError};
use mps_types::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn key_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9_-]{1,6}", 1..5).prop_map(|w| w.join("."))
}

/// Keys over a deliberately tiny alphabet so arbitrary patterns collide
/// with them often — equivalence tests are worthless if nothing matches.
fn small_key_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec("[ab]{1,2}", 1..5).prop_map(|w| w.join("."))
}

/// Patterns over the same tiny alphabet plus both wildcards.
fn wild_pattern_strategy() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        2 => Just("*".to_owned()),
        2 => Just("#".to_owned()),
        3 => "[ab]{1,2}".prop_map(|w| w),
    ];
    prop::collection::vec(word, 1..5).prop_map(|w| w.join("."))
}

/// A broker publish boundary as a fault-injectable link.
struct BrokerProbe<'a> {
    broker: &'a Broker,
    exchange: &'a str,
}

impl Link for BrokerProbe<'_> {
    fn send(&self, route: &str, payload: &[u8]) -> Result<usize, LinkError> {
        self.broker
            .publish(self.exchange, route, payload.to_vec())
            .map_err(|err| LinkError::Unavailable(err.to_string()))
    }
}

/// An arbitrary (but sane) fault mix, exercising every fault class.
fn spec_strategy() -> impl Strategy<Value = FaultSpec> {
    (
        0.0..0.5f64,
        0.0..0.5f64,
        1i64..600,
        0.0..0.3f64,
        1u32..4,
        0.0..0.3f64,
        prop::option::of((0i64..100, 1i64..100)),
    )
        .prop_map(
            |(drop_prob, delay_prob, delay_s, duplicate_prob, max_duplicates, reorder_prob, bh)| {
                let mut spec = FaultSpec {
                    drop_prob,
                    delay_prob,
                    mean_delay: SimDuration::from_secs(delay_s),
                    duplicate_prob,
                    max_duplicates,
                    reorder_prob,
                    reorder_window: SimDuration::from_secs(30),
                    ..FaultSpec::none()
                };
                if let Some((from_s, len_s)) = bh {
                    spec = spec.with_blackhole(
                        "obs",
                        SimTime::from_millis(from_s * 1_000),
                        SimTime::from_millis((from_s + len_s) * 1_000),
                    );
                }
                spec
            },
        )
}

proptest! {
    #[test]
    fn valid_keys_parse_and_roundtrip(key in key_strategy()) {
        let parsed = RoutingKey::new(key.clone()).unwrap();
        prop_assert_eq!(parsed.as_str(), key.as_str());
        prop_assert_eq!(parsed.words().count(), key.split('.').count());
    }

    #[test]
    fn arbitrary_strings_never_panic_validation(s in ".{0,40}") {
        // Validation may accept or reject, but must never panic.
        let _ = RoutingKey::new(s.clone());
        let _ = crate::BindingPattern::new(s);
    }

    #[test]
    fn publish_consume_ack_conserves(keys in prop::collection::vec(key_strategy(), 1..25)) {
        let broker = Broker::new();
        broker.declare_exchange("e", ExchangeType::Topic).unwrap();
        broker.declare_queue("q").unwrap();
        broker.bind_queue("e", "q", "#").unwrap();
        for k in &keys {
            broker.publish("e", k, k.as_bytes().to_vec()).unwrap();
        }
        // Interleave partial consumes and acks.
        let mut seen = 0usize;
        while seen < keys.len() {
            let batch = broker.consume("q", 3).unwrap();
            prop_assert!(!batch.is_empty());
            for d in batch {
                prop_assert_eq!(d.payload().as_ref(), keys[seen].as_bytes());
                broker.ack("q", d.tag).unwrap();
                seen += 1;
            }
        }
        let m = broker.metrics();
        prop_assert_eq!(m.acked, keys.len() as u64);
        prop_assert_eq!(broker.queue_depth("q").unwrap(), 0);
    }

    #[test]
    fn nack_requeue_never_loses(n in 1usize..20, requeue_mask in any::<u32>()) {
        let broker = Broker::new();
        broker.declare_exchange("e", ExchangeType::Fanout).unwrap();
        broker.declare_queue("q").unwrap();
        broker.bind_queue("e", "q", "#").unwrap();
        for i in 0..n {
            broker.publish("e", "k", vec![i as u8]).unwrap();
        }
        // Consume all; nack some back, ack the rest.
        let batch = broker.consume("q", n).unwrap();
        let mut requeued = 0usize;
        for (i, d) in batch.iter().enumerate() {
            if requeue_mask & (1 << (i % 32)) != 0 {
                broker.nack("q", d.tag, true).unwrap();
                requeued += 1;
            } else {
                broker.ack("q", d.tag).unwrap();
            }
        }
        prop_assert_eq!(broker.queue_depth("q").unwrap(), requeued);
        // Redelivered flags are set on the survivors.
        for d in broker.consume("q", n).unwrap() {
            prop_assert!(d.redelivered);
            broker.ack("q", d.tag).unwrap();
        }
    }

    #[test]
    fn fault_plan_conserves_messages_for_any_seed(
        seed in any::<u64>(),
        spec in spec_strategy(),
        sends in 50usize..200,
    ) {
        let broker = Broker::new();
        broker.declare_exchange("e", ExchangeType::Topic).unwrap();
        broker.declare_queue("q").unwrap();
        broker.bind_queue("e", "q", "#").unwrap();
        let link = FaultyLink::new(
            BrokerProbe { broker: &broker, exchange: "e" },
            FaultPlan::new(seed, spec),
        );
        for i in 0..sends {
            let now = SimTime::from_millis(i as i64 * 1_000);
            link.advance_to(now).unwrap();
            link.send_at("obs.paris.noise", b"{}", now).unwrap();
        }
        link.drain_pending().unwrap();
        let stats = link.stats();
        let arrived = broker.queue_depth("q").unwrap() as u64;
        prop_assert_eq!(link.pending(), 0);
        // Zero silent loss: every send is delivered into the queue,
        // duplicated, or counted as dropped / black-holed.
        prop_assert_eq!(
            arrived + stats.dropped + stats.blackholed,
            sends as u64 + stats.duplicated
        );
    }

    #[test]
    fn dead_letter_policy_conserves_messages(
        n in 1usize..15,
        max_attempts in 1u32..6,
        ack_mask in any::<u16>(),
    ) {
        let broker = Broker::new();
        broker.declare_exchange("e", ExchangeType::Fanout).unwrap();
        broker.declare_queue("q").unwrap();
        broker.declare_queue("dlq").unwrap();
        broker.bind_queue("e", "q", "#").unwrap();
        broker.configure_dead_letter("q", max_attempts, "dlq").unwrap();
        for i in 0..n {
            broker.publish("e", "k", vec![i as u8]).unwrap();
        }
        // Ack a subset; nack the rest until every survivor dead-letters.
        let mut acked = 0usize;
        loop {
            let batch = broker.consume("q", n).unwrap();
            if batch.is_empty() {
                break;
            }
            for d in batch {
                if ack_mask & (1 << (d.payload()[0] % 16)) != 0 {
                    broker.ack("q", d.tag).unwrap();
                    acked += 1;
                } else {
                    broker.nack("q", d.tag, true).unwrap();
                }
            }
        }
        let dead_lettered = broker.queue_depth("dlq").unwrap();
        prop_assert_eq!(acked + dead_lettered, n, "every message acked or dead-lettered");
        let m = broker.metrics();
        prop_assert_eq!(m.dead_lettered, dead_lettered as u64);
        prop_assert_eq!(m.dropped, 0);
        // A nacked delivery is a failed delivery, every time.
        prop_assert!(m.delivery_failed >= m.dead_lettered);
    }

    #[test]
    fn trie_router_equals_naive_matcher(
        patterns in prop::collection::vec(wild_pattern_strategy(), 1..40),
        keys in prop::collection::vec(small_key_strategy(), 1..20),
    ) {
        // The trie must agree with the retained naive matcher
        // (`topic_matches`) for every binding set and key.
        let mut trie = TopicTrie::new();
        for (id, pattern) in patterns.iter().enumerate() {
            trie.insert(&CompiledPattern::new(&pattern.parse().unwrap()), id);
        }
        for key in &keys {
            let words: Vec<&str> = key.split('.').collect();
            let naive: Vec<usize> = patterns
                .iter()
                .enumerate()
                .filter(|(_, p)| topic_matches(p, key))
                .map(|(id, _)| id)
                .collect();
            prop_assert_eq!(trie.matches(&words), naive, "key {}", key);
        }
    }

    #[test]
    fn published_routes_equal_naive_expectation(
        bindings in prop::collection::vec((0usize..4, wild_pattern_strategy()), 1..25),
        keys in prop::collection::vec(small_key_strategy(), 1..10),
    ) {
        // End to end through the broker (trie + route cache): the routed
        // queue count must equal the naive per-binding scan, on the cold
        // publish and again on the cached one.
        let broker = Broker::new();
        broker.declare_exchange("e", ExchangeType::Topic).unwrap();
        for q in 0..4 {
            broker.declare_queue(&format!("q{q}")).unwrap();
        }
        for (q, pattern) in &bindings {
            broker.bind_queue("e", &format!("q{q}"), pattern).unwrap();
        }
        for key in &keys {
            let expected: BTreeSet<usize> = bindings
                .iter()
                .filter(|(_, p)| topic_matches(p, key))
                .map(|(q, _)| *q)
                .collect();
            let cold = broker.publish("e", key, &b""[..]).unwrap();
            let cached = broker.publish("e", key, &b""[..]).unwrap();
            prop_assert_eq!(cold, expected.len(), "cold route for {}", key);
            prop_assert_eq!(cached, expected.len(), "cached route for {}", key);
        }
    }

    #[test]
    fn direct_index_equals_literal_scan(
        bindings in prop::collection::vec((0usize..4, small_key_strategy()), 1..25),
        keys in prop::collection::vec(small_key_strategy(), 1..10),
    ) {
        // Direct exchanges compare byte-for-byte; the BTreeMap key index
        // must agree with a literal scan of the binding list.
        let broker = Broker::new();
        broker.declare_exchange("d", ExchangeType::Direct).unwrap();
        for q in 0..4 {
            broker.declare_queue(&format!("q{q}")).unwrap();
        }
        for (q, pattern) in &bindings {
            broker.bind_queue("d", &format!("q{q}"), pattern).unwrap();
        }
        for key in &keys {
            let expected: BTreeSet<usize> = bindings
                .iter()
                .filter(|(_, p)| p == key)
                .map(|(q, _)| *q)
                .collect();
            let routed = broker.publish("d", key, &b""[..]).unwrap();
            prop_assert_eq!(routed, expected.len(), "direct route for {}", key);
        }
    }

    #[test]
    fn bounded_queue_never_exceeds_capacity(cap in 1usize..10, publishes in 1usize..40) {
        let broker = Broker::new();
        broker.declare_exchange("e", ExchangeType::Fanout).unwrap();
        broker.declare_queue_with_capacity("q", cap).unwrap();
        broker.bind_queue("e", "q", "#").unwrap();
        for _ in 0..publishes {
            broker.publish("e", "k", &b"m"[..]).unwrap();
        }
        prop_assert!(broker.queue_depth("q").unwrap() <= cap);
        let m = broker.metrics();
        prop_assert_eq!(
            m.routed + m.dropped,
            publishes as u64,
            "every publish either routed or dropped"
        );
    }
}
