//! In-crate property tests over broker invariants.

use crate::{Broker, ExchangeType, RoutingKey};
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9_-]{1,6}", 1..5).prop_map(|w| w.join("."))
}

proptest! {
    #[test]
    fn valid_keys_parse_and_roundtrip(key in key_strategy()) {
        let parsed = RoutingKey::new(key.clone()).unwrap();
        prop_assert_eq!(parsed.as_str(), key.as_str());
        prop_assert_eq!(parsed.words().count(), key.split('.').count());
    }

    #[test]
    fn arbitrary_strings_never_panic_validation(s in ".{0,40}") {
        // Validation may accept or reject, but must never panic.
        let _ = RoutingKey::new(s.clone());
        let _ = crate::BindingPattern::new(s);
    }

    #[test]
    fn publish_consume_ack_conserves(keys in prop::collection::vec(key_strategy(), 1..25)) {
        let broker = Broker::new();
        broker.declare_exchange("e", ExchangeType::Topic).unwrap();
        broker.declare_queue("q").unwrap();
        broker.bind_queue("e", "q", "#").unwrap();
        for k in &keys {
            broker.publish("e", k, k.as_bytes().to_vec()).unwrap();
        }
        // Interleave partial consumes and acks.
        let mut seen = 0usize;
        while seen < keys.len() {
            let batch = broker.consume("q", 3).unwrap();
            prop_assert!(!batch.is_empty());
            for d in batch {
                prop_assert_eq!(d.payload().as_ref(), keys[seen].as_bytes());
                broker.ack("q", d.tag).unwrap();
                seen += 1;
            }
        }
        let m = broker.metrics();
        prop_assert_eq!(m.acked, keys.len() as u64);
        prop_assert_eq!(broker.queue_depth("q").unwrap(), 0);
    }

    #[test]
    fn nack_requeue_never_loses(n in 1usize..20, requeue_mask in any::<u32>()) {
        let broker = Broker::new();
        broker.declare_exchange("e", ExchangeType::Fanout).unwrap();
        broker.declare_queue("q").unwrap();
        broker.bind_queue("e", "q", "#").unwrap();
        for i in 0..n {
            broker.publish("e", "k", vec![i as u8]).unwrap();
        }
        // Consume all; nack some back, ack the rest.
        let batch = broker.consume("q", n).unwrap();
        let mut requeued = 0usize;
        for (i, d) in batch.iter().enumerate() {
            if requeue_mask & (1 << (i % 32)) != 0 {
                broker.nack("q", d.tag, true).unwrap();
                requeued += 1;
            } else {
                broker.ack("q", d.tag).unwrap();
            }
        }
        prop_assert_eq!(broker.queue_depth("q").unwrap(), requeued);
        // Redelivered flags are set on the survivors.
        for d in broker.consume("q", n).unwrap() {
            prop_assert!(d.redelivered);
            broker.ack("q", d.tag).unwrap();
        }
    }

    #[test]
    fn bounded_queue_never_exceeds_capacity(cap in 1usize..10, publishes in 1usize..40) {
        let broker = Broker::new();
        broker.declare_exchange("e", ExchangeType::Fanout).unwrap();
        broker.declare_queue_with_capacity("q", cap).unwrap();
        broker.bind_queue("e", "q", "#").unwrap();
        for _ in 0..publishes {
            broker.publish("e", "k", &b"m"[..]).unwrap();
        }
        prop_assert!(broker.queue_depth("q").unwrap() <= cap);
        let m = broker.metrics();
        prop_assert_eq!(
            m.routed + m.dropped,
            publishes as u64,
            "every publish either routed or dropped"
        );
    }
}
