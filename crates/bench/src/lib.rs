//! # mps-bench — benchmark harness and figure regeneration
//!
//! Two kinds of targets live here:
//!
//! * the **`figures` binary** (`cargo run -p mps-bench --bin figures --
//!   all`) regenerates every table and figure of the paper's evaluation
//!   (Figures 4 and 8–21) from a deployment replay, printing the measured
//!   series next to the published values;
//! * **Criterion benches** (`cargo bench -p mps-bench`) measure the
//!   substrates: broker routing, document-store operations, end-to-end
//!   ingest, BLUE assimilation, the client-buffering ablation and raw
//!   simulation throughput.
//!
//! This library crate only hosts shared helpers for those targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;

use mps_core::{Dataset, Deployment, ExperimentConfig};

/// Runs the replay used by the figure harness. `quick` selects the light
/// two-month configuration; otherwise the 10-month, 1/100-scale
/// paper-shaped replay runs (use `--release`).
pub fn figure_dataset(quick: bool) -> Dataset {
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper_scaled()
    };
    Deployment::new(config).run()
}

/// A longitudinal replay covering all three app versions with several
/// devices per model — used by the per-user and delay figures.
pub fn longitudinal_dataset() -> Dataset {
    let config = ExperimentConfig::quick()
        .with_months(10)
        .with_scale(0.05)
        .with_models(vec![
            mps_types::DeviceModel::OneplusA0001,
            mps_types::DeviceModel::SamsungSmG901f,
        ]);
    Deployment::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_dataset_is_nonempty() {
        let ds = figure_dataset(true);
        assert!(ds.stored() > 1_000);
    }
}
