//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! # everything, light two-month replay:
//! cargo run --release -p mps-bench --bin figures -- all --quick
//! # one exhibit, the 10-month 1/100-scale replay:
//! cargo run --release -p mps-bench --bin figures -- fig17
//! ```
//!
//! Exhibits: `fig4 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16
//! fig17 fig18 fig19 fig20 fig21 calib hourly resilience tracing fleet
//! all`.
//!
//! The `tracing` exhibit drives a seeded faulted pipeline run, renders
//! the per-hop latency waterfall, loss-attribution table and a sample
//! trace timeline from the flight recorder, and exits non-zero if any
//! trace failed to reach a terminal outcome. `--trace-export=PATH`
//! additionally writes the raw span stream as JSONL.
//!
//! The `fleet` exhibit deploys the broker and the docstore behind real
//! TCP servers, pushes a faulted upload run through them, fans in a
//! 200-member slice of a million-device [`mps_mobile::Fleet`] over a
//! clean `RemoteBroker` uplink, then scrapes
//! both daemons' admin opcodes exactly as `xtask obs` would and prints
//! the merged ops dashboard (fleet table, cross-process waterfall, loss
//! conservation, top slow RPCs, SLO burn). It exits non-zero if an
//! instance is unready or the trace ledger does not balance.

use mps_analytics::{
    AccuracyReport, ActivityReport, DelayReport, DiurnalReport, GrowthReport, ModelTable,
    ProviderByModeReport, ProviderFilter, SplReport,
};
use mps_bench::{figure_dataset, longitudinal_dataset};
use mps_core::{BatteryLab, CalibrationStrategy, CalibrationStudy, Dataset};
use mps_types::{Activity, AppVersion, DeviceModel, LocationProvider, SensingMode};
use std::collections::BTreeSet;

fn header(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

fn fig4() {
    header("Figure 4 — noise map vs complaint locations (San Francisco motivation)");
    let study = CalibrationStudy::new(42);
    let r = study.fig4_correlation();
    println!("noise/complaint per-cell correlation: r = {r:.2}");
    println!("paper: 'strong correlation' between simulated noise and 311 complaints");
}

fn fig8(dataset: &Dataset) {
    header("Figure 8 — contributed observations over the deployment");
    let growth = GrowthReport::build(&dataset.observations);
    print!("{growth}");
    let (total, localized) = growth.final_totals();
    println!(
        "final: {total} observations, {:.1}% localized  (paper: 45M total over 10 months, ~40% localized; scaled replay)",
        localized as f64 / total.max(1) as f64 * 100.0
    );
    println!("accelerating growth: {}", growth.accelerated());
}

fn fig9(dataset: &Dataset) {
    header("Figure 9 — top 20 models (devices / measurements / localized)");
    let table = ModelTable::build(&dataset.observations);
    print!("{table}");
    println!("\npaper totals: 2 091 devices, 23 108 136 measurements, 9 556 174 localized (41.4%)");
    println!(
        "paper per-model localized%: I9505 43.2, D5803 71.0, HTCONE_M8 20.8, GT-P5210 21.7 ..."
    );
}

fn accuracy_figure(dataset: &Dataset, filter: ProviderFilter, title: &str, paper_note: &str) {
    header(title);
    let report = AccuracyReport::build(&dataset.observations, filter);
    print!("{report}");
    println!("{paper_note}");
}

fn fig14(dataset: &Dataset) {
    header("Figure 14 — raw SPL distribution (‰) per model");
    let report = SplReport::by_model(&dataset.observations);
    println!(
        "{:<18} {:>8} {:>10} {:>12}",
        "model", "n", "peak dB", "active bump"
    );
    for (label, hist) in &report.groups {
        println!(
            "{:<18} {:>8} {:>10.1} {:>11.1}%",
            label,
            hist.total(),
            hist.peak_center().unwrap_or(f64::NAN),
            bump_share(&report, label) * 100.0
        );
    }
    println!(
        "\ncross-model peak spread: {:.1} dB  (paper: peak position 'varies significantly across device models')",
        report.peak_spread_db()
    );
}

fn bump_share(report: &SplReport, label: &str) -> f64 {
    let hist = &report.groups[label];
    let edges = hist.edges();
    let above: u64 = hist
        .counts()
        .iter()
        .enumerate()
        .filter(|(i, _)| edges[*i] >= 55.0)
        .map(|(_, c)| *c)
        .sum();
    (above + hist.overflow()) as f64 / hist.total().max(1) as f64
}

fn fig15(longitudinal: &Dataset) {
    header("Figure 15 — raw SPL distribution (‰) for top users of SAMSUNG SM-G901F");
    let report =
        SplReport::by_user_of_model(&longitudinal.observations, DeviceModel::SamsungSmG901f, 20);
    println!("{:<12} {:>8} {:>10}", "user", "n", "peak dB");
    for (label, hist) in &report.groups {
        println!(
            "{:<12} {:>8} {:>10.1}",
            label,
            hist.total(),
            hist.peak_center().unwrap_or(f64::NAN)
        );
    }
    println!(
        "\nsame-model user peak spread: {:.1} dB  (paper: same-model measurements 'follow much similar patterns')",
        report.peak_spread_db()
    );
}

fn fig16() {
    header("Figure 16 — battery depletion per client version / radio");
    let report = BatteryLab::new().run();
    print!("{report}");
    println!(
        "\npaper: unbuffered+WiFi ≈ 2x no-app; 3G +50% over WiFi; buffered < +50% over no-app"
    );
}

fn fig17(longitudinal: &Dataset) {
    header("Figure 17 — transmission delay vs energy efficiency (CDF per version)");
    let report = DelayReport::build(&longitudinal.observations);
    print!("{report}");
    println!(
        "\npaper (v1.2.9): ~30% within 10 s, ~35% beyond 2 h; (v1.3): most of the rest within 1 h, ~45% beyond 2 h"
    );
    for v in report.versions() {
        if let Some(m) = report.median_s(v) {
            println!("median delay {v}: {m:.0} s");
        }
    }
}

fn fig18(dataset: &Dataset) {
    header("Figure 18 — daily distribution (%) of measurements, top-20 models");
    let report = DiurnalReport::by_model(&dataset.observations);
    print!("{report}");
    println!(
        "10:00-21:00 share: {:.1}%  (paper: 'highest participation from 10AM to 9PM')",
        report.fraction_between(10, 21) * 100.0
    );
    println!("all 24 hours covered: {}", report.covers_all_hours());
}

fn fig19(longitudinal: &Dataset) {
    header("Figure 19 — daily distributions of individual One Plus One users");
    let report =
        DiurnalReport::by_user_of_model(&longitudinal.observations, DeviceModel::OneplusA0001, 10);
    println!("{:<12} {:>8} {:>10}", "user", "n", "peak hour");
    let peaks = report.peak_hours();
    for (label, counts) in &report.groups {
        println!(
            "{:<12} {:>8} {:>10}",
            label,
            counts.iter().sum::<u64>(),
            peaks.get(label).copied().unwrap_or(0)
        );
    }
    let distinct: BTreeSet<u32> = peaks.into_values().collect();
    println!(
        "\ndistinct peak hours across users: {}  (paper: 'quite large diversity' across users)",
        distinct.len()
    );
}

fn fig20(dataset: &Dataset, longitudinal: &Dataset) {
    header("Figure 20 — location providers by sensing mode");
    let report = ProviderByModeReport::build(&dataset.observations);
    print!("{report}");
    println!(
        "\nmanual GPS gain: {:+.1} pts  (paper: > +20 pts)",
        report.gps_gain_pts(SensingMode::Manual)
    );
    let journey = ProviderByModeReport::build(&longitudinal.observations);
    if journey.total(SensingMode::Journey) > 0 {
        println!(
            "journey GPS gain (longitudinal replay): {:+.1} pts  (paper: ~+40 pts)",
            journey.gps_gain_pts(SensingMode::Journey)
        );
    }
}

fn fig21(dataset: &Dataset) {
    header("Figure 21 — distribution of user activities");
    let report = ActivityReport::build(&dataset.observations);
    print!("{report}");
    println!(
        "\nstill {:.0}% / moving {:.1}% / unqualified {:.0}%  (paper: ~70% / <10% / ~20%)",
        report.share(Activity::Still) * 100.0,
        report.moving_share() * 100.0,
        report.unqualified_share() * 100.0
    );
}

fn hourly() {
    header("Hourly assimilation (Section 8 research direction)");
    use mps_assim::{Blue, CityModel, DiurnalAnalysis, HourlyObservation, NoiseSimulator, Road};
    use mps_simcore::SimRng;
    use mps_types::GeoBounds;
    let mut rng = SimRng::new(42);
    let city = CityModel::synthetic(GeoBounds::paris(), 4, 30, &mut rng);
    let truth_sim = NoiseSimulator::new(city.clone());
    let degraded: Vec<Road> = city
        .roads()
        .iter()
        .map(|r| Road {
            a: r.a,
            b: r.b,
            emission_db: r.emission_db - 4.0,
        })
        .collect();
    let model_sim = NoiseSimulator::new(CityModel::new(GeoBounds::paris(), degraded, vec![]));
    let truth: Vec<_> = (0..24)
        .map(|h| truth_sim.simulate_at_hour(16, 16, h))
        .collect();
    let mut observations = Vec::new();
    for hour in 0..24u32 {
        for _ in 0..12 {
            let at =
                GeoBounds::paris().lerp(rng.uniform_in(0.05, 0.95), rng.uniform_in(0.05, 0.95));
            observations.push(HourlyObservation {
                at,
                value_db: truth[hour as usize].sample(at).expect("inside") + rng.normal(0.0, 1.0),
                sigma_db: 1.5,
                hour,
            });
        }
    }
    let analysis = DiurnalAnalysis::new(Blue::new(4.0, 1_500.0), 16, 16);
    let hourly = analysis.run(&model_sim, &observations).expect("analysis");
    let static_field = analysis
        .run_static(&model_sim, &observations)
        .expect("analysis");
    println!("RMSE vs hour-varying truth over 24 hourly maps:");
    println!(
        "  static all-day analysis : {:.2} dB",
        static_field.rmse_against(&truth)
    );
    println!(
        "  hourly analyses         : {:.2} dB",
        hourly.rmse_against(&truth)
    );
    println!("\npaper (§8): time-varying urban phenomena call for adapted assimilation;");
    println!("hour-resolved analyses track the diurnal cycle a static map cannot.");
}

fn calib() {
    header("Calibration-granularity ablation (Section 5.2 claim)");
    let study = CalibrationStudy::new(42);
    for strategy in CalibrationStrategy::ALL {
        println!("{:<22} {}", strategy.label(), study.run(strategy));
    }
    println!("\npaper: 'calibration may be achieved per model rather than per device'");
}

fn resilience() {
    header("Resilience — message conservation under seeded fault plans (Section 6 'don'ts')");
    use mps_faults::{FaultPlan, FaultSpec, FaultyLink, Link, LinkError};
    use mps_types::SimTime;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Sink(AtomicU64);
    impl Link for Sink {
        fn send(&self, _route: &str, _payload: &[u8]) -> Result<usize, LinkError> {
            self.0.fetch_add(1, Ordering::Relaxed);
            Ok(1)
        }
    }

    const SENT: u64 = 10_000;
    println!(
        "{:<16} {:>7} {:>8} {:>8} {:>10} {:>7} {:>6} {:>9} {:>12}",
        "plan",
        "sent",
        "arrived",
        "dropped",
        "blackholed",
        "dup",
        "delay",
        "reordered",
        "conserved"
    );
    for (label, spec) in [
        ("none", FaultSpec::none()),
        ("flaky-cellular", FaultSpec::flaky_cellular()),
        (
            "stress+blackhole",
            FaultSpec::stress().with_blackhole(
                "obs.paris",
                SimTime::from_millis(2_000_000),
                SimTime::from_millis(4_000_000),
            ),
        ),
    ] {
        let link = FaultyLink::new(Sink::default(), FaultPlan::new(42, spec));
        for i in 0..SENT {
            let now = SimTime::from_millis(i as i64 * 1_000);
            link.advance_to(now).expect("sink never fails");
            link.send_at("obs.paris.noise", b"{}", now)
                .expect("sink never fails");
        }
        link.drain_pending().expect("sink never fails");
        let stats = link.stats();
        let arrived = link.inner().0.load(Ordering::Relaxed);
        let conserved = arrived + stats.dropped + stats.blackholed == SENT + stats.duplicated;
        println!(
            "{:<16} {:>7} {:>8} {:>8} {:>10} {:>7} {:>6} {:>9} {:>12}",
            label,
            SENT,
            arrived,
            stats.dropped,
            stats.blackholed,
            stats.duplicated,
            stats.delayed,
            stats.reordered,
            if conserved { "yes" } else { "NO — BUG" }
        );
    }
    println!("\nevery loss is injected and counted: arrived + dropped + blackholed");
    println!("== sent + duplicated, for any seed (see broker proptests and");
    println!("tests/resilience_pipeline.rs for the machine-checked versions).");
}

fn tracing(export: Option<&str>) {
    header("Tracing — latency waterfall and loss attribution from the flight recorder");
    use mps_assim::{Blue, CityModel, DiurnalAnalysis, HourlyObservation, NoiseSimulator};
    use mps_broker::Broker;
    use mps_faults::{FaultPlan, FaultSpec, FaultyLink, Link, LinkError};
    use mps_goflow::{GoFlowServer, ObservationQuery, Role};
    use mps_mobile::{BrokerLink, GoFlowClient, RetryPolicy};
    use mps_simcore::SimRng;
    use mps_telemetry::trace::{
        FlightRecorder, LatencyWaterfall, LossAttribution, TraceId, TraceIndex,
    };
    use mps_types::{
        AppId, GeoBounds, GeoPoint, LocationFix, Observation, SimDuration, SimTime, SoundLevel,
    };
    use std::sync::Arc;

    struct DownLink;
    impl Link for DownLink {
        fn send(&self, _route: &str, _payload: &[u8]) -> Result<usize, LinkError> {
            Err(LinkError::Unavailable("server outage".into()))
        }
    }

    let recorder = FlightRecorder::global();
    recorder.clear();

    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), mps_docstore::Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).expect("register app");
    server.set_late_quarantine(Some(SimDuration::from_mins(10)));
    let token = server
        .register_user(&app, 11.into(), Role::Contributor)
        .expect("register user");
    let session = server.login(&token).expect("login");
    let key = session.observation_key("noise", "FR75013");

    // Four simulated hours, one observation per minute, through drops,
    // delays, duplicates, a 15-minute black-hole and a visible outage.
    let spec = FaultSpec {
        drop_prob: 0.08,
        delay_prob: 0.20,
        mean_delay: SimDuration::from_mins(5),
        duplicate_prob: 0.05,
        max_duplicates: 2,
        reorder_prob: 0.05,
        reorder_window: SimDuration::from_secs(30),
        ..FaultSpec::none()
    }
    .with_blackhole(
        "",
        SimTime::EPOCH + SimDuration::from_mins(120),
        SimTime::EPOCH + SimDuration::from_mins(135),
    );
    let faulty = FaultyLink::new(
        BrokerLink::new(&broker, session.exchange()),
        FaultPlan::new(20_160, spec),
    );
    let mut client = GoFlowClient::new(session.exchange(), key, AppVersion::V1_2_9)
        .with_retry_policy(
            RetryPolicy {
                max_attempts: 20,
                ..RetryPolicy::default()
            },
            7,
        );

    const CYCLES: i64 = 240;
    const OUTAGE: std::ops::Range<i64> = 60..75;
    let bounds = GeoBounds::paris();
    let mut rng = SimRng::new(9);
    for i in 0..CYCLES {
        let now = SimTime::EPOCH + SimDuration::from_mins(i);
        let at = bounds.lerp(rng.uniform_in(0.05, 0.95), rng.uniform_in(0.05, 0.95));
        client.record(
            Observation::builder()
                .device(11.into())
                .user(11.into())
                .model(DeviceModel::LgeNexus5)
                .captured_at(now)
                .spl(SoundLevel::new(45.0 + (i % 30) as f64))
                .location(LocationFix::new(at, 30.0, LocationProvider::Network))
                .app_version(AppVersion::V1_2_9)
                .build(),
        );
        if OUTAGE.contains(&i) {
            client.on_cycle_at(&DownLink, true, now);
        } else {
            faulty.advance_to(now).expect("broker link never fails");
            client.on_cycle_at(&faulty.at(now), true, now);
        }
    }
    let end = SimTime::EPOCH + SimDuration::from_mins(CYCLES);
    client.flush_at(&faulty.at(end), end);
    faulty.drain_pending().expect("broker link never fails");

    // A crash-looping consumer dead-letters the two oldest survivors.
    let gf_queue = "gf-SC-queue";
    for _ in 0..5 {
        for delivery in broker.consume(gf_queue, 2).expect("gf queue") {
            broker.nack(gf_queue, delivery.tag, true).expect("nack");
        }
    }

    server.ingest_pending(&app, end, 1_000_000).expect("ingest");

    // Hour-resolved assimilation over everything stored: the fan-in span
    // links every member observation's trace into one analysis product.
    let docs = server.query(&app, &ObservationQuery::new()).expect("query");
    let mut members: Vec<TraceId> = Vec::new();
    let mut observations = Vec::new();
    for doc in &docs {
        let (Some(lat), Some(lon), Some(spl), Some(hour)) = (
            doc["lat"].as_f64(),
            doc["lon"].as_f64(),
            doc["spl"].as_f64(),
            doc["hour"].as_u64(),
        ) else {
            continue;
        };
        if let Some(trace) = doc["trace"].as_str().and_then(|t| t.parse().ok()) {
            members.push(trace);
        }
        observations.push(HourlyObservation {
            at: GeoPoint { lat, lon },
            value_db: spl,
            sigma_db: 1.5,
            hour: hour as u32,
        });
    }
    let city = CityModel::synthetic(bounds, 4, 30, &mut rng);
    let analysis = DiurnalAnalysis::new(Blue::new(4.0, 1_500.0), 8, 8);
    analysis
        .run_traced(
            &NoiseSimulator::new(city),
            &observations,
            &members,
            "epoch+4h",
            end.as_millis(),
        )
        .expect("assimilation");

    let spans = recorder.snapshot();
    let index = TraceIndex::from_spans(spans.clone());
    println!(
        "spans recorded: {} (ring dropped {}), traces: {}",
        recorder.recorded(),
        recorder.dropped(),
        index.len()
    );

    println!("\nper-hop latency waterfall (sim-clock):");
    print!("{}", LatencyWaterfall::from_spans(&spans).render());

    println!("\nloss attribution (cross-checks the conservation counters):");
    print!("{}", LossAttribution::from_spans(&spans).render());

    let busiest = index
        .iter()
        .filter(|t| t.spans.iter().all(|s| s.links.is_empty()))
        .max_by_key(|t| t.spans.len())
        .expect("at least one observation trace");
    println!("\nbusiest observation trace:");
    print!("{}", busiest.render());

    if let Some(path) = export {
        std::fs::write(path, recorder.export_jsonl()).expect("write trace export");
        println!("\nexported {} spans to {path}", recorder.recorded());
    }

    let unterminated = index.unterminated();
    if !unterminated.is_empty() {
        eprintln!(
            "BUG: {} traces have no terminal outcome: {:?}",
            unterminated.len(),
            unterminated
        );
        std::process::exit(1);
    }
    println!("\nevery trace reached a terminal outcome (stored, quarantined,");
    println!("dead-lettered, dropped or black-holed): zero silent loss, attributed per hop.");
}

fn fleet() {
    header("Fleet — multi-process ops dashboard over the admin opcodes");
    use mps_broker::{Broker, BrokerTransport};
    use mps_docstore::{DocstoreTransport, Store};
    use mps_faults::{FaultPlan, FaultSpec};
    use mps_goflow::{GoFlowServer, Role};
    use mps_mobile::{BrokerLink, Fleet, GoFlowClient, RetryPolicy};
    use mps_net::client::ClientConfig;
    use mps_net::fleet::{Endpoint, FleetSnapshot};
    use mps_net::{
        BrokerService, DocstoreService, RemoteBroker, RemoteStore, ServerConfig, SocketFaultProxy,
        WireServer,
    };
    use mps_telemetry::trace::FlightRecorder;
    use mps_types::{
        AppId, GeoPoint, LocationFix, LocationProvider, Observation, SensingMode, SimDuration,
        SimTime, SoundLevel,
    };
    use std::sync::Arc;

    let recorder = FlightRecorder::global();
    recorder.clear();

    // The two daemons, exactly as `mps-brokerd` / `mps-docstored` would
    // run them, with fleet instance names.
    let broker_backend: Arc<dyn BrokerTransport> = Arc::new(Broker::new());
    let broker_srv = WireServer::bind(
        "127.0.0.1:0",
        Arc::new(BrokerService::new(Arc::clone(&broker_backend))),
        ServerConfig {
            instance: "brokerd".to_string(),
            ..ServerConfig::default()
        },
    )
    .expect("bind brokerd");
    let store_backend: Arc<dyn DocstoreTransport> = Arc::new(Store::new());
    let store_srv = WireServer::bind(
        "127.0.0.1:0",
        Arc::new(DocstoreService::new(store_backend)),
        ServerConfig {
            instance: "docstored".to_string(),
            ..ServerConfig::default()
        },
    )
    .expect("bind docstored");

    // GoFlow talks to both over the wire; the mobile upload path goes
    // through a fault proxy that tears a fifth of the TCP frames.
    let remote_broker: Arc<dyn BrokerTransport> = Arc::new(RemoteBroker::connect(
        broker_srv.local_addr().to_string(),
        ClientConfig::default(),
    ));
    let remote_store: Arc<dyn DocstoreTransport> = Arc::new(RemoteStore::connect(
        store_srv.local_addr().to_string(),
        ClientConfig::default(),
    ));
    let server = GoFlowServer::over(remote_broker, remote_store);
    let app = AppId::soundcity();
    server.register_app(&app).expect("register app");
    let token = server
        .register_user(&app, 23.into(), Role::Contributor)
        .expect("register user");
    let session = server.login(&token).expect("login");
    let key = session.observation_key("noise", "FR75013");
    let spec = FaultSpec {
        drop_prob: 0.2,
        ..FaultSpec::none()
    };
    let mut proxy = SocketFaultProxy::start(broker_srv.local_addr(), FaultPlan::new(515, spec))
        .expect("start fault proxy");
    let faulted_broker =
        RemoteBroker::connect(proxy.local_addr().to_string(), ClientConfig::default());
    let link = BrokerLink::new(&faulted_broker, session.exchange());

    const COUNT: i64 = 60;
    let mut client = GoFlowClient::new(session.exchange(), key, AppVersion::V1_2_9)
        .with_retry_policy(
            RetryPolicy {
                max_attempts: 50,
                ..RetryPolicy::default()
            },
            13,
        );
    for i in 0..COUNT {
        let now = SimTime::EPOCH + SimDuration::from_mins(i);
        client.record(
            Observation::builder()
                .device(23.into())
                .user(23.into())
                .model(DeviceModel::LgeNexus5)
                .captured_at(now)
                .spl(SoundLevel::new(48.0 + (i % 20) as f64))
                .location(LocationFix::new(
                    GeoPoint::PARIS,
                    25.0,
                    LocationProvider::Network,
                ))
                .app_version(AppVersion::V1_2_9)
                .build(),
        );
        client.on_cycle_at(&link, true, now);
    }
    let mut now = SimTime::EPOCH + SimDuration::from_mins(COUNT);
    for _ in 0..200 {
        if client.pending() == 0 && client.queued_retries() == 0 {
            break;
        }
        client.flush_at(&link, now);
        now = now + SimDuration::from_mins(5);
    }
    server
        .ingest_pending(&app, now, 1_000_000)
        .expect("ingest stored observations");

    // A fleet slice on top of the single faulted client: 200 members of
    // a million-device crowd (every 5 000th index) upload one capture
    // each through a clean TCP uplink to the same brokerd, exercising
    // the `RemoteBroker` path at fan-in before the dashboard scrape.
    let fleet = Fleet::new(29, 1_000_000);
    let uplink: Arc<dyn BrokerTransport> = Arc::new(RemoteBroker::connect(
        broker_srv.local_addr().to_string(),
        ClientConfig::default(),
    ));
    let mut published = 0usize;
    for index in fleet.shard_members(0, 5_000) {
        let mut device = fleet.device(index);
        let obs = device.capture(now, SensingMode::Opportunistic);
        let fleet_key = session.observation_key("noise", &format!("Z{:03}", index % 120));
        let payload = serde_json::to_vec(&obs).expect("serializable observation");
        uplink
            .publish(session.exchange(), &fleet_key, &payload)
            .expect("fleet publish over TCP");
        published += 1;
    }
    let outcome = server
        .ingest_pending(&app, now + SimDuration::from_mins(5), published)
        .expect("ingest fleet observations");
    assert_eq!(
        outcome.stored, published,
        "fleet slice must store every published observation"
    );
    println!(
        "\nfleet slice: {published} of {} devices uploaded one capture each over real",
        fleet.len()
    );
    println!(
        "TCP (RemoteBroker -> brokerd); the whole crowd would offer ~{:.1}M obs/day,",
        fleet.expected_observations_per_day() / 1e6
    );
    println!(
        "peaking at ~{:.0} arrivals per 5-minute slot.",
        fleet.peak_slot_arrivals()
    );

    // Scrape both daemons exactly as `xtask obs` would (drain mode, so
    // the shared in-process recorder is exported exactly once).
    let endpoints = [
        Endpoint {
            name: "brokerd".to_string(),
            addr: broker_srv.local_addr().to_string(),
        },
        Endpoint {
            name: "docstored".to_string(),
            addr: store_srv.local_addr().to_string(),
        },
    ];
    let snapshot = FleetSnapshot::scrape(&endpoints, &ClientConfig::default(), true);
    print!("{}", snapshot.render_dashboard(50.0));
    proxy.stop();

    let ledger = snapshot.conservation();
    let ready = snapshot
        .instances
        .iter()
        .all(|i| i.error.is_none() && i.ready());
    if !ready || !ledger.balanced() {
        eprintln!("BUG: fleet unhealthy (ready {ready}) or ledger unbalanced ({ledger:?})");
        std::process::exit(1);
    }
    println!("\nboth daemons scraped over their own wire protocol: merged metrics,");
    println!("stitched traces and slow RPCs from one `figures fleet` invocation.");
}

fn pipeline_health() {
    header("Pipeline health — aggregate telemetry from this run");
    let registry = mps_telemetry::Registry::global();
    if registry.names().is_empty() {
        println!("no metrics recorded (no exhibit exercised the pipeline)");
        return;
    }
    print!("{}", registry.render_text());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace_export = args
        .iter()
        .find_map(|a| a.strip_prefix("--trace-export="))
        .map(str::to_owned);
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let wanted: Vec<&str> = if wanted.is_empty() || wanted.contains(&"all") {
        vec![
            "fig4",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "fig20",
            "fig21",
            "calib",
            "resilience",
            "tracing",
            "fleet",
        ]
    } else {
        wanted
    };

    let needs_main = wanted.iter().any(|w| {
        matches!(
            *w,
            "fig8"
                | "fig9"
                | "fig10"
                | "fig11"
                | "fig12"
                | "fig13"
                | "fig14"
                | "fig18"
                | "fig20"
                | "fig21"
        )
    });
    let needs_long = wanted
        .iter()
        .any(|w| matches!(*w, "fig15" | "fig17" | "fig19" | "fig20"));

    let dataset = if needs_main {
        eprintln!(
            "running the {} deployment replay...",
            if quick { "quick" } else { "paper-scaled" }
        );
        Some(figure_dataset(quick))
    } else {
        None
    };
    let longitudinal = if needs_long {
        eprintln!("running the longitudinal (10-month, 2-model) replay...");
        Some(longitudinal_dataset())
    } else {
        None
    };

    for figure in wanted {
        match figure {
            "fig4" => fig4(),
            "fig8" => fig8(dataset.as_ref().expect("main replay")),
            "fig9" => fig9(dataset.as_ref().expect("main replay")),
            "fig10" => accuracy_figure(
                dataset.as_ref().expect("main replay"),
                ProviderFilter::All,
                "Figure 10 — location accuracy distribution (all providers)",
                "paper: most observations in the 20-50 m range, peak just below 100 m",
            ),
            "fig11" => accuracy_figure(
                dataset.as_ref().expect("main replay"),
                ProviderFilter::Only(LocationProvider::Gps),
                "Figure 11 — location accuracy distribution (GPS)",
                "paper: most GPS fixes in the 6-20 m range; GPS ≈ 7% of localized",
            ),
            "fig12" => accuracy_figure(
                dataset.as_ref().expect("main replay"),
                ProviderFilter::Only(LocationProvider::Network),
                "Figure 12 — location accuracy distribution (network)",
                "paper: network ≈ 86% of localized; 20-50 m range dominates",
            ),
            "fig13" => accuracy_figure(
                dataset.as_ref().expect("main replay"),
                ProviderFilter::Only(LocationProvider::Fused),
                "Figure 13 — location accuracy distribution (fused)",
                "paper: fused ≈ 7% of localized; few models provide it; accuracy rather low",
            ),
            "fig14" => fig14(dataset.as_ref().expect("main replay")),
            "fig15" => fig15(longitudinal.as_ref().expect("longitudinal replay")),
            "fig16" => fig16(),
            "fig17" => fig17(longitudinal.as_ref().expect("longitudinal replay")),
            "fig18" => fig18(dataset.as_ref().expect("main replay")),
            "fig19" => fig19(longitudinal.as_ref().expect("longitudinal replay")),
            "fig20" => fig20(
                dataset.as_ref().expect("main replay"),
                longitudinal.as_ref().expect("longitudinal replay"),
            ),
            "fig21" => fig21(dataset.as_ref().expect("main replay")),
            "calib" => calib(),
            "hourly" => hourly(),
            "resilience" => resilience(),
            "tracing" => tracing(trace_export.as_deref()),
            "fleet" => fleet(),
            other => eprintln!(
                "unknown exhibit: {other} (try fig4..fig21, calib, hourly, resilience, tracing, fleet, all)"
            ),
        }
    }

    pipeline_health();

    // Version stamp for EXPERIMENTS.md bookkeeping.
    let _ = AppVersion::ALL;
}
