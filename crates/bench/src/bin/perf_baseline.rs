//! Emits the machine-readable performance baseline (`BENCH_pipeline.json`).
//!
//! ```text
//! cargo run -p mps-bench --release --bin perf_baseline -- \
//!     [--quick] [--no-telemetry] [--out PATH]
//! ```
//!
//! `--quick` shrinks sample counts (CI `bench-smoke` uses it);
//! `--no-telemetry` measures with the WAL's registry mirrors off so
//! WAL-on vs WAL-off numbers are attributable to the log itself; `--out`
//! defaults to `BENCH_pipeline.json` in the current directory. The
//! printed summary shows the speedup of every optimized variant over its
//! naive reference; `docs/PERFORMANCE.md` documents the setups.

use mps_bench::baseline::{baseline_measurements, baseline_report, Measurement};
use std::collections::BTreeMap;

fn main() {
    let mut quick = false;
    let mut telemetry = true;
    let mut out_path = "BENCH_pipeline.json".to_owned();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--no-telemetry" => telemetry = false,
            "--out" => match argv.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf_baseline [--quick] [--no-telemetry] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "measuring perf baseline ({} mode, telemetry {})...",
        if quick { "quick" } else { "full" },
        if telemetry { "on" } else { "off" },
    );
    let measurements = baseline_measurements(quick, telemetry);
    print_speedups(&measurements);

    let report = baseline_report(&measurements);
    let pretty = match serde_json::to_string_pretty(&report) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("failed to serialize report: {err}");
            std::process::exit(1);
        }
    };
    if let Some(parent) = std::path::Path::new(&out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        if let Err(err) = std::fs::create_dir_all(parent) {
            eprintln!("failed to create {}: {err}", parent.display());
            std::process::exit(1);
        }
    }
    if let Err(err) = std::fs::write(&out_path, pretty + "\n") {
        eprintln!("failed to write {out_path}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}

/// Prints `optimized vs reference` speedups per bench family and size.
fn print_speedups(measurements: &[Measurement]) {
    let reference_variant = |bench: &str| match bench {
        "broker_routing" => "naive_scan",
        "blue_analysis" => "global",
        "wal_append" => "per_record",
        "net_round_trip" => "tcp",
        "sustained_throughput" => "shards_1",
        "batched_ingest" | "batched_ingest_fsyncs_per_obs" => "per_message",
        _ => "full_scan",
    };
    let mut by_key: BTreeMap<(&str, usize), BTreeMap<&str, f64>> = BTreeMap::new();
    for m in measurements {
        by_key
            .entry((m.bench, m.size))
            .or_default()
            .insert(m.variant, m.median_ns_per_op);
    }
    for ((bench, size), variants) in &by_key {
        let reference = variants.get(reference_variant(bench));
        for (variant, ns) in variants {
            let speedup = match reference {
                Some(reference_ns) if *variant != reference_variant(bench) && *ns > 0.0 => {
                    format!("  ({:.1}x vs reference)", reference_ns / ns)
                }
                _ => String::new(),
            };
            println!("{bench:>22} size {size:>6} {variant:>10}: {ns:>14.0} ns/op{speedup}");
        }
    }
}
