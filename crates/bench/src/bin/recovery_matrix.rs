//! The CI crash-kill recovery matrix.
//!
//! ```text
//! cargo run -p mps-bench --release --bin recovery_matrix -- [--long] [--out PATH]
//! ```
//!
//! Drives every WAL kill point (mid-append, post-append-pre-ack,
//! mid-snapshot, mid-compaction) through both durable components (the
//! docstore and the broker), then asserts the recovery contract:
//!
//! * **Zero silent loss** — every operation that was acknowledged before
//!   the crash is present after reopen; the single in-flight operation
//!   that returned an error may legitimately land on either side of the
//!   crash (it is counted as *ambiguous*, never lost silently).
//! * **No resurrection** — acknowledged deletes and message acks stay
//!   applied; a torn tail never brings them back.
//! * **Determinism** — two independent replays of the same log produce
//!   byte-identical docstore exports and identical broker queue
//!   snapshots.
//!
//! `--long` widens the matrix (more operations, several kill offsets per
//! point) for the nightly CI run; `--out` names the recovery-report
//! artifact (default `recovery-report.txt`). Exit status: 0 when every
//! cell passes, 1 otherwise.

// A CLI's job is to print.
#![allow(clippy::print_stdout)]

use mps_broker::{Broker, BrokerDurabilityConfig, BrokerTransport, ExchangeType};
use mps_docstore::{Durability, DurabilityConfig, Filter, Store};
use mps_faults::{CrashPlan, CrashTarget};
use mps_goflow::{GoFlowServer, Role};
use mps_types::{AppId, DeviceModel, Observation, SimTime, SoundLevel};
use mps_wal::{KillPoint, KillSwitch, WalConfig};
use serde_json::json;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Records appended between snapshot attempts in every cell — small, so
/// the mid-snapshot and mid-compaction kill points fire early.
const SNAPSHOT_EVERY: u64 = 8;

fn main() {
    let mut long = false;
    let mut out_path = "recovery-report.txt".to_owned();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--long" => long = true,
            "--out" => match argv.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: recovery_matrix [--long] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let ops: u64 = if long { 512 } else { 48 };
    let append_skips: &[u64] = if long { &[2, 10, 25] } else { &[6] };
    let snapshot_skips: &[u64] = if long { &[0, 1, 2] } else { &[1] };

    let mut report = String::new();
    let _ = writeln!(
        report,
        "crash-kill recovery matrix ({} mode, {ops} ops/cell, snapshot every {SNAPSHOT_EVERY})",
        if long { "long" } else { "quick" },
    );
    let mut failures = 0usize;
    for target in [CrashTarget::Docstore, CrashTarget::Broker] {
        for point in KillPoint::ALL {
            let skips = match point {
                KillPoint::MidAppend | KillPoint::PostAppendPreAck => append_skips,
                KillPoint::MidSnapshot | KillPoint::MidCompaction => snapshot_skips,
            };
            for &skip in skips {
                let outcome = match target {
                    CrashTarget::Docstore => docstore_cell(point, skip, ops),
                    CrashTarget::Broker => broker_cell(point, skip, ops),
                };
                let line = match outcome {
                    Ok(cell) => format!(
                        "PASS {:>8} {:>18} skip {:>2}: {} committed, {} ambiguous, {} recovered, torn_tail={}, deterministic",
                        target.as_str(),
                        point.as_str(),
                        skip,
                        cell.committed,
                        cell.ambiguous,
                        cell.recovered,
                        cell.torn,
                    ),
                    Err(why) => {
                        failures += 1;
                        format!(
                            "FAIL {:>8} {:>18} skip {:>2}: {why}",
                            target.as_str(),
                            point.as_str(),
                            skip,
                        )
                    }
                };
                println!("{line}");
                let _ = writeln!(report, "{line}");
            }
        }
    }
    // The batched-ingest cells: a GoFlow server over a durable store,
    // killed mid-way through a 16-document group-committed batch.
    for point in [KillPoint::MidAppend, KillPoint::PostAppendPreAck] {
        for &skip in append_skips {
            let batches = if long { 64 } else { 12 };
            let line = match ingest_cell(point, skip, batches) {
                Ok(cell) => format!(
                    "PASS {:>8} {:>18} skip {:>2}: {} committed, {} ambiguous, {} recovered, torn_tail={}, deterministic",
                    "ingest",
                    point.as_str(),
                    skip,
                    cell.committed,
                    cell.ambiguous,
                    cell.recovered,
                    cell.torn,
                ),
                Err(why) => {
                    failures += 1;
                    format!(
                        "FAIL {:>8} {:>18} skip {:>2}: {why}",
                        "ingest",
                        point.as_str(),
                        skip,
                    )
                }
            };
            println!("{line}");
            let _ = writeln!(report, "{line}");
        }
    }

    let verdict = if failures == 0 {
        "verdict: all cells passed".to_owned()
    } else {
        format!("verdict: {failures} cell(s) FAILED")
    };
    println!("{verdict}");
    let _ = writeln!(report, "{verdict}");
    if let Err(err) = std::fs::write(&out_path, report) {
        eprintln!("failed to write {out_path}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
    if failures > 0 {
        std::process::exit(1);
    }
}

/// What a passing cell measured, for the report artifact.
struct Cell {
    /// Operations acknowledged before the crash.
    committed: usize,
    /// Operations whose error raced the crash (either outcome is legal).
    ambiguous: usize,
    /// Entities present after recovery (documents or messages).
    recovered: usize,
    /// Whether recovery truncated a torn tail.
    torn: bool,
}

/// A scratch log directory, unique without consulting the wall clock.
fn scratch(target: &str, point: KillPoint, skip: u64) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mps-recovery-matrix-{target}-{}-{skip}-{}-{}",
        point.as_str(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Whether the log under `dir` shows a torn tail right now (checked
/// before the first recovery repairs it in place).
fn torn_tail(dir: &PathBuf) -> bool {
    mps_wal::inspect(dir)
        .map(|r| r.segments.iter().any(|s| s.torn))
        .unwrap_or(false)
}

// ---------------------------------------------------------------------
// Docstore: inserts plus periodic deletes, then crash, reopen twice.
// ---------------------------------------------------------------------

fn docstore_cell(point: KillPoint, skip: u64, ops: u64) -> Result<Cell, String> {
    let dir = scratch("docstore", point, skip);
    let _ = std::fs::remove_dir_all(&dir);
    let plan = CrashPlan::at(CrashTarget::Docstore, point, skip);
    let kill = plan.armed_switch();
    let config = DurabilityConfig::new(&dir)
        .wal(WalConfig::default().telemetry(false).kill(kill.clone()))
        .snapshot_every(SNAPSHOT_EVERY);
    let store =
        Store::open(Durability::Durable(config)).map_err(|e| format!("faulted open: {e}"))?;
    let obs = store.collection("obs");
    obs.create_index("seq").map_err(|e| format!("index: {e}"))?;

    let mut inserted: Vec<u64> = Vec::new();
    let mut deleted: Vec<u64> = Vec::new();
    let mut ambiguous: BTreeSet<u64> = BTreeSet::new();
    for i in 0..ops {
        match obs.insert_one(json!({"seq": i, "zone": format!("z{}", i % 4)})) {
            Ok(_) => inserted.push(i),
            Err(_) => {
                ambiguous.insert(i);
                break;
            }
        }
        if i % 5 == 4 {
            let victim = i - 2;
            match obs.delete_many(&Filter::eq("seq", victim)) {
                Ok(_) => deleted.push(victim),
                Err(_) => {
                    ambiguous.insert(victim);
                    break;
                }
            }
        }
    }
    if kill.dead() != Some(point) {
        return Err(format!("kill never fired (dead={:?})", kill.dead()));
    }
    drop(obs);
    drop(store);
    let torn = torn_tail(&dir);

    // Two independent replays of the same log must agree byte-for-byte.
    let reopen = || -> Result<(String, Vec<u64>), String> {
        let config = DurabilityConfig::new(&dir)
            .wal(WalConfig::default().telemetry(false))
            .snapshot_every(SNAPSHOT_EVERY);
        let store = Store::open(Durability::Durable(config)).map_err(|e| format!("reopen: {e}"))?;
        let export = store.export_json();
        let seqs = store
            .collection("obs")
            .all()
            .iter()
            .filter_map(|d| d.get("seq").and_then(serde_json::Value::as_u64))
            .collect();
        Ok((export, seqs))
    };
    let (export_a, seqs) = reopen()?;
    let (export_b, _) = reopen()?;
    if export_a != export_b {
        return Err("replay is not deterministic: exports differ".to_owned());
    }

    let deleted: BTreeSet<u64> = deleted.into_iter().collect();
    for s in inserted.iter().filter(|s| !deleted.contains(*s)) {
        if ambiguous.contains(s) {
            continue;
        }
        let n = seqs.iter().filter(|x| *x == s).count();
        if n != 1 {
            return Err(format!("committed doc seq {s} present {n} times, want 1"));
        }
    }
    for s in deleted.iter().filter(|s| !ambiguous.contains(*s)) {
        if seqs.contains(s) {
            return Err(format!("deleted doc seq {s} resurrected"));
        }
    }
    let inserted_set: BTreeSet<u64> = inserted.iter().copied().collect();
    for s in &seqs {
        if !inserted_set.contains(s) && !ambiguous.contains(s) {
            return Err(format!("unknown doc seq {s} appeared from nowhere"));
        }
    }
    let cell = Cell {
        committed: inserted_set.len(),
        ambiguous: ambiguous.len(),
        recovered: seqs.len(),
        torn,
    };
    let _ = std::fs::remove_dir_all(&dir);
    Ok(cell)
}

// ---------------------------------------------------------------------
// Broker: publish / consume+ack / nack-to-DLQ, then crash, reopen twice.
// ---------------------------------------------------------------------

fn broker_cell(point: KillPoint, skip: u64, ops: u64) -> Result<Cell, String> {
    let dir = scratch("broker", point, skip);
    let _ = std::fs::remove_dir_all(&dir);
    let plan = CrashPlan::at(CrashTarget::Broker, point, skip);
    let kill = plan.armed_switch();
    let config = BrokerDurabilityConfig::new(&dir)
        .wal(WalConfig::default().telemetry(false).kill(kill.clone()))
        .snapshot_every(SNAPSHOT_EVERY);
    let broker = Broker::open_durable(config).map_err(|e| format!("faulted open: {e}"))?;
    let setup = || -> Result<(), mps_broker::BrokerError> {
        broker.declare_exchange("app", ExchangeType::Topic)?;
        broker.declare_queue("q")?;
        broker.declare_queue("dlq")?;
        broker.bind_queue("app", "q", "obs.#")?;
        broker.configure_dead_letter("q", 2, "dlq")
    };
    setup().map_err(|e| format!("topology: {e}"))?;

    let seq_of = |payload: &[u8]| -> u64 {
        std::str::from_utf8(payload)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(u64::MAX)
    };
    let mut published: Vec<u64> = Vec::new();
    let mut acked: Vec<u64> = Vec::new();
    let mut dead_lettered: Vec<u64> = Vec::new();
    let mut ambiguous: BTreeSet<u64> = BTreeSet::new();
    'workload: for i in 0..ops {
        match broker.publish("app", "obs.zone.noise", format!("{i}")) {
            Ok(_) => published.push(i),
            Err(_) => {
                ambiguous.insert(i);
                break;
            }
        }
        if i % 3 == 2 {
            // Settle the oldest ready message.
            if let Ok(mut ds) = broker.consume("q", 1) {
                if let Some(d) = ds.pop() {
                    let seq = seq_of(d.payload().as_ref());
                    match broker.ack("q", d.tag) {
                        Ok(()) => acked.push(seq),
                        Err(_) => {
                            ambiguous.insert(seq);
                            break;
                        }
                    }
                }
            }
        }
        if i % 11 == 10 {
            // Poison the oldest ready message to the DLQ (policy: 2 attempts).
            let mut seq = None;
            let mut nacks = 0;
            for _ in 0..2 {
                let Ok(mut ds) = broker.consume("q", 1) else {
                    break;
                };
                let Some(d) = ds.pop() else { break };
                let s = seq_of(d.payload().as_ref());
                if seq.is_some_and(|prev| prev != s) {
                    return Err(format!("poison pill changed identity: {seq:?} vs {s}"));
                }
                seq = Some(s);
                if broker.nack("q", d.tag, true).is_err() {
                    ambiguous.insert(s);
                    break 'workload;
                }
                nacks += 1;
            }
            match seq {
                Some(s) if nacks == 2 => dead_lettered.push(s),
                Some(s) => {
                    // Consumed but not fully poisoned — either side is legal.
                    ambiguous.insert(s);
                }
                None => {}
            }
        }
    }
    if kill.dead() != Some(point) {
        return Err(format!("kill never fired (dead={:?})", kill.dead()));
    }
    drop(broker);
    let torn = torn_tail(&dir);

    // Two independent replays must agree snapshot-for-snapshot.
    let reopen = || -> Result<(mps_broker::QueueSnapshot, mps_broker::QueueSnapshot), String> {
        let config = BrokerDurabilityConfig::new(&dir)
            .wal(WalConfig::default().telemetry(false))
            .snapshot_every(SNAPSHOT_EVERY);
        let broker = Broker::open_durable(config).map_err(|e| format!("reopen: {e}"))?;
        let q = broker.queue_snapshot("q").map_err(|e| format!("q: {e}"))?;
        let dlq = broker
            .queue_snapshot("dlq")
            .map_err(|e| format!("dlq: {e}"))?;
        Ok((q, dlq))
    };
    let (q_a, dlq_a) = reopen()?;
    let (q_b, dlq_b) = reopen()?;
    if q_a != q_b || dlq_a != dlq_b {
        return Err("replay is not deterministic: queue snapshots differ".to_owned());
    }

    if !q_a.unacked.is_empty() {
        return Err("recovered broker has unacked messages before any consume".to_owned());
    }
    let q_seqs: Vec<u64> = q_a.ready.iter().map(|m| seq_of(&m.payload)).collect();
    let dlq_seqs: Vec<u64> = dlq_a.ready.iter().map(|m| seq_of(&m.payload)).collect();
    let everywhere: Vec<u64> = q_seqs.iter().chain(dlq_seqs.iter()).copied().collect();

    let acked: BTreeSet<u64> = acked.into_iter().collect();
    let dead_set: BTreeSet<u64> = dead_lettered.iter().copied().collect();
    for s in acked.iter().filter(|s| !ambiguous.contains(*s)) {
        if everywhere.contains(s) {
            return Err(format!("acked message seq {s} resurrected"));
        }
    }
    for s in dead_set.iter().filter(|s| !ambiguous.contains(*s)) {
        let n = dlq_seqs.iter().filter(|x| *x == s).count();
        if n != 1 || q_seqs.contains(s) {
            return Err(format!(
                "dead-lettered seq {s}: {n} in dlq, in_q={}",
                q_seqs.contains(s)
            ));
        }
    }
    for s in published
        .iter()
        .filter(|s| !acked.contains(*s) && !dead_set.contains(*s) && !ambiguous.contains(*s))
    {
        let n = q_seqs.iter().filter(|x| *x == s).count();
        if n != 1 {
            return Err(format!(
                "committed message seq {s} present {n} times in q, want 1"
            ));
        }
    }
    let published_set: BTreeSet<u64> = published.iter().copied().collect();
    for s in &everywhere {
        if !published_set.contains(s) && !ambiguous.contains(s) {
            return Err(format!("unknown message seq {s} appeared from nowhere"));
        }
    }
    let cell = Cell {
        committed: published_set.len(),
        ambiguous: ambiguous.len(),
        recovered: everywhere.len(),
        torn,
    };
    let _ = std::fs::remove_dir_all(&dir);
    Ok(cell)
}

// ---------------------------------------------------------------------
// Batched ingest: GoFlow drains 16-message batches into a durable store
// (one group-committed WAL append per batch), crash mid-batch, reopen.
// ---------------------------------------------------------------------

/// Messages per ingest batch — matches the batched-ingest bench size.
const INGEST_BATCH: usize = 16;

fn ingest_cell(point: KillPoint, skip: u64, batches: u64) -> Result<Cell, String> {
    let dir = scratch("ingest", point, skip);
    let _ = std::fs::remove_dir_all(&dir);
    // Armed only after app registration, so `skip` counts ingest-batch
    // appends, not the setup's index-creation records.
    let kill = KillSwitch::new();
    let config = DurabilityConfig::new(&dir)
        .wal(WalConfig::default().telemetry(false).kill(kill.clone()))
        .snapshot_every(SNAPSHOT_EVERY);
    let store =
        Store::open(Durability::Durable(config)).map_err(|e| format!("faulted open: {e}"))?;
    let broker: Arc<dyn BrokerTransport> = Arc::new(Broker::new());
    let server = GoFlowServer::over(Arc::clone(&broker), Arc::new(store));
    let app = AppId::new("SC");
    server.register_app(&app).map_err(|e| format!("app: {e}"))?;
    let token = server
        .register_user(&app, 1u64.into(), Role::Contributor)
        .map_err(|e| format!("user: {e}"))?;
    let session = server.login(&token).map_err(|e| format!("login: {e}"))?;
    kill.arm(point, skip);

    // Every observation carries its sequence number as the SPL value, so
    // presence after recovery is checkable per message.
    let obs_for = |seq: u64| {
        Observation::builder()
            .device(1u64.into())
            .user(1u64.into())
            .model(DeviceModel::LgeNexus5)
            .captured_at(SimTime::from_hms(0, 10, 0, 0))
            .spl(SoundLevel::new(seq as f64))
            .build()
    };
    let key = session.observation_key("noise", "FR75013");
    let now = SimTime::from_hms(0, 10, 5, 0);
    let mut committed: BTreeSet<u64> = BTreeSet::new();
    let mut ambiguous: BTreeSet<u64> = BTreeSet::new();
    for b in 0..batches {
        let seqs: Vec<u64> = (b * INGEST_BATCH as u64..(b + 1) * INGEST_BATCH as u64).collect();
        for &seq in &seqs {
            let payload = serde_json::to_vec(&obs_for(seq)).map_err(|e| format!("encode: {e}"))?;
            broker
                .publish(session.exchange(), &key, &payload)
                .map_err(|e| format!("publish: {e}"))?;
        }
        let outcome = server
            .ingest_pending(&app, now, INGEST_BATCH)
            .map_err(|e| format!("ingest: {e}"))?;
        if outcome.stored == INGEST_BATCH {
            committed.extend(seqs);
        } else {
            // The crash batch: ingest nacked it for redelivery, and a
            // durable prefix of the torn group commit may survive — every
            // message in it is legitimately on either side of the crash.
            ambiguous.extend(seqs);
            break;
        }
    }
    if kill.dead() != Some(point) {
        return Err(format!("kill never fired (dead={:?})", kill.dead()));
    }
    drop(session);
    drop(server);
    let torn = torn_tail(&dir);

    // Two independent replays of the same log must agree byte-for-byte.
    let reopen = || -> Result<(String, Vec<u64>), String> {
        let config = DurabilityConfig::new(&dir)
            .wal(WalConfig::default().telemetry(false))
            .snapshot_every(SNAPSHOT_EVERY);
        let store = Store::open(Durability::Durable(config)).map_err(|e| format!("reopen: {e}"))?;
        let export = store.export_json();
        let seqs = store
            .collection("obs-SC")
            .all()
            .iter()
            .filter_map(|d| d.get("spl").and_then(serde_json::Value::as_f64))
            .map(|spl| spl as u64)
            .collect();
        Ok((export, seqs))
    };
    let (export_a, seqs) = reopen()?;
    let (export_b, _) = reopen()?;
    if export_a != export_b {
        return Err("replay is not deterministic: exports differ".to_owned());
    }

    for s in &committed {
        let n = seqs.iter().filter(|x| *x == s).count();
        if n != 1 {
            return Err(format!("committed obs seq {s} present {n} times, want 1"));
        }
    }
    for s in &ambiguous {
        let n = seqs.iter().filter(|x| *x == s).count();
        if n > 1 {
            return Err(format!(
                "crash-batch obs seq {s} present {n} times, want <=1"
            ));
        }
    }
    for s in &seqs {
        if !committed.contains(s) && !ambiguous.contains(s) {
            return Err(format!("unknown obs seq {s} appeared from nowhere"));
        }
    }
    let cell = Cell {
        committed: committed.len(),
        ambiguous: ambiguous.len(),
        recovered: seqs.len(),
        torn,
    };
    let _ = std::fs::remove_dir_all(&dir);
    Ok(cell)
}
