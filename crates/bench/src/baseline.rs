//! The machine-readable performance baseline behind `BENCH_pipeline.json`.
//!
//! Each entry pits an optimized hot path against its retained naive
//! reference on the same inputs — broker routing (topic trie vs linear
//! pattern scan), document-store queries (secondary indexes vs full
//! scan) and BLUE assimilation (observation-space localization vs the
//! global solve). The `perf-baseline` binary runs the full matrix and
//! writes the JSON artifact; `docs/PERFORMANCE.md` explains how to read
//! it.
//!
//! Times are median nanoseconds per operation over several samples —
//! medians are robust to the occasional scheduler hiccup that ruins a
//! mean.

use mps_assim::{Blue, Grid, Localization, PointObservation};
use mps_broker::{
    topic_matches, Broker, BrokerTransport, CompiledPattern, ExchangeType, ShardedBroker, TopicTrie,
};
use mps_docstore::{
    Collection, DocstoreTransport, Durability, DurabilityConfig, Filter, ShardedStore, Store,
};
use mps_goflow::{GoFlowServer, Role};
use mps_mobile::Fleet;
use mps_net::{BrokerService, ClientConfig, RemoteBroker, ServerConfig, WireServer};
use mps_types::{AppId, GeoBounds, SensingMode, SimTime};
use mps_wal::{Wal, WalConfig};
use serde_json::{json, Value};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// One measured comparison point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark family, e.g. `broker_routing`.
    pub bench: &'static str,
    /// Implementation variant, e.g. `trie` or `naive_scan`.
    pub variant: &'static str,
    /// Problem size (bindings, documents or observations).
    pub size: usize,
    /// Median wall-clock cost of one operation, nanoseconds.
    pub median_ns_per_op: f64,
}

impl Measurement {
    /// The JSON object serialized into `BENCH_pipeline.json`.
    pub fn to_json(&self) -> Value {
        json!({
            "bench": self.bench,
            "variant": self.variant,
            "size": self.size,
            "median_ns_per_op": self.median_ns_per_op,
        })
    }
}

/// Median nanoseconds per call of `op` over `samples` timed batches of
/// `iters` calls each.
pub fn median_ns_per_op(samples: usize, iters: usize, mut op: impl FnMut()) -> f64 {
    let samples = samples.max(1);
    let iters = iters.max(1);
    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        timings.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    timings.sort_by(f64::total_cmp);
    timings[timings.len() / 2]
}

/// A deterministic binding-pattern mix for routing benches: mostly
/// zone-scoped subscriptions plus a sprinkle of wildcard-heavy ones.
pub fn routing_patterns(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| match i % 10 {
            7 => format!("obs.*.kind{}.#", i % 23),
            8 => format!("#.kind{}", i % 23),
            9 => "obs.#".to_owned(),
            _ => format!("obs.zone{}.kind{}", i % 97, i % 23),
        })
        .collect()
}

/// Median ns/op of routing one key through `n` topic bindings:
/// `(trie, naive_scan)`.
pub fn broker_routing(n: usize, samples: usize, iters: usize) -> (f64, f64) {
    let patterns = routing_patterns(n);
    let compiled: Vec<CompiledPattern> = patterns
        .iter()
        .map(|p| CompiledPattern::new(&p.parse().expect("valid pattern")))
        .collect();
    let mut trie = TopicTrie::new();
    for (id, pattern) in compiled.iter().enumerate() {
        trie.insert(pattern, id);
    }
    let key = format!("obs.zone{}.kind{}", (n / 2) % 97, (n / 2) % 23);
    let key_words: Vec<&str> = key.split('.').collect();

    let trie_ns = median_ns_per_op(samples, iters, || {
        black_box(trie.matches(black_box(&key_words)));
    });
    let naive_ns = median_ns_per_op(samples, iters, || {
        let hits: Vec<usize> = patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| topic_matches(black_box(p), black_box(&key)))
            .map(|(id, _)| id)
            .collect();
        black_box(hits);
    });
    (trie_ns, naive_ns)
}

/// A collection of `n` synthetic observations for query benches.
///
/// The first 50 documents form a fixed-size target stratum (zone
/// `FR75013`, `spl` in `[50, 51)`); the rest scatter over ~1k other
/// zones with `spl` below 49. Both bench queries select exactly that
/// stratum, so the result set stays constant as `n` grows — what scales
/// is only the lookup work, which is the cost under test.
pub fn observation_collection(n: usize, with_indexes: bool) -> Collection {
    let c = Collection::new();
    if with_indexes {
        c.create_index("zone").expect("in-memory index");
        c.create_index("spl").expect("in-memory index");
    }
    for i in 0..n {
        let (zone, spl) = if i < 50 {
            ("FR75013".to_owned(), 50.0 + i as f64 / 64.0)
        } else {
            (
                format!("Z{:03}", i % 997),
                35.0 + ((i * 7) % 140) as f64 / 10.0,
            )
        };
        c.insert_one(json!({
            "zone": zone,
            "spl": spl,
            "model": format!("model{}", i % 7),
        }))
        .expect("object document");
    }
    c
}

/// Median ns/op of a point (equality) query over `n` documents:
/// `(indexed, full_scan)`.
pub fn docstore_point_query(n: usize, samples: usize, iters: usize) -> (f64, f64) {
    let indexed = observation_collection(n, true);
    let scan = observation_collection(n, false);
    let filter = Filter::eq("zone", "FR75013");
    let indexed_ns = median_ns_per_op(samples, iters, || {
        black_box(indexed.find(black_box(&filter)).expect("infallible find"));
    });
    let scan_ns = median_ns_per_op(samples, iters, || {
        black_box(scan.find(black_box(&filter)).expect("infallible find"));
    });
    (indexed_ns, scan_ns)
}

/// Median ns/op of a narrow range query over `n` documents:
/// `(indexed, full_scan)`.
pub fn docstore_range_query(n: usize, samples: usize, iters: usize) -> (f64, f64) {
    let indexed = observation_collection(n, true);
    let scan = observation_collection(n, false);
    let filter = Filter::range("spl", 50.0, 51.0);
    let indexed_ns = median_ns_per_op(samples, iters, || {
        black_box(indexed.find(black_box(&filter)).expect("infallible find"));
    });
    let scan_ns = median_ns_per_op(samples, iters, || {
        black_box(scan.find(black_box(&filter)).expect("infallible find"));
    });
    (indexed_ns, scan_ns)
}

/// A deterministic observation scatter over the Paris bounds.
pub fn blue_observations(m: usize) -> Vec<PointObservation> {
    let bounds = GeoBounds::paris();
    (0..m)
        .map(|i| {
            // Low-discrepancy-ish scatter, no RNG needed.
            let u = (i as f64 * 0.754_877_666) % 1.0;
            let v = (i as f64 * 0.569_840_296) % 1.0;
            let at = bounds.lerp(0.05 + 0.9 * u, 0.05 + 0.9 * v);
            PointObservation::new(at, 45.0 + 20.0 * u, 1.0 + 2.0 * v)
        })
        .collect()
}

/// The BLUE configuration used by the baseline: σ_b 4 dB, Balgovind
/// radius 150 m, localization cutoff 8 radii (1.2 km), 4×4-cell tiles,
/// on a 32×32 grid over Paris.
pub fn blue_setup() -> (Blue, Grid, Localization) {
    let blue = Blue::new(4.0, 150.0);
    let background = Grid::constant(GeoBounds::paris(), 32, 32, 50.0);
    (blue, background, Localization::for_radius(150.0).tile(4))
}

/// Median ns/op of one analysis pass over `m` observations:
/// `(localized, global)`.
pub fn blue_analysis(m: usize, samples: usize) -> (f64, f64) {
    let (blue, background, localization) = blue_setup();
    let observations = blue_observations(m);
    let localized_ns = median_ns_per_op(samples, 1, || {
        black_box(
            blue.analyse_localized(&background, &observations, &localization)
                .expect("localized analysis"),
        );
    });
    let global_ns = median_ns_per_op(samples, 1, || {
        black_box(blue.analyse(&background, &observations).expect("analysis"));
    });
    (localized_ns, global_ns)
}

/// Median ns/op of one broker publish round-trip with an `n`-byte
/// payload, in-process versus across a loopback TCP socket:
/// `(embedded, tcp, tcp_no_telemetry)`.
///
/// All variants run the exact same publish (same exchange, same topic
/// trie, same queue insert) through the [`BrokerTransport`] trait; the
/// embedded-vs-tcp delta is purely the network boundary — frame encode,
/// CRC, syscall round-trip, frame decode — and the tcp-vs-bare delta is
/// purely the server's per-RPC telemetry (`net_server_rpc_seconds`
/// observation plus slow-ring admission; the baseline keeps it under 5%
/// of the loopback round-trip median). `docs/PERFORMANCE.md` explains
/// why the boundary gap is the price of multi-process deployment, not
/// an optimization target.
pub fn net_round_trip(payload_bytes: usize, samples: usize, iters: usize) -> (f64, f64, f64) {
    let backend: Arc<dyn BrokerTransport> = Arc::new(Broker::new());
    backend
        .declare_exchange("bench", ExchangeType::Topic)
        .expect("declare bench exchange");
    backend
        .declare_queue("bench.q")
        .expect("declare bench queue");
    backend
        .bind_queue("bench", "bench.q", "obs.#")
        .expect("bind bench queue");
    let server = WireServer::bind(
        "127.0.0.1:0",
        Arc::new(BrokerService::new(Arc::clone(&backend))),
        ServerConfig::default(),
    )
    .expect("bind loopback bench server");
    let bare_server = WireServer::bind(
        "127.0.0.1:0",
        Arc::new(BrokerService::new(Arc::clone(&backend))),
        ServerConfig {
            rpc_telemetry: false,
            ..ServerConfig::default()
        },
    )
    .expect("bind bare loopback bench server");
    let remote = RemoteBroker::connect(server.local_addr().to_string(), ClientConfig::default());
    let bare_remote = RemoteBroker::connect(
        bare_server.local_addr().to_string(),
        ClientConfig::default(),
    );
    let payload = vec![0x5au8; payload_bytes];

    let embedded_ns = median_ns_per_op(samples, iters, || {
        black_box(
            backend
                .publish(black_box("bench"), black_box("obs.paris.noise"), &payload)
                .expect("embedded publish"),
        );
    });
    backend
        .purge_queue("bench.q")
        .expect("purge between variants");
    let tcp_ns = median_ns_per_op(samples, iters, || {
        black_box(
            remote
                .publish(black_box("bench"), black_box("obs.paris.noise"), &payload)
                .expect("tcp publish"),
        );
    });
    backend
        .purge_queue("bench.q")
        .expect("purge between variants");
    let bare_ns = median_ns_per_op(samples, iters, || {
        black_box(
            bare_remote
                .publish(black_box("bench"), black_box("obs.paris.noise"), &payload)
                .expect("bare tcp publish"),
        );
    });
    backend.purge_queue("bench.q").expect("purge after timing");
    (embedded_ns, tcp_ns, bare_ns)
}

/// A scratch directory for the WAL append benches.
fn wal_bench_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mps-bench-wal-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Median ns per *record* of appending batches of `batch` ~100-byte
/// records: `(group_commit, per_record)` — one fsync per batch versus
/// one fsync per record. `telemetry` controls whether the WAL mirrors
/// its counters into the global registry while timing (the
/// `--no-telemetry` perf-baseline flag turns it off so WAL-on vs
/// WAL-off numbers are attributable to the log itself).
pub fn wal_append(batch: usize, samples: usize, iters: usize, telemetry: bool) -> (f64, f64) {
    let payload = vec![0x5au8; 100];
    let batched: Vec<Vec<u8>> = vec![payload.clone(); batch];

    let group_dir = wal_bench_dir("group");
    let (mut wal, _) =
        Wal::open(&group_dir, WalConfig::default().telemetry(telemetry)).expect("open bench wal");
    let group_ns = median_ns_per_op(samples, iters, || {
        black_box(wal.append_batch(black_box(&batched)).expect("append batch"));
    }) / batch as f64;
    drop(wal);
    let _ = std::fs::remove_dir_all(&group_dir);

    let single_dir = wal_bench_dir("single");
    let (mut wal, _) =
        Wal::open(&single_dir, WalConfig::default().telemetry(telemetry)).expect("open bench wal");
    let single_ns = median_ns_per_op(samples, iters, || {
        for p in &batched {
            black_box(wal.append(black_box(p)).expect("append record"));
        }
    }) / batch as f64;
    drop(wal);
    let _ = std::fs::remove_dir_all(&single_dir);

    (group_ns, single_ns)
}

/// Concurrent ingest workers (one registered app each) driving the
/// sustained-throughput bench — fixed across shard counts so the offered
/// load is identical and only the substrate parallelism varies.
pub const SUSTAINED_WORKERS: usize = 8;

/// Median ns per observation of the **end-to-end pipeline** —
/// fleet-captured observations published into a [`ShardedBroker`] and
/// drained through a [`GoFlowServer`] into a [`ShardedStore`] — with
/// [`SUSTAINED_WORKERS`] concurrent workers over `shards` partitions.
///
/// Every worker owns one app (its own GF queue and collection) and
/// drives its round-robin slice of a million-device [`Fleet`]:
/// publish its pre-serialized observations, then drain until all of
/// them are stored. `shards: 1` is the single-broker/single-store
/// reference; larger counts split both the broker's routing locks (by
/// routing-key hash) and the store's collection locks (by collection
/// name hash) so the workers stop serialising against each other.
///
/// The reciprocal of the returned ns/observation is the sustained
/// observations-per-second headline in `BENCH_pipeline.json`.
pub fn sustained_throughput(shards: usize, total_obs: usize, samples: usize) -> f64 {
    let broker: Arc<dyn BrokerTransport> = Arc::new(ShardedBroker::new(shards));
    let store: Arc<dyn DocstoreTransport> = Arc::new(ShardedStore::new(shards));
    let server = GoFlowServer::over(Arc::clone(&broker), Arc::clone(&store));
    let fleet = Fleet::new(11, 1_000_000);
    let per_worker = (total_obs / SUSTAINED_WORKERS).max(1);
    let captured = SimTime::from_hms(0, 12, 0, 0);

    let mut workers = Vec::with_capacity(SUSTAINED_WORKERS);
    for w in 0..SUSTAINED_WORKERS {
        let app = AppId::new(format!("SC{w}"));
        server.register_app(&app).expect("register bench app");
        let token = server
            .register_user(&app, (w as u64).into(), Role::Contributor)
            .expect("register bench user");
        let session = server.login(&token).expect("login bench user");
        let payloads: Vec<(String, Vec<u8>)> = fleet
            .shard_members(w, SUSTAINED_WORKERS)
            .take(per_worker)
            .map(|index| {
                let mut device = fleet.device(index);
                let obs = device.capture(captured, SensingMode::Opportunistic);
                let key = session.observation_key("noise", &format!("Z{:03}", index % 997));
                let payload = serde_json::to_vec(&obs).expect("serializable observation");
                (key, payload)
            })
            .collect();
        workers.push((app, session, payloads));
    }

    let now = SimTime::from_hms(0, 12, 5, 0);
    median_ns_per_op(samples, 1, || {
        std::thread::scope(|scope| {
            for (app, session, payloads) in &workers {
                let server = &server;
                let broker = &broker;
                scope.spawn(move || {
                    for (key, payload) in payloads {
                        broker
                            .publish(session.exchange(), key, payload)
                            .expect("bench publish");
                    }
                    let mut processed = 0usize;
                    while processed < payloads.len() {
                        let outcome = server.ingest_pending(app, now, 256).expect("bench ingest");
                        let step = outcome.stored + outcome.malformed + outcome.quarantined;
                        assert!(step > 0, "sustained bench lost messages");
                        processed += step;
                    }
                });
            }
        });
    }) / (per_worker * SUSTAINED_WORKERS) as f64
}

/// End-to-end ingest cost and WAL fsync accounting over a **durable**
/// store, batched drain versus message-at-a-time drain: returns
/// `(batched_ns, per_message_ns, batched_fsyncs_per_obs,
/// per_message_fsyncs_per_obs)`, each normalised per stored observation.
///
/// Both variants push `batch * rounds` fleet observations through the
/// same GoFlow ingest path; the only difference is the drain size.
/// Draining `batch` messages at a time lets ingest classify the whole
/// batch and store it with **one** group-committed `insert_many` (one
/// WAL fsync); draining one at a time pays one fsync per observation.
/// Fsyncs are counted from the `wal_fsyncs_total` registry counter, so
/// the ratio is deterministic — it measures barriers issued, not time.
pub fn ingest_batching(batch: usize, rounds: usize) -> (f64, f64, f64, f64) {
    let batch = batch.max(1);
    let rounds = rounds.max(1);
    let run = |drain_size: usize, tag: &str| -> (f64, f64) {
        let dir = wal_bench_dir(tag);
        let store = Store::open(Durability::Durable(
            DurabilityConfig::new(&dir).snapshot_every(0),
        ))
        .expect("open durable bench store");
        let broker: Arc<dyn BrokerTransport> = Arc::new(Broker::new());
        let server = GoFlowServer::over(Arc::clone(&broker), Arc::new(store));
        let app = AppId::new("SCB");
        server.register_app(&app).expect("register bench app");
        let token = server
            .register_user(&app, 1u64.into(), Role::Contributor)
            .expect("register bench user");
        let session = server.login(&token).expect("login bench user");

        let fleet = Fleet::new(13, 1_000_000);
        let captured = SimTime::from_hms(0, 12, 0, 0);
        let payloads: Vec<(String, Vec<u8>)> = fleet
            .devices(0..(batch * rounds) as u64)
            .map(|mut device| {
                let obs = device.capture(captured, SensingMode::Opportunistic);
                let key = session.observation_key("noise", "FR75013");
                let payload = serde_json::to_vec(&obs).expect("serializable observation");
                (key, payload)
            })
            .collect();

        let registry = mps_telemetry::Registry::global();
        let fsyncs_before = registry.counter_value("wal_fsyncs_total").unwrap_or(0);
        let now = SimTime::from_hms(0, 12, 5, 0);
        let mut stored = 0usize;
        let start = Instant::now();
        for chunk in payloads.chunks(drain_size) {
            for (key, payload) in chunk {
                broker
                    .publish(session.exchange(), key, payload)
                    .expect("bench publish");
            }
            stored += server
                .ingest_pending(&app, now, drain_size)
                .expect("bench ingest")
                .stored;
        }
        let elapsed_ns = start.elapsed().as_nanos() as f64;
        let fsyncs_after = registry.counter_value("wal_fsyncs_total").unwrap_or(0);
        assert_eq!(stored, batch * rounds, "every observation must store");
        drop(session);
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
        (
            elapsed_ns / stored as f64,
            (fsyncs_after - fsyncs_before) as f64 / stored as f64,
        )
    };
    let (batched_ns, batched_fsyncs) = run(batch, "ingest-batched");
    let (per_message_ns, per_message_fsyncs) = run(1, "ingest-per-message");
    (
        batched_ns,
        per_message_ns,
        batched_fsyncs,
        per_message_fsyncs,
    )
}

/// Runs the full measurement matrix. `quick` shrinks sample counts for
/// smoke runs (CI `bench-smoke`); the committed baseline uses the slow
/// path. `telemetry: false` measures with registry mirrors off.
pub fn baseline_measurements(quick: bool, telemetry: bool) -> Vec<Measurement> {
    let (samples, iters) = if quick { (5, 200) } else { (15, 2_000) };
    let blue_samples = if quick { 3 } else { 7 };
    let mut out = Vec::new();

    for bindings in [10usize, 100, 1_000] {
        let (trie, naive) = broker_routing(bindings, samples, iters);
        out.push(Measurement {
            bench: "broker_routing",
            variant: "trie",
            size: bindings,
            median_ns_per_op: trie,
        });
        out.push(Measurement {
            bench: "broker_routing",
            variant: "naive_scan",
            size: bindings,
            median_ns_per_op: naive,
        });
    }

    for docs in [1_000usize, 10_000] {
        let q_iters = if quick { 50 } else { 300 };
        let (indexed, scan) = docstore_point_query(docs, samples, q_iters);
        out.push(Measurement {
            bench: "docstore_point_query",
            variant: "indexed",
            size: docs,
            median_ns_per_op: indexed,
        });
        out.push(Measurement {
            bench: "docstore_point_query",
            variant: "full_scan",
            size: docs,
            median_ns_per_op: scan,
        });
        let (indexed, scan) = docstore_range_query(docs, samples, q_iters);
        out.push(Measurement {
            bench: "docstore_range_query",
            variant: "indexed",
            size: docs,
            median_ns_per_op: indexed,
        });
        out.push(Measurement {
            bench: "docstore_range_query",
            variant: "full_scan",
            size: docs,
            median_ns_per_op: scan,
        });
    }

    for obs in [100usize, 500] {
        let (localized, global) = blue_analysis(obs, blue_samples);
        out.push(Measurement {
            bench: "blue_analysis",
            variant: "localized",
            size: obs,
            median_ns_per_op: localized,
        });
        out.push(Measurement {
            bench: "blue_analysis",
            variant: "global",
            size: obs,
            median_ns_per_op: global,
        });
    }

    for payload_bytes in [64usize, 4_096] {
        // TCP round-trips cost tens of microseconds each; keep the
        // iteration count modest so the full matrix stays fast.
        let net_iters = if quick { 50 } else { 400 };
        let (embedded, tcp, tcp_bare) = net_round_trip(payload_bytes, samples, net_iters);
        out.push(Measurement {
            bench: "net_round_trip",
            variant: "embedded",
            size: payload_bytes,
            median_ns_per_op: embedded,
        });
        out.push(Measurement {
            bench: "net_round_trip",
            variant: "tcp",
            size: payload_bytes,
            median_ns_per_op: tcp,
        });
        out.push(Measurement {
            bench: "net_round_trip",
            variant: "tcp_no_telemetry",
            size: payload_bytes,
            median_ns_per_op: tcp_bare,
        });
    }

    for batch in [16usize, 128] {
        let wal_iters = if quick { 10 } else { 40 };
        let wal_samples = if quick { 3 } else { 7 };
        let (group, single) = wal_append(batch, wal_samples, wal_iters, telemetry);
        out.push(Measurement {
            bench: "wal_append",
            variant: "group_commit",
            size: batch,
            median_ns_per_op: group,
        });
        out.push(Measurement {
            bench: "wal_append",
            variant: "per_record",
            size: batch,
            median_ns_per_op: single,
        });
    }

    let sustained_obs = if quick { 1_600 } else { 8_000 };
    let sustained_samples = if quick { 3 } else { 5 };
    for (shards, variant) in [
        (1usize, "shards_1"),
        (2, "shards_2"),
        (4, "shards_4"),
        (8, "shards_8"),
    ] {
        let ns = sustained_throughput(shards, sustained_obs, sustained_samples);
        out.push(Measurement {
            bench: "sustained_throughput",
            variant,
            size: sustained_obs,
            median_ns_per_op: ns,
        });
    }

    let ingest_rounds = if quick { 6 } else { 40 };
    let (batched, per_message, batched_fsyncs, per_message_fsyncs) =
        ingest_batching(16, ingest_rounds);
    out.push(Measurement {
        bench: "batched_ingest",
        variant: "batched",
        size: 16,
        median_ns_per_op: batched,
    });
    out.push(Measurement {
        bench: "batched_ingest",
        variant: "per_message",
        size: 16,
        median_ns_per_op: per_message,
    });
    out.push(Measurement {
        bench: "batched_ingest_fsyncs_per_obs",
        variant: "batched",
        size: 16,
        median_ns_per_op: batched_fsyncs,
    });
    out.push(Measurement {
        bench: "batched_ingest_fsyncs_per_obs",
        variant: "per_message",
        size: 16,
        median_ns_per_op: per_message_fsyncs,
    });
    out
}

/// Assembles the `BENCH_pipeline.json` document.
pub fn baseline_report(measurements: &[Measurement]) -> Value {
    json!({
        "schema": "mps-perf-baseline/1",
        "unit": "median_ns_per_op",
        "notes": "See docs/PERFORMANCE.md for the setup behind every entry. \
                  batched_ingest_fsyncs_per_obs entries report WAL fsyncs per stored \
                  observation (a deterministic count), not nanoseconds.",
        "results": measurements.iter().map(Measurement::to_json).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trie_routing_beats_naive_scan_at_1k_bindings() {
        // The loose in-tree guard: the trie must clearly beat the linear
        // scan at 1k bindings (the committed baseline shows ≥5×; asserting
        // 2× keeps the test robust on noisy machines and debug builds).
        let (trie, naive) = broker_routing(1_000, 5, 50);
        assert!(
            trie * 2.0 < naive,
            "trie {trie} ns/op vs naive {naive} ns/op"
        );
    }

    #[test]
    fn routing_variants_agree_before_timing() {
        let patterns = routing_patterns(200);
        let mut trie = TopicTrie::new();
        for (id, p) in patterns.iter().enumerate() {
            trie.insert(&CompiledPattern::new(&p.parse().unwrap()), id);
        }
        let key = "obs.zone3.kind3".to_owned();
        let words: Vec<&str> = key.split('.').collect();
        let naive: Vec<usize> = patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| topic_matches(p, &key))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(trie.matches(&words), naive);
        assert!(!naive.is_empty(), "the bench key must actually route");
    }

    #[test]
    fn baseline_report_covers_every_family() {
        let measurements = vec![Measurement {
            bench: "broker_routing",
            variant: "trie",
            size: 10,
            median_ns_per_op: 1.0,
        }];
        let report = baseline_report(&measurements);
        assert_eq!(report["schema"], "mps-perf-baseline/1");
        assert_eq!(report["results"].as_array().unwrap().len(), 1);
        assert_eq!(report["results"][0]["bench"], "broker_routing");
    }

    #[test]
    fn net_round_trip_times_both_sides_of_the_boundary() {
        // Tiny sample counts: this is a plumbing check (servers bind,
        // clients connect, all variants publish), not a measurement.
        let (embedded, tcp, tcp_bare) = net_round_trip(64, 2, 5);
        assert!(embedded > 0.0, "embedded publish must be timed");
        assert!(tcp > 0.0, "tcp publish must be timed");
        assert!(tcp_bare > 0.0, "bare tcp publish must be timed");
    }

    #[test]
    fn rpc_telemetry_overhead_stays_marginal() {
        // The committed baseline holds the instrumented-vs-bare delta
        // under 5% of the loopback round-trip median; at in-test sample
        // counts loopback noise dwarfs that, so this only guards against
        // gross regressions (a lock on the hot path, an allocation per
        // sample): the two variants must stay within 1.5x of each other.
        let (_, tcp, tcp_bare) = net_round_trip(64, 3, 30);
        assert!(
            tcp < tcp_bare * 1.5 && tcp_bare < tcp * 1.5,
            "instrumented {tcp} ns/op vs bare {tcp_bare} ns/op"
        );
    }

    #[test]
    fn sustained_throughput_pipeline_stores_everything() {
        // Tiny load: a plumbing check (apps register, workers publish
        // through the sharded broker, every observation drains into the
        // sharded store — the bench asserts zero loss internally), not a
        // measurement.
        let ns = sustained_throughput(2, 160, 1);
        assert!(ns > 0.0, "sustained pass must be timed");
    }

    #[test]
    fn ingest_batching_counts_fewer_barriers_per_obs_when_batched() {
        let (batched_ns, per_message_ns, batched_fsyncs, per_message_fsyncs) =
            ingest_batching(4, 2);
        assert!(batched_ns > 0.0 && per_message_ns > 0.0);
        // Message-at-a-time drains pay at least one barrier per stored
        // observation (parallel tests can only add to the shared
        // counter, never subtract).
        assert!(
            per_message_fsyncs >= 1.0,
            "per-message fsyncs/obs {per_message_fsyncs}"
        );
        assert!(batched_fsyncs > 0.0, "batched drains still hit the disk");
    }

    #[test]
    fn query_benches_agree_between_variants() {
        let indexed = observation_collection(300, true);
        let scan = observation_collection(300, false);
        for filter in [
            Filter::eq("zone", "FR75013"),
            Filter::range("spl", 50.0, 51.0),
        ] {
            assert_eq!(
                indexed.find(&filter).unwrap(),
                scan.find(&filter).unwrap(),
                "variants must answer identically before being timed"
            );
        }
    }
}
