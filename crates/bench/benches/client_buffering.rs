//! The buffering ablation (the paper's central energy-delay tradeoff):
//! sweep the client buffering factor and report both the middleware cost
//! (transfers, time per shipped observation) and the implied energy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mps_broker::{Broker, ExchangeType};
use mps_mobile::{BatteryModel, BatteryParams, GoFlowClient, RadioKind};
use mps_types::{AppVersion, DeviceModel, Observation, SimDuration, SimTime, SoundLevel};

fn obs(i: i64) -> Observation {
    Observation::builder()
        .device(1.into())
        .user(1.into())
        .model(DeviceModel::OneplusA0001)
        .captured_at(SimTime::EPOCH + SimDuration::from_mins(i))
        .spl(SoundLevel::new(52.0))
        .build()
}

/// Messaging cost per observation as the buffer factor grows: v1.1/v1.2.9
/// behaviour at N = 1, the paper's v1.3 at N = 10.
fn bench_buffer_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ship_100_observations");
    group.throughput(Throughput::Elements(100));
    for buffer in [1usize, 2, 5, 10, 20, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(buffer), &buffer, |b, &n| {
            let broker = Broker::new();
            broker.declare_exchange("e", ExchangeType::Topic).unwrap();
            broker.declare_queue("q").unwrap();
            broker.bind_queue("e", "q", "#").unwrap();
            let version = if n == 1 {
                AppVersion::V1_2_9
            } else {
                AppVersion::V1_3
            };
            b.iter(|| {
                // A fresh client per iteration; v1.3's buffer size is
                // emulated by calling flush every n records.
                let mut client = GoFlowClient::new("e", "c1.obs.noise.z", version);
                for i in 0..100i64 {
                    client.record(obs(i));
                    if client.pending() >= n {
                        client.flush(&broker).unwrap();
                    }
                }
                client.flush(&broker).unwrap();
                // Drain so the queue stays flat across iterations.
                let deliveries = broker.consume("q", 200).unwrap();
                for d in deliveries {
                    broker.ack("q", d.tag).unwrap();
                }
            })
        });
    }
    group.finish();
}

/// Non-Criterion side-channel: print the modelled energy per observation
/// for the same sweep, so the bench output shows the tradeoff curve the
/// ablation is about.
fn print_energy_table() {
    println!("\nmodelled energy per observation (Wi-Fi / 3G), by buffer factor:");
    println!(
        "{:>6} {:>12} {:>12} {:>14}",
        "N", "wifi (J)", "3g (J)", "mean delay"
    );
    let params = BatteryParams::default();
    for n in [1usize, 2, 5, 10, 20, 50] {
        let per_obs = |radio: RadioKind| {
            let mut battery = BatteryModel::new(params, 1.0);
            let start = 1.0;
            for i in 0..600usize {
                battery.drain_measurement(true);
                if (i + 1) % n == 0 {
                    battery.drain_transfer(radio, n);
                }
            }
            (start - battery.soc()) * params.capacity_j / 600.0
        };
        println!(
            "{n:>6} {:>12.2} {:>12.2} {:>11.1}min",
            per_obs(RadioKind::Wifi),
            per_obs(RadioKind::ThreeG),
            (n as f64 - 1.0) / 2.0 * 5.0
        );
    }
}

fn bench_with_table(c: &mut Criterion) {
    print_energy_table();
    bench_buffer_sweep(c);
}

criterion_group!(benches, bench_with_table);
criterion_main!(benches);
