//! End-to-end middleware benchmarks: client publish → broker routing →
//! GoFlow ingest → storage, for single observations and v1.3 batches.

use criterion::{criterion_group, criterion_main, Criterion};
use mps_broker::Broker;
use mps_docstore::Store;
use mps_goflow::{GoFlowServer, Role};
use mps_mobile::GoFlowClient;
use mps_types::{
    AppId, AppVersion, DeviceModel, GeoPoint, LocationFix, LocationProvider, Observation,
    SimDuration, SimTime, SoundLevel,
};
use std::sync::Arc;

struct Rig {
    broker: Arc<Broker>,
    server: GoFlowServer,
    app: AppId,
    client: GoFlowClient,
}

fn rig(version: AppVersion) -> Rig {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let token = server
        .register_user(&app, 1.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    let client = GoFlowClient::new(
        session.exchange(),
        session.observation_key("noise", "FR75013"),
        version,
    );
    Rig {
        broker,
        server,
        app,
        client,
    }
}

fn obs(i: i64) -> Observation {
    Observation::builder()
        .device(1.into())
        .user(1.into())
        .model(DeviceModel::LgeNexus5)
        .captured_at(SimTime::EPOCH + SimDuration::from_mins(5 * i))
        .spl(SoundLevel::new(55.0))
        .location(LocationFix::new(
            GeoPoint::PARIS,
            25.0,
            LocationProvider::Network,
        ))
        .build()
}

fn bench_single_observation_pipeline(c: &mut Criterion) {
    let mut r = rig(AppVersion::V1_2_9);
    let mut i = 0i64;
    c.bench_function("publish_ingest_store_single", |b| {
        b.iter(|| {
            r.client.record(obs(i));
            r.client.on_cycle(&r.broker, true).unwrap();
            let out = r
                .server
                .ingest_pending(
                    &r.app,
                    SimTime::EPOCH + SimDuration::from_mins(5 * i + 1),
                    1,
                )
                .unwrap();
            assert_eq!(out.stored, 1);
            i += 1;
        })
    });
}

fn bench_batched_pipeline(c: &mut Criterion) {
    let mut r = rig(AppVersion::V1_3);
    let mut i = 0i64;
    c.bench_function("publish_ingest_store_batch10", |b| {
        b.iter(|| {
            for _ in 0..10 {
                r.client.record(obs(i));
                i += 1;
            }
            r.client.on_cycle(&r.broker, true).unwrap();
            let out = r
                .server
                .ingest_pending(
                    &r.app,
                    SimTime::EPOCH + SimDuration::from_mins(5 * i + 1),
                    1,
                )
                .unwrap();
            assert_eq!(out.stored, 10);
        })
    });
}

fn bench_query_after_ingest(c: &mut Criterion) {
    let mut r = rig(AppVersion::V1_2_9);
    for i in 0..5_000 {
        r.client.record(obs(i));
    }
    r.client.flush(&r.broker).unwrap();
    r.server
        .ingest_pending(&r.app, SimTime::EPOCH + SimDuration::from_days(30), 10_000)
        .unwrap();
    let query = mps_goflow::ObservationQuery::new()
        .provider(LocationProvider::Network)
        .max_accuracy_m(50.0)
        .limit(100);
    c.bench_function("filtered_query_over_5k", |b| {
        b.iter(|| r.server.query(&r.app, &query).unwrap())
    });
}

criterion_group!(
    benches,
    bench_single_observation_pipeline,
    bench_batched_pipeline,
    bench_query_after_ingest
);
criterion_main!(benches);
