//! Simulation-kernel benchmarks: event queue, per-device capture
//! throughput, and a full replayed deployment day.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mps_core::{Deployment, ExperimentConfig};
use mps_mobile::{Device, DeviceConfig};
use mps_simcore::{EventQueue, SimRng};
use mps_types::{DeviceModel, SensingMode, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1_000);
            let mut x: u64 = 99;
            for i in 0..1_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                q.push(SimTime::from_millis((x >> 40) as i64), i);
            }
            while q.pop().is_some() {}
        })
    });
    group.finish();
}

fn bench_device_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("device");
    let root = SimRng::new(7);
    let mut device = Device::new(DeviceConfig::new(1, DeviceModel::SamsungGtI9505), &root);
    let mut i = 0i64;
    group.bench_function("capture", |b| {
        b.iter(|| {
            i += 1;
            device.capture(
                SimTime::from_millis(i * 300_000),
                SensingMode::Opportunistic,
            )
        })
    });
    let mut device = Device::new(DeviceConfig::new(2, DeviceModel::SamsungGtI9505), &root);
    group.bench_function("maybe_capture_slot", |b| {
        b.iter(|| {
            i += 1;
            device.maybe_capture(SimTime::from_millis(i * 300_000))
        })
    });
    group.finish();
}

fn bench_deployment_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("deployment");
    group.sample_size(10);
    group.bench_function("one_day_20_devices", |b| {
        b.iter_with_setup(
            || Deployment::new(ExperimentConfig::quick().with_months(1)),
            |mut deployment| {
                deployment.run_day(0);
                deployment
            },
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_device_capture,
    bench_deployment_day
);
criterion_main!(benches);
