//! Assimilation benchmarks: the forward noise model and the BLUE
//! analysis, swept over grid size and observation count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps_assim::{Blue, CityModel, Grid, Localization, NoiseSimulator, PointObservation};
use mps_simcore::SimRng;
use mps_types::GeoBounds;

fn observations(n: usize, truth: &Grid, seed: u64) -> Vec<PointObservation> {
    let mut rng = SimRng::new(seed);
    let bounds = truth.bounds();
    (0..n)
        .map(|_| {
            let at = bounds.lerp(rng.uniform_in(0.05, 0.95), rng.uniform_in(0.05, 0.95));
            PointObservation::new(at, truth.sample(at).unwrap() + rng.normal(0.0, 2.0), 2.0)
        })
        .collect()
}

fn bench_forward_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_simulation");
    let mut rng = SimRng::new(1);
    let city = CityModel::synthetic(GeoBounds::paris(), 5, 50, &mut rng);
    let sim = NoiseSimulator::new(city);
    for n in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &n, |b, &n| {
            b.iter(|| sim.simulate(n, n))
        });
    }
    group.finish();
}

fn bench_blue_vs_observation_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("blue_analysis_obs");
    group.sample_size(20);
    let mut rng = SimRng::new(2);
    let city = CityModel::synthetic(GeoBounds::paris(), 5, 40, &mut rng);
    let truth = NoiseSimulator::new(city).simulate(24, 24);
    let background = Grid::constant(GeoBounds::paris(), 24, 24, truth.mean());
    let blue = Blue::new(4.0, 1_000.0);
    for m in [10usize, 50, 150] {
        let obs = observations(m, &truth, 3);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| blue.analyse(&background, &obs).unwrap())
        });
    }
    group.finish();
}

fn bench_blue_vs_grid_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("blue_analysis_grid");
    group.sample_size(20);
    let mut rng = SimRng::new(4);
    let city = CityModel::synthetic(GeoBounds::paris(), 5, 40, &mut rng);
    let blue = Blue::new(4.0, 1_000.0);
    for n in [16usize, 32, 48] {
        let truth = NoiseSimulator::new(CityModel::synthetic(GeoBounds::paris(), 5, 40, &mut rng))
            .simulate(n, n);
        let background = Grid::constant(GeoBounds::paris(), n, n, truth.mean());
        let obs = observations(50, &truth, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &n, |b, _| {
            b.iter(|| blue.analyse(&background, &obs).unwrap())
        });
    }
    group.finish();
    let _ = city;
}

/// Observation-space localization against the global solve — the
/// comparison behind `BENCH_pipeline.json`'s `blue_analysis` entries.
fn bench_blue_localized_vs_global(c: &mut Criterion) {
    let mut group = c.benchmark_group("blue_localization");
    group.sample_size(10);
    let mut rng = SimRng::new(6);
    let city = CityModel::synthetic(GeoBounds::paris(), 5, 40, &mut rng);
    let truth = NoiseSimulator::new(city).simulate(32, 32);
    let background = Grid::constant(GeoBounds::paris(), 32, 32, truth.mean());
    let blue = Blue::new(4.0, 150.0);
    let localization = Localization::for_radius(150.0).tile(4);
    for m in [100usize, 500] {
        let obs = observations(m, &truth, 7);
        group.bench_with_input(BenchmarkId::new("localized", m), &m, |b, _| {
            b.iter(|| {
                blue.analyse_localized(&background, &obs, &localization)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("global", m), &m, |b, _| {
            b.iter(|| blue.analyse(&background, &obs).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward_model,
    bench_blue_vs_observation_count,
    bench_blue_vs_grid_size,
    bench_blue_localized_vs_global
);
criterion_main!(benches);
