//! Flight-recorder overhead: the cost of recording one span, which every
//! pipeline hop pays on the hot path. The documented budget is <100 ns
//! per span in release builds (see `docs/ARCHITECTURE.md`, "Tracing &
//! flight recorder"); a loose test-mode assertion of the same budget
//! lives next to the recorder in `mps-telemetry`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mps_telemetry::trace::{FlightRecorder, Hop, Outcome, SpanRecord, TraceId};

/// A bare span: the cheapest record a hop can emit (no attributes).
fn bench_record_bare(c: &mut Criterion) {
    let mut group = c.benchmark_group("flight_recorder");
    group.throughput(Throughput::Elements(1));
    let recorder = FlightRecorder::with_capacity(16 * 1024);
    let trace = TraceId::for_observation(4, 0);
    group.bench_function("record_bare_span", |b| {
        b.iter(|| recorder.record(SpanRecord::new(trace, Hop::LinkTransmit, 1_000)))
    });
    group.finish();
}

/// A realistic span: parented, terminal outcome, one attribute — what the
/// ingest and broker hops actually emit.
fn bench_record_attributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("flight_recorder");
    group.throughput(Throughput::Elements(1));
    let recorder = FlightRecorder::with_capacity(16 * 1024);
    let trace = TraceId::for_observation(4, 0);
    group.bench_function("record_attributed_span", |b| {
        b.iter_batched(
            || {
                SpanRecord::new(trace, Hop::Quarantine, 2_000)
                    .started_at(1_000)
                    .outcome(Outcome::Quarantined)
                    .attr("reason", "late")
            },
            |span| recorder.record(span),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Snapshot cost at a full ring — the *offline* side (exhibits, tests),
/// benchmarked so a hot-path regression hiding in the drop-oldest
/// arithmetic would surface as a snapshot anomaly too.
fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("flight_recorder");
    let recorder = FlightRecorder::with_capacity(4 * 1024);
    let trace = TraceId::for_observation(4, 0);
    for i in 0..8 * 1024 {
        recorder.record(SpanRecord::new(trace, Hop::Sensed, i));
    }
    group.bench_function("snapshot_full_ring_4k", |b| b.iter(|| recorder.snapshot()));
    group.finish();
}

criterion_group!(
    benches,
    bench_record_bare,
    bench_record_attributed,
    bench_snapshot
);
criterion_main!(benches);
