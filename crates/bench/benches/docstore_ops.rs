//! Document-store benchmarks: inserts, scan vs indexed queries (the
//! index ablation), sorting and aggregation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mps_docstore::{
    aggregate, Accumulator, Collection, Filter, FindOptions, GroupSpec, SortOrder, Stage,
};
use serde_json::json;

fn seeded_collection(n: usize) -> Collection {
    let c = Collection::new();
    for i in 0..n {
        c.insert_one(json!({
            "model": format!("MODEL-{}", i % 20),
            "spl": 30.0 + (i % 70) as f64,
            "hour": i % 24,
            "localized": i % 5 != 0,
        }))
        .unwrap();
    }
    c
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    group.bench_function("plain", |b| {
        let collection = Collection::new();
        let mut i = 0u64;
        b.iter(|| {
            collection.insert_one(json!({"i": i, "spl": 50.0})).unwrap();
            i += 1;
        })
    });
    group.bench_function("with_two_indexes", |b| {
        let collection = Collection::new();
        collection.create_index("i").unwrap();
        collection.create_index("spl").unwrap();
        let mut i = 0u64;
        b.iter(|| {
            collection
                .insert_one(json!({"i": i, "spl": (i % 70) as f64}))
                .unwrap();
            i += 1;
        })
    });
    group.finish();
}

/// The index-vs-scan ablation from DESIGN.md.
fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("equality_query");
    for n in [1_000usize, 10_000] {
        let scan = seeded_collection(n);
        let filter = Filter::eq("model", "MODEL-7");
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| scan.count(black_box(&filter)).unwrap())
        });
        let indexed = seeded_collection(n);
        indexed.create_index("model").unwrap();
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| indexed.count(black_box(&filter)).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("range_query");
    let n = 10_000;
    let scan = seeded_collection(n);
    let filter = Filter::range("spl", 40.0, 45.0);
    group.bench_function("scan", |b| {
        b.iter(|| scan.count(black_box(&filter)).unwrap())
    });
    let indexed = seeded_collection(n);
    indexed.create_index("spl").unwrap();
    group.bench_function("indexed", |b| {
        b.iter(|| indexed.count(black_box(&filter)).unwrap())
    });
    group.finish();
}

/// The planner's index-intersection path: a conjunction of an indexed
/// equality and an indexed range, against the same query on a bare
/// collection.
fn bench_intersect_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_query");
    let n = 10_000;
    let filter = Filter::And(vec![
        Filter::eq("model", "MODEL-7"),
        Filter::range("spl", 40.0, 60.0),
    ]);
    let scan = seeded_collection(n);
    group.bench_function("scan", |b| {
        b.iter(|| scan.find(black_box(&filter)).unwrap())
    });
    let indexed = seeded_collection(n);
    indexed.create_index("model").unwrap();
    indexed.create_index("spl").unwrap();
    group.bench_function("two_indexes", |b| {
        b.iter(|| indexed.find(black_box(&filter)).unwrap())
    });
    group.finish();
}

fn bench_sort_and_page(c: &mut Criterion) {
    let collection = seeded_collection(10_000);
    let options = FindOptions::new()
        .sort("spl", SortOrder::Descending)
        .limit(50);
    c.bench_function("sorted_top50_of_10k", |b| {
        b.iter(|| {
            collection
                .find_with_options(black_box(&Filter::True), &options)
                .unwrap()
        })
    });
}

fn bench_aggregation(c: &mut Criterion) {
    let docs = seeded_collection(10_000).all();
    let pipeline = vec![
        Stage::Match(Filter::eq("localized", true)),
        Stage::Group(
            GroupSpec::by("hour")
                .accumulate("n", Accumulator::Count)
                .accumulate("mean_spl", Accumulator::Avg("spl".into())),
        ),
        Stage::Sort("_id".into(), SortOrder::Ascending),
    ];
    c.bench_function("hourly_group_of_10k", |b| {
        b.iter(|| aggregate(black_box(&docs), &pipeline).unwrap())
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_query,
    bench_intersect_query,
    bench_sort_and_page,
    bench_aggregation
);
criterion_main!(benches);
