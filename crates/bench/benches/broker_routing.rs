//! Broker benchmarks: topic matching, publish throughput, fanout width,
//! and the Figure 3 topology ablation (direct publish vs chained
//! client-exchange topology).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mps_bench::baseline::routing_patterns;
use mps_broker::{topic_matches, Broker, CompiledPattern, ExchangeType, TopicTrie};

fn bench_topic_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("topic_matching");
    let cases = [
        ("literal", "a.b.c.d.e", "a.b.c.d.e"),
        ("stars", "*.b.*.d.*", "a.b.c.d.e"),
        ("hash_prefix", "#.e", "a.b.c.d.e"),
        ("hash_middle", "a.#.e", "a.b.c.d.e"),
        ("pathological", "#.#.#.#", "a.b.c.d.e.f.g.h"),
    ];
    for (name, pattern, key) in cases {
        group.bench_function(name, |b| {
            b.iter(|| topic_matches(black_box(pattern), black_box(key)))
        });
    }
    group.finish();
}

/// Trie-indexed routing against the retained naive pattern scan — the
/// comparison behind `BENCH_pipeline.json`'s `broker_routing` entries.
fn bench_trie_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_index");
    for n in [10usize, 100, 1_000] {
        let patterns = routing_patterns(n);
        let mut trie = TopicTrie::new();
        for (id, p) in patterns.iter().enumerate() {
            trie.insert(&CompiledPattern::new(&p.parse().unwrap()), id);
        }
        let key = format!("obs.zone{}.kind{}", (n / 2) % 97, (n / 2) % 23);
        let words: Vec<&str> = key.split('.').collect();
        group.bench_with_input(BenchmarkId::new("trie", n), &n, |b, _| {
            b.iter(|| black_box(trie.matches(black_box(&words))))
        });
        group.bench_with_input(BenchmarkId::new("naive_scan", n), &n, |b, _| {
            b.iter(|| {
                patterns
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| topic_matches(black_box(p), black_box(&key)))
                    .map(|(id, _)| id)
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

fn bench_publish_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("publish");
    // One topic binding.
    let broker = Broker::new();
    broker.declare_exchange("e", ExchangeType::Topic).unwrap();
    broker.declare_queue("q").unwrap();
    broker.bind_queue("e", "q", "obs.#").unwrap();
    group.bench_function("topic_single_binding", |b| {
        b.iter(|| {
            broker
                .publish("e", black_box("obs.FR75013.noise"), &b"payload"[..])
                .unwrap()
        })
    });
    // Periodically drain so the queue doesn't grow unboundedly.
    broker.purge_queue("q").unwrap();

    // Many bindings to filter through.
    let broker = Broker::new();
    broker.declare_exchange("e", ExchangeType::Topic).unwrap();
    broker.declare_queue("q").unwrap();
    for i in 0..100 {
        broker
            .bind_queue("e", "q", &format!("obs.zone{i}.#"))
            .unwrap();
    }
    group.bench_function("topic_100_bindings", |b| {
        b.iter(|| {
            broker
                .publish("e", black_box("obs.zone50.noise"), &b"payload"[..])
                .unwrap()
        })
    });
    group.finish();
}

fn bench_fanout_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout_width");
    for width in [1usize, 10, 100] {
        let broker = Broker::new();
        broker.declare_exchange("f", ExchangeType::Fanout).unwrap();
        for i in 0..width {
            let q = format!("q{i}");
            broker.declare_queue(&q).unwrap();
            broker.bind_queue("f", &q, "#").unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| broker.publish("f", "k", &b"m"[..]).unwrap())
        });
    }
    group.finish();
}

/// The Figure 3 topology ablation: publishing straight to the app
/// exchange vs through the per-client exchange chain (client exchange →
/// app exchange → GF exchange → GF queue).
fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_topology");

    let direct = Broker::new();
    direct.declare_exchange("app", ExchangeType::Topic).unwrap();
    direct.declare_queue("gf").unwrap();
    direct.bind_queue("app", "gf", "#").unwrap();
    group.bench_function("direct_to_app_exchange", |b| {
        b.iter(|| {
            direct
                .publish("app", "c1.obs.noise.FR75013", &b"m"[..])
                .unwrap()
        })
    });

    let chained = Broker::new();
    chained
        .declare_exchange("client", ExchangeType::Topic)
        .unwrap();
    chained
        .declare_exchange("app", ExchangeType::Topic)
        .unwrap();
    chained
        .declare_exchange("gfx", ExchangeType::Topic)
        .unwrap();
    chained.declare_queue("gf").unwrap();
    chained.bind_exchange("client", "app", "c1.#").unwrap();
    chained.bind_exchange("app", "gfx", "#").unwrap();
    chained.bind_queue("gfx", "gf", "#").unwrap();
    group.bench_function("chained_client_exchange", |b| {
        b.iter(|| {
            chained
                .publish("client", "c1.obs.noise.FR75013", &b"m"[..])
                .unwrap()
        })
    });
    group.finish();
}

fn bench_consume_ack(c: &mut Criterion) {
    let broker = Broker::new();
    broker.declare_exchange("e", ExchangeType::Fanout).unwrap();
    broker.declare_queue("q").unwrap();
    broker.bind_queue("e", "q", "#").unwrap();
    c.bench_function("publish_consume_ack", |b| {
        b.iter(|| {
            broker.publish("e", "k", &b"m"[..]).unwrap();
            let d = broker.consume("q", 1).unwrap().remove(0);
            broker.ack("q", d.tag).unwrap();
        })
    });
}

criterion_group!(
    benches,
    bench_topic_matching,
    bench_trie_vs_naive,
    bench_publish_throughput,
    bench_fanout_width,
    bench_topology,
    bench_consume_ack
);
criterion_main!(benches);
