//! Loom model checks for the mps-net lock paths.
//!
//! These tests only build under `RUSTFLAGS="--cfg loom"`, where
//! `mps_net`'s `sync` module swaps `std::sync::Mutex` for loom's
//! modelled version and `loom::model` exhaustively explores every
//! thread interleaving (bounded by `LOOM_MAX_PREEMPTIONS`). Run them
//! with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" LOOM_MAX_PREEMPTIONS=3 \
//!     cargo test -p mps-net --release --test loom
//! ```
//!
//! Each model is deliberately tiny — loom's state space is exponential
//! in operations per thread — but it runs the *production* code paths:
//! the same [`IdleStack`] checkout/return the [`ClientPool`] does per
//! call, and the same [`SlowRpcRing`] admission every server worker
//! performs after answering a request.
//!
//! [`ClientPool`]: mps_net::ClientPool
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use mps_net::admin::SlowRpcRing;
use mps_net::IdleStack;
use std::time::Duration;

/// Two threads checkout/return against a capacity-1 stack (the
/// `ClientPool::call` fast path): popped items are real, the capacity
/// bound holds in every interleaving, and at least one return is
/// parked. (A thread *may* pop the item its peer already re-parked —
/// that is legitimate reuse, not duplication, so the model asserts
/// validity rather than at-most-one-popper.)
#[test]
fn idle_stack_checkout_return_is_linearisable() {
    loom::model(|| {
        let stack: Arc<IdleStack<u32>> = Arc::new(IdleStack::new(1));
        assert!(stack.push(7), "an empty stack parks the first item");
        let handles: Vec<_> = (0..2u32)
            .map(|tid| {
                let stack = Arc::clone(&stack);
                thread::spawn(move || {
                    let popped = stack.pop();
                    // Return what we took (or a fresh "dialled" item).
                    let parked = stack.push(popped.unwrap_or(100 + tid));
                    (popped, parked)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Nothing is conjured: every popped value was pushed by someone.
        for (popped, _) in &results {
            if let Some(v) = popped {
                assert!([7, 100, 101].contains(v), "phantom item: {results:?}");
            }
        }
        // Capacity is respected in every interleaving.
        assert!(stack.len() <= 1);
        // At least one thread parked its item back (capacity 1, and the
        // final push of each thread happens after its own pop).
        assert!(results.iter().any(|(_, parked)| *parked));
    });
}

/// Two threads park into a capacity-2 stack: both fit, nothing vanishes.
#[test]
fn idle_stack_never_exceeds_capacity() {
    loom::model(|| {
        let stack: Arc<IdleStack<u32>> = Arc::new(IdleStack::new(2));
        let handles: Vec<_> = (0..2u32)
            .map(|tid| {
                let stack = Arc::clone(&stack);
                thread::spawn(move || stack.push(tid))
            })
            .collect();
        let parked = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|kept| *kept)
            .count();
        assert_eq!(parked, 2, "capacity 2 parks both");
        assert_eq!(stack.len(), 2);
    });
}

/// Two workers observe into a capacity-1 ring while it is being read:
/// sequence numbers stay unique and monotonic, the drop counter matches
/// the wrap-around, and `top_k` never tears.
#[test]
fn slow_rpc_ring_concurrent_observe_is_consistent() {
    loom::model(|| {
        let ring = Arc::new(SlowRpcRing::new(1, Duration::ZERO));
        let handles: Vec<_> = (0..2u8)
            .map(|tid| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    ring.observe(tid, "OP", Duration::from_micros(u64::from(tid) + 1), 0);
                })
            })
            .collect();
        let reader = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.top_k(2))
        };
        for h in handles {
            h.join().unwrap();
        }
        let mid_read = reader.join().unwrap();
        assert!(mid_read.len() <= 1, "capacity 1: a read never tears");
        // After both observations: one retained, one dropped, and the
        // retained entry carries the final sequence number.
        let final_top = ring.top_k(2);
        assert_eq!(final_top.len(), 1);
        assert_eq!(final_top[0].seq, 2);
        assert_eq!(ring.dropped(), 1);
    });
}
