//! # mps-net — the pipeline's real network boundary
//!
//! Every other crate in this workspace is deliberately in-process: the
//! broker, the docstore and the GoFlow server all live in one address
//! space so experiments stay deterministic. The paper's deployment,
//! however, ran across *machines* — phones talking AMQP to a RabbitMQ
//! broker, GoFlow talking BSON to a MongoDB server — and several of its
//! hard-won lessons (backpressure, visible loss, bounded buffers) only
//! bite once a socket sits between components. This crate supplies that
//! socket without dragging in an async runtime or a serialization
//! framework:
//!
//! * **Frames** ([`frame`]) — a length-prefixed, CRC-32-checksummed
//!   binary framing reusing the `mps-wal` record conventions; torn and
//!   corrupt frames are classified, counted and rejected, never skipped.
//! * **Wire primitives** ([`wire`]) — little-endian scalars and
//!   length-prefixed strings; the whole protocol is implementable from
//!   `docs/WIRE_PROTOCOL.md` alone.
//! * **Servers** ([`server`]) — a thread-per-connection TCP server with
//!   per-connection bounded buffers and explicit backpressure: past
//!   `max_connections` the handshake *sheds* (counted in
//!   `net_server_shed_total`) instead of queueing invisibly.
//! * **Clients** ([`client`]) — a connection-pooled client that retries
//!   a failed call exactly once on a fresh connection (at-least-once,
//!   the same contract the rest of the pipeline assumes).
//! * **APIs** ([`broker_api`], [`docstore_api`]) — opcode tables mapping
//!   [`mps_broker::BrokerTransport`] and
//!   [`mps_docstore::DocstoreTransport`] over the wire, with exact
//!   bidirectional error codecs: a `QueueNotFound` on the server is a
//!   `QueueNotFound` at the client, three processes away.
//! * **Fault proxy** ([`proxy`]) — `mps-faults` plans applied at an
//!   actual socket: drops tear TCP streams, delays stall frames, and
//!   every decision lands in the same conservation counters the
//!   simulated links use.
//! * **Observability plane** ([`admin`], [`fleet`]) — every server
//!   answers the reserved admin opcodes (metrics, health,
//!   flight-recorder drain, slow RPCs) on its wire port, and the fleet
//!   scraper merges N processes into one instance-labelled registry,
//!   one stitched trace index and one ops dashboard (`xtask obs`).
//!
//! Trace contexts ([`mps_types::headers::TRACE_HEADER`]) ride request
//! envelope headers across the boundary, so the flight-recorder's
//! "every trace ends in exactly one primary terminal" invariant keeps
//! holding when the pipeline spans processes — see
//! `tests/remote_pipeline.rs`.
//!
//! # Example: a broker behind TCP
//!
//! ```
//! use mps_broker::{Broker, BrokerTransport, ExchangeType};
//! use mps_net::client::ClientConfig;
//! use mps_net::broker_api::{BrokerService, RemoteBroker};
//! use mps_net::server::{ServerConfig, WireServer};
//! use std::sync::Arc;
//!
//! let broker: Arc<dyn BrokerTransport> = Arc::new(Broker::new());
//! let server = WireServer::bind(
//!     "127.0.0.1:0",
//!     Arc::new(BrokerService::new(broker)),
//!     ServerConfig::default(),
//! )?;
//!
//! // In another process this would be `RemoteBroker::connect("host:port", ...)`.
//! let remote = RemoteBroker::connect(server.local_addr().to_string(), ClientConfig::default());
//! remote.declare_exchange("app", ExchangeType::Topic)?;
//! remote.declare_queue("inbox")?;
//! remote.bind_queue("app", "inbox", "obs.#")?;
//! remote.publish("app", "obs.paris.noise", br#"{"spl": 61.5}"#)?;
//! assert_eq!(remote.queue_depth("inbox")?, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod admin;
pub mod broker_api;
pub mod client;
pub mod docstore_api;
pub mod fleet;
pub mod frame;
pub mod proxy;
pub mod rpc;
pub mod server;
pub(crate) mod sync;
mod telemetry;
pub mod wire;

#[cfg(test)]
mod proptests;

pub use admin::{
    SlowRpc, SlowRpcRing, ADMIN_OPCODE_MIN, OP_FLIGHT_DRAIN, OP_HEALTH, OP_METRICS, OP_SLOW_RPCS,
};
pub use broker_api::{BrokerService, RemoteBroker};
pub use client::{ClientConfig, ClientPool, IdleStack, NetError, WireConn};
pub use docstore_api::{DocstoreService, RemoteStore};
pub use fleet::{Conservation, Endpoint, FleetSnapshot, InstanceScrape};
pub use frame::{Frame, FrameError, FrameType, PROTOCOL_VERSION};
pub use proxy::SocketFaultProxy;
pub use server::{ServerConfig, ServiceError, WireServer, WireService};
