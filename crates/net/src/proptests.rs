//! Property tests for the wire protocol codecs.
//!
//! The invariants mirror `mps-wal`'s record properties, one layer up:
//! every frame round-trips bit-exactly; every strict prefix of a frame
//! is torn or invalid, never a different valid frame; corruption is
//! always detected; and the RPC envelopes round-trip through their
//! codecs.

use crate::frame::{
    decode_frame, encode_frame, Decoded, Frame, FrameType, DEFAULT_MAX_FRAME_BYTES,
};
use crate::rpc::{RequestEnvelope, ResponseEnvelope};
use proptest::prelude::*;

fn arb_frame_type() -> impl Strategy<Value = FrameType> {
    prop_oneof![
        Just(FrameType::Hello),
        Just(FrameType::HelloAck),
        Just(FrameType::Request),
        Just(FrameType::Response),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        arb_frame_type(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(frame_type, payload)| Frame::new(frame_type, payload))
}

proptest! {
    #[test]
    fn frame_round_trips(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        match decode_frame(&bytes, DEFAULT_MAX_FRAME_BYTES) {
            Decoded::Frame(back, used) => {
                prop_assert_eq!(back, frame);
                prop_assert_eq!(used, bytes.len());
            }
            other => prop_assert!(false, "expected frame, got {:?}", other),
        }
    }

    #[test]
    fn torn_frames_never_parse(frame in arb_frame(), cut_frac in 0.0f64..1.0) {
        let bytes = encode_frame(&frame);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        match decode_frame(&bytes[..cut], DEFAULT_MAX_FRAME_BYTES) {
            Decoded::Frame(..) => prop_assert!(false, "prefix decoded as a complete frame"),
            Decoded::End => prop_assert_eq!(cut, 0),
            Decoded::Torn | Decoded::Invalid(_) => {}
        }
    }

    #[test]
    fn single_byte_corruption_is_detected(
        frame in arb_frame(),
        at_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_frame(&frame);
        let at = ((bytes.len() as f64) * at_frac) as usize % bytes.len();
        bytes[at] ^= flip;
        match decode_frame(&bytes, DEFAULT_MAX_FRAME_BYTES) {
            // A flipped length byte can make the frame look longer or
            // shorter; longer reads as torn, never as silently valid.
            Decoded::Invalid(_) | Decoded::Torn => {}
            Decoded::Frame(back, _) => {
                // The only way a corrupted buffer may still decode is a
                // flip *after* the declared frame end (trailing bytes) —
                // impossible here since we encode exactly one frame.
                prop_assert!(false, "corrupt frame decoded as valid: {:?}", back.frame_type);
            }
            Decoded::End => prop_assert!(false, "non-empty buffer decoded as End"),
        }
    }

    #[test]
    fn request_envelope_round_trips(
        correlation in any::<u64>(),
        opcode in any::<u8>(),
        headers in proptest::collection::vec(("[a-z\\-]{1,12}", "[ -~]{0,24}"), 0..4),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let request = RequestEnvelope {
            correlation,
            opcode,
            headers: headers.into_iter().collect(),
            body,
        };
        prop_assert_eq!(
            RequestEnvelope::decode(&request.encode()).unwrap(),
            request
        );
    }

    #[test]
    fn response_envelope_round_trips(
        correlation in any::<u64>(),
        status in any::<u8>(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let response = ResponseEnvelope { correlation, status, body };
        prop_assert_eq!(
            ResponseEnvelope::decode(&response.encode()).unwrap(),
            response
        );
    }

    #[test]
    fn concatenated_frames_decode_in_order(frames in proptest::collection::vec(arb_frame(), 1..5)) {
        let mut stream = Vec::new();
        for frame in &frames {
            stream.extend_from_slice(&encode_frame(frame));
        }
        let mut offset = 0usize;
        for expected in &frames {
            match decode_frame(&stream[offset..], DEFAULT_MAX_FRAME_BYTES) {
                Decoded::Frame(frame, used) => {
                    prop_assert_eq!(&frame, expected);
                    offset += used;
                }
                other => prop_assert!(false, "expected frame, got {:?}", other),
            }
        }
        prop_assert_eq!(offset, stream.len());
    }
}
