//! Length-prefixed, checksummed wire frames.
//!
//! Every byte that crosses an mps-net socket travels inside a *frame*:
//!
//! ```text
//! offset  size  field
//! ------  ----  --------------------------------------------------
//!      0     4  magic       b"MPSN"
//!      4     1  version     protocol version (currently 1)
//!      5     1  frame type  Hello / HelloAck / Request / Response
//!      6     4  length      payload length, little-endian u32
//!     10     4  crc         CRC-32 (IEEE), little-endian, computed over
//!                           version byte ∥ frame-type byte ∥ payload
//!     14   len  payload
//! ```
//!
//! The checksum covers the version and frame-type bytes as well as the
//! payload, so a bit-flip cannot silently turn one frame type into
//! another — the property tests check exactly this.
//!
//! The layout deliberately mirrors the `mps-wal` record framing
//! (`[len][crc][payload]`, same CRC-32 polynomial via
//! [`mps_wal::crc32`]): both answer the same question — "is this blob
//! complete and uncorrupted?" — the WAL against a torn disk write, the
//! socket against a torn TCP stream. A frame that fails any header or
//! checksum test is classified [`Decoded::Torn`] or rejected with a
//! specific [`FrameError`], never silently skipped; see
//! `docs/WIRE_PROTOCOL.md` for the normative spec.

use std::fmt;
use std::io::{self, Read, Write};

/// The 4-byte magic opening every frame.
pub const MAGIC: [u8; 4] = *b"MPSN";

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed byte length of a frame header (magic + version + type + len + crc).
pub const FRAME_HEADER_BYTES: usize = 14;

/// Default ceiling on payload size (4 MiB) — a corrupt length field must
/// not make a reader allocate gigabytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// The four frame types of protocol version 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Client → server greeting carrying the client's highest version.
    Hello,
    /// Server → client handshake reply (accept / shed) with the
    /// negotiated version.
    HelloAck,
    /// Client → server operation envelope.
    Request,
    /// Server → client reply envelope.
    Response,
}

impl FrameType {
    /// The on-wire byte for this frame type.
    #[must_use]
    pub fn as_byte(self) -> u8 {
        match self {
            FrameType::Hello => 1,
            FrameType::HelloAck => 2,
            FrameType::Request => 3,
            FrameType::Response => 4,
        }
    }

    /// Parses an on-wire frame-type byte.
    #[must_use]
    pub fn from_byte(byte: u8) -> Option<FrameType> {
        match byte {
            1 => Some(FrameType::Hello),
            2 => Some(FrameType::HelloAck),
            3 => Some(FrameType::Request),
            4 => Some(FrameType::Response),
            _ => None,
        }
    }
}

/// One decoded frame: its type and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type from the header.
    pub frame_type: FrameType,
    /// The checksum-verified payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame of `frame_type` around `payload`.
    #[must_use]
    pub fn new(frame_type: FrameType, payload: Vec<u8>) -> Frame {
        Frame {
            frame_type,
            payload,
        }
    }
}

/// Errors surfaced while reading or writing frames.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The first four bytes were not [`MAGIC`] — the peer is not speaking
    /// this protocol (or the stream lost sync, which is unrecoverable on a
    /// stream transport: the connection must be dropped).
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// The frame-type byte is not one of the defined types.
    UnknownType(u8),
    /// The declared payload length exceeds the configured ceiling.
    TooLarge {
        /// Length the header declared.
        declared: usize,
        /// The ceiling it exceeded.
        limit: usize,
    },
    /// The payload arrived complete but its CRC-32 did not match.
    Corrupt,
    /// The stream ended mid-frame (torn frame).
    Torn,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(err) => write!(f, "socket error: {err}"),
            FrameError::BadMagic(bytes) => write!(f, "bad frame magic: {bytes:02x?}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownType(b) => write!(f, "unknown frame type {b}"),
            FrameError::TooLarge { declared, limit } => {
                write!(f, "frame payload of {declared} bytes exceeds limit {limit}")
            }
            FrameError::Corrupt => write!(f, "frame payload failed its checksum"),
            FrameError::Torn => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> Self {
        FrameError::Io(err)
    }
}

/// CRC-32 over `version ∥ frame type ∥ payload`, reusing the WAL's
/// checksum so both layers answer "complete and uncorrupted?" the same
/// way. Covering the two semantic header bytes means a bit-flip cannot
/// silently change a frame's type or version.
fn frame_crc(version: u8, type_byte: u8, payload: &[u8]) -> u32 {
    let mut covered = Vec::with_capacity(2 + payload.len());
    covered.push(version);
    covered.push(type_byte);
    covered.extend_from_slice(payload);
    mps_wal::crc32(&covered)
}

/// Encodes `frame` into `out`.
pub fn encode_frame_into(out: &mut Vec<u8>, frame: &Frame) {
    out.reserve(FRAME_HEADER_BYTES + frame.payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(frame.frame_type.as_byte());
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    let crc = frame_crc(PROTOCOL_VERSION, frame.frame_type.as_byte(), &frame.payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&frame.payload);
}

/// Encodes `frame` to a fresh byte vector.
#[must_use]
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + frame.payload.len());
    encode_frame_into(&mut out, frame);
    out
}

/// Writes one frame to `writer` and flushes it.
///
/// # Errors
///
/// Returns [`FrameError::Io`] if the write or flush fails.
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> Result<(), FrameError> {
    let bytes = encode_frame(frame);
    writer.write_all(&bytes)?;
    writer.flush()?;
    Ok(())
}

/// Reads exactly one frame from `reader`, enforcing `max_payload` on the
/// declared length.
///
/// # Errors
///
/// * [`FrameError::Torn`] — the stream ended cleanly mid-frame (EOF with
///   partial header or payload). An EOF on the very first header byte is
///   also reported as `Torn`; callers that poll for "clean end of stream"
///   should check for buffered data themselves before calling.
/// * [`FrameError::BadMagic`] / [`FrameError::UnsupportedVersion`] /
///   [`FrameError::UnknownType`] / [`FrameError::TooLarge`] — header
///   validation failures; the stream is out of sync and must be dropped.
/// * [`FrameError::Corrupt`] — payload checksum mismatch.
/// * [`FrameError::Io`] — any other socket failure.
pub fn read_frame(reader: &mut impl Read, max_payload: usize) -> Result<Frame, FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    read_exact_or_torn(reader, &mut header)?;
    let (frame_type, len, crc) = validate_header(&header, max_payload)?;
    let mut payload = vec![0u8; len];
    read_exact_or_torn(reader, &mut payload)?;
    if frame_crc(PROTOCOL_VERSION, frame_type.as_byte(), &payload) != crc {
        return Err(FrameError::Corrupt);
    }
    Ok(Frame {
        frame_type,
        payload,
    })
}

/// Outcome of decoding a frame from an in-memory buffer, mirroring
/// `mps_wal::Decoded`.
#[derive(Debug)]
pub enum Decoded {
    /// The buffer is empty — a clean end of stream.
    End,
    /// A complete, verified frame plus the number of bytes it consumed.
    Frame(Frame, usize),
    /// The buffer holds a prefix of a frame (header or payload cut
    /// short) — more bytes are needed, or the stream was torn here.
    Torn,
    /// The buffer starts with bytes that can never become a valid frame.
    Invalid(FrameError),
}

/// Decodes the first frame of `buf` without consuming a reader.
///
/// Distinguishes "need more bytes" ([`Decoded::Torn`]) from "never
/// valid" ([`Decoded::Invalid`]) so buffered readers and the property
/// tests can reason about truncation precisely.
#[must_use]
pub fn decode_frame(buf: &[u8], max_payload: usize) -> Decoded {
    if buf.is_empty() {
        return Decoded::End;
    }
    if buf.len() < FRAME_HEADER_BYTES {
        // A short buffer could still be a growing valid frame — unless the
        // bytes present already diverge from the only legal header prefix.
        let magic_len = buf.len().min(4);
        if buf[..magic_len] != MAGIC[..magic_len] {
            let mut seen = [0u8; 4];
            seen[..magic_len].copy_from_slice(&buf[..magic_len]);
            return Decoded::Invalid(FrameError::BadMagic(seen));
        }
        return Decoded::Torn;
    }
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header.copy_from_slice(&buf[..FRAME_HEADER_BYTES]);
    let (frame_type, len, crc) = match validate_header(&header, max_payload) {
        Ok(parts) => parts,
        Err(err) => return Decoded::Invalid(err),
    };
    let total = FRAME_HEADER_BYTES + len;
    if buf.len() < total {
        return Decoded::Torn;
    }
    let payload = &buf[FRAME_HEADER_BYTES..total];
    if frame_crc(PROTOCOL_VERSION, frame_type.as_byte(), payload) != crc {
        return Decoded::Invalid(FrameError::Corrupt);
    }
    Decoded::Frame(
        Frame {
            frame_type,
            payload: payload.to_vec(),
        },
        total,
    )
}

fn validate_header(
    header: &[u8; FRAME_HEADER_BYTES],
    max_payload: usize,
) -> Result<(FrameType, usize, u32), FrameError> {
    if header[..4] != MAGIC {
        let mut seen = [0u8; 4];
        seen.copy_from_slice(&header[..4]);
        return Err(FrameError::BadMagic(seen));
    }
    if header[4] != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(header[4]));
    }
    let frame_type = FrameType::from_byte(header[5]).ok_or(FrameError::UnknownType(header[5]))?;
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > max_payload {
        return Err(FrameError::TooLarge {
            declared: len,
            limit: max_payload,
        });
    }
    let crc = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
    Ok((frame_type, len, crc))
}

fn read_exact_or_torn(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    match reader.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(err) if err.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Torn),
        Err(err) => Err(FrameError::Io(err)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_io() {
        let frame = Frame::new(FrameType::Request, b"hello over the wire".to_vec());
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let back = read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = Frame::new(FrameType::Hello, Vec::new());
        let bytes = encode_frame(&frame);
        assert_eq!(bytes.len(), FRAME_HEADER_BYTES);
        match decode_frame(&bytes, DEFAULT_MAX_FRAME_BYTES) {
            Decoded::Frame(back, used) => {
                assert_eq!(back, frame);
                assert_eq!(used, FRAME_HEADER_BYTES);
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_torn_not_valid() {
        let bytes = encode_frame(&Frame::new(FrameType::Response, vec![7; 32]));
        for cut in 1..bytes.len() {
            match decode_frame(&bytes[..cut], DEFAULT_MAX_FRAME_BYTES) {
                Decoded::Torn | Decoded::Invalid(_) => {}
                other => panic!("cut at {cut} produced {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut bytes = encode_frame(&Frame::new(FrameType::Request, b"payload".to_vec()));
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            decode_frame(&bytes, DEFAULT_MAX_FRAME_BYTES),
            Decoded::Invalid(FrameError::Corrupt)
        ));
    }

    #[test]
    fn bad_magic_and_version_and_type_are_rejected() {
        let good = encode_frame(&Frame::new(FrameType::Hello, Vec::new()));

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_frame(&bad_magic, DEFAULT_MAX_FRAME_BYTES),
            Decoded::Invalid(FrameError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(matches!(
            decode_frame(&bad_version, DEFAULT_MAX_FRAME_BYTES),
            Decoded::Invalid(FrameError::UnsupportedVersion(99))
        ));

        let mut bad_type = good;
        bad_type[5] = 0;
        assert!(matches!(
            decode_frame(&bad_type, DEFAULT_MAX_FRAME_BYTES),
            Decoded::Invalid(FrameError::UnknownType(0))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::new(FrameType::Request, Vec::new()));
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes, DEFAULT_MAX_FRAME_BYTES),
            Decoded::Invalid(FrameError::TooLarge { .. })
        ));
        let mut cursor = io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn eof_mid_payload_reads_as_torn() {
        let bytes = encode_frame(&Frame::new(FrameType::Request, vec![1; 64]));
        let mut cursor = io::Cursor::new(&bytes[..bytes.len() - 10]);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Torn)
        ));
    }

    #[test]
    fn empty_buffer_is_clean_end() {
        assert!(matches!(
            decode_frame(&[], DEFAULT_MAX_FRAME_BYTES),
            Decoded::End
        ));
    }
}
