//! A threaded TCP server speaking the mps-net frame protocol.
//!
//! One [`WireServer`] owns a listening socket and serves a single
//! [`WireService`] — the broker and docstore services in
//! [`crate::broker_api`] and [`crate::docstore_api`], or anything else
//! that maps `(opcode, headers, body)` to result bytes. Each connection
//! gets its own thread and its own *bounded* receive buffer; connections
//! beyond [`ServerConfig::max_connections`] are **shed** at the
//! handshake with an explicit `HelloAck(shed)` (counted in
//! `net_server_shed_total`) rather than queued — backpressure is a
//! visible, attributable outcome, never a silent stall.

use crate::frame::{
    decode_frame, encode_frame, Decoded, Frame, FrameType, DEFAULT_MAX_FRAME_BYTES,
};
use crate::rpc::{RequestEnvelope, ResponseEnvelope, OP_SHUTDOWN, STATUS_BAD_REQUEST};
use crate::telemetry::telemetry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Handshake status: the connection is accepted.
pub const HELLO_OK: u8 = 0;
/// Handshake status: the server is at capacity and sheds the connection.
pub const HELLO_SHED: u8 = 1;
/// Handshake status: the client requested a protocol version the server
/// does not speak.
pub const HELLO_BAD_VERSION: u8 = 2;

/// An error a service maps to a non-zero response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Response status code (must be non-zero; the opcode table defines
    /// meanings).
    pub code: u8,
    /// Error-specific body bytes.
    pub payload: Vec<u8>,
}

impl ServiceError {
    /// Builds an error whose payload is a UTF-8 message.
    #[must_use]
    pub fn msg(code: u8, detail: &str) -> ServiceError {
        ServiceError {
            code: code.max(1),
            payload: detail.as_bytes().to_vec(),
        }
    }
}

/// The request handler a [`WireServer`] dispatches to.
///
/// Implementations must be thread-safe: every connection thread calls
/// `handle` concurrently.
pub trait WireService: Send + Sync + 'static {
    /// Maps one request to result bytes or a typed error.
    ///
    /// # Errors
    ///
    /// Returns a [`ServiceError`] that the server encodes as a non-zero
    /// response status with the error's payload as the body.
    fn handle(
        &self,
        opcode: u8,
        headers: &[(String, String)],
        body: &[u8],
    ) -> Result<Vec<u8>, ServiceError>;
}

/// Tunables for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections served concurrently before the handshake sheds.
    pub max_connections: usize,
    /// Ceiling on a single frame payload (bounds each connection's
    /// receive buffer).
    pub max_frame_bytes: usize,
    /// How long a connection thread blocks on the socket before
    /// re-checking the shutdown flag.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Duration::from_millis(200),
        }
    }
}

/// A running wire server; shuts down when dropped, on [`WireServer::shutdown`],
/// or when a client sends [`OP_SHUTDOWN`].
#[derive(Debug)]
pub struct WireServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the socket cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<dyn WireService>,
        config: ServerConfig,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || accept_loop(&listener, &service, &config, &shutdown))
        };
        Ok(WireServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the server has begun shutting down.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and waits for the accept loop and all
    /// connection threads to finish.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the server shuts down (via [`WireServer::shutdown`]
    /// from another thread, or a client's [`OP_SHUTDOWN`] request). This
    /// is what the daemon binaries call after printing their address.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrements the live-connection gauge when a connection thread exits,
/// however it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<dyn WireService>,
    config: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let slot = active.fetch_add(1, Ordering::SeqCst) + 1;
                let guard = ConnGuard(Arc::clone(&active));
                let shed = slot > config.max_connections;
                let service = Arc::clone(service);
                let config = config.clone();
                let shutdown = Arc::clone(shutdown);
                let handle = thread::spawn(move || {
                    let _guard = guard;
                    serve_connection(stream, shed, &*service, &config, &shutdown);
                });
                if let Ok(mut workers) = workers.lock() {
                    workers.retain(|w| !w.is_finished());
                    workers.push(handle);
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    let drained = match workers.lock() {
        Ok(mut workers) => workers.drain(..).collect::<Vec<_>>(),
        Err(poisoned) => poisoned.into_inner().drain(..).collect(),
    };
    for worker in drained {
        let _ = worker.join();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    shed: bool,
    service: &dyn WireService,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    let shared = telemetry();
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);

    // ---- handshake: Hello -> HelloAck(ok | shed | bad-version)
    let mut buf: Vec<u8> = Vec::new();
    let hello = match read_one_frame(&mut stream, &mut buf, config, shutdown) {
        Some(frame) if frame.frame_type == FrameType::Hello => frame,
        _ => return,
    };
    let requested = hello.payload.first().copied().unwrap_or(0);
    let status = if shed {
        shared.server_shed.inc();
        HELLO_SHED
    } else if requested != crate::frame::PROTOCOL_VERSION {
        HELLO_BAD_VERSION
    } else {
        shared.server_connections.inc();
        HELLO_OK
    };
    let ack = Frame::new(
        FrameType::HelloAck,
        vec![status, crate::frame::PROTOCOL_VERSION],
    );
    if stream.write_all(&encode_frame(&ack)).is_err() || stream.flush().is_err() {
        return;
    }
    if status != HELLO_OK {
        return;
    }

    // ---- request loop
    while !shutdown.load(Ordering::SeqCst) {
        let Some(frame) = read_one_frame(&mut stream, &mut buf, config, shutdown) else {
            return;
        };
        if frame.frame_type != FrameType::Request {
            return;
        }
        let response = match RequestEnvelope::decode(&frame.payload) {
            Ok(request) => {
                shared.server_requests.inc();
                if request.opcode == OP_SHUTDOWN {
                    let response = ResponseEnvelope::ok(request.correlation, Vec::new());
                    write_response(&mut stream, &response);
                    shutdown.store(true, Ordering::SeqCst);
                    return;
                }
                match service.handle(request.opcode, &request.headers, &request.body) {
                    Ok(body) => ResponseEnvelope::ok(request.correlation, body),
                    Err(err) => {
                        shared.server_errors.inc();
                        ResponseEnvelope::error(request.correlation, err.code, err.payload)
                    }
                }
            }
            Err(err) => {
                shared.server_errors.inc();
                ResponseEnvelope::error(0, STATUS_BAD_REQUEST, err.to_string().into_bytes())
            }
        };
        if !write_response(&mut stream, &response) {
            return;
        }
    }
}

fn write_response(stream: &mut TcpStream, response: &ResponseEnvelope) -> bool {
    let frame = Frame::new(FrameType::Response, response.encode());
    stream.write_all(&encode_frame(&frame)).is_ok() && stream.flush().is_ok()
}

/// Reads one complete frame through the connection's bounded buffer.
/// Returns `None` on clean close, torn/corrupt input (counted), socket
/// error, or shutdown.
fn read_one_frame(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> Option<Frame> {
    let shared = telemetry();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match decode_frame(buf, config.max_frame_bytes) {
            Decoded::Frame(frame, used) => {
                buf.drain(..used);
                return Some(frame);
            }
            Decoded::Invalid(_) => {
                shared.frames_corrupt.inc();
                return None;
            }
            Decoded::End | Decoded::Torn => {}
        }
        if shutdown.load(Ordering::SeqCst) {
            return None;
        }
        // The buffer is bounded by max_frame_bytes plus one read chunk:
        // decode_frame rejects oversized declared lengths before we ever
        // accumulate them.
        match stream.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    // The peer vanished mid-frame: a torn frame, counted
                    // exactly like a torn WAL tail.
                    shared.frames_corrupt.inc();
                }
                return None;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, WireConn};

    #[derive(Debug)]
    struct Echo;

    impl WireService for Echo {
        fn handle(
            &self,
            opcode: u8,
            headers: &[(String, String)],
            body: &[u8],
        ) -> Result<Vec<u8>, ServiceError> {
            if opcode == 9 {
                return Err(ServiceError::msg(42, "boom"));
            }
            let mut out = body.to_vec();
            out.push(headers.len() as u8);
            Ok(out)
        }
    }

    fn start(config: ServerConfig) -> WireServer {
        WireServer::bind("127.0.0.1:0", Arc::new(Echo), config).unwrap()
    }

    #[test]
    fn echo_round_trip_over_tcp() {
        let mut server = start(ServerConfig::default());
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        let reply = conn
            .call(3, &[("x-k".into(), "v".into())], b"ping")
            .unwrap();
        assert_eq!(reply, b"ping\x01");
        server.shutdown();
    }

    #[test]
    fn service_errors_carry_code_and_payload() {
        let mut server = start(ServerConfig::default());
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        let err = conn.call(9, &[], b"").unwrap_err();
        match err {
            crate::client::NetError::Remote { code, payload } => {
                assert_eq!(code, 42);
                assert_eq!(payload, b"boom");
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn connections_beyond_capacity_are_shed() {
        let mut server = start(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        });
        let shed_before = mps_telemetry::Registry::global()
            .counter_value("net_server_shed_total")
            .unwrap_or(0);
        let _held = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        let second = WireConn::connect(server.local_addr(), &ClientConfig::default());
        assert!(matches!(second, Err(crate::client::NetError::Shed)));
        let shed_after = mps_telemetry::Registry::global()
            .counter_value("net_server_shed_total")
            .unwrap_or(0);
        assert!(shed_after > shed_before, "shed must be counted");
        server.shutdown();
    }

    #[test]
    fn shutdown_opcode_stops_the_server() {
        let server = start(ServerConfig::default());
        let addr = server.local_addr();
        let mut conn = WireConn::connect(addr, &ClientConfig::default()).unwrap();
        conn.call(OP_SHUTDOWN, &[], b"").unwrap();
        // join returns promptly because the shutdown flag is set.
        server.join();
        assert!(WireConn::connect(addr, &ClientConfig::default()).is_err());
    }

    #[test]
    fn garbage_bytes_drop_the_connection_without_killing_the_server() {
        let mut server = start(ServerConfig::default());
        {
            let mut raw = TcpStream::connect(server.local_addr()).unwrap();
            raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let mut sink = Vec::new();
            let _ = raw.read_to_end(&mut sink);
        }
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        assert_eq!(conn.call(1, &[], b"ok").unwrap(), b"ok\x00");
        server.shutdown();
    }
}
