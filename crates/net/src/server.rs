//! A threaded TCP server speaking the mps-net frame protocol.
//!
//! One [`WireServer`] owns a listening socket and serves a single
//! [`WireService`] — the broker and docstore services in
//! [`crate::broker_api`] and [`crate::docstore_api`], or anything else
//! that maps `(opcode, headers, body)` to result bytes. Each connection
//! gets its own thread and its own *bounded* receive buffer; connections
//! beyond [`ServerConfig::max_connections`] are **shed** at the
//! handshake with an explicit `HelloAck(shed)` (counted in
//! `net_server_shed_total`) rather than queued — backpressure is a
//! visible, attributable outcome, never a silent stall.
//!
//! Every server also carries the **observability plane** (see
//! [`crate::admin`]): per-RPC latency histograms and error counters
//! (`net_server_rpc_seconds{opcode=…}` /
//! `net_server_rpc_errors_total{opcode=…,code=…}`), a bounded
//! slow-request ring, and — unless [`ServerConfig::admin`] is switched
//! off — the remote admin opcodes `OP_METRICS`, `OP_HEALTH`,
//! `OP_FLIGHT_DRAIN` and `OP_SLOW_RPCS`.

use crate::admin::{
    admin_opcode_name, health_json, SlowRpcRing, ADMIN_OPCODE_MIN, OP_FLIGHT_DRAIN, OP_HEALTH,
    OP_METRICS, OP_SLOW_RPCS,
};
use crate::frame::{
    decode_frame, encode_frame, Decoded, Frame, FrameType, DEFAULT_MAX_FRAME_BYTES,
};
use crate::rpc::{RequestEnvelope, ResponseEnvelope, OP_SHUTDOWN, STATUS_BAD_REQUEST, STATUS_OK};
use crate::telemetry::{rpc_errors, rpc_seconds, telemetry};
use mps_telemetry::trace::FlightRecorder;
use mps_telemetry::{Histogram, Registry};
use std::borrow::Cow;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Handshake status: the connection is accepted.
pub const HELLO_OK: u8 = 0;
/// Handshake status: the server is at capacity and sheds the connection.
pub const HELLO_SHED: u8 = 1;
/// Handshake status: the client requested a protocol version the server
/// does not speak.
pub const HELLO_BAD_VERSION: u8 = 2;

/// An error a service maps to a non-zero response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Response status code (must be non-zero; the opcode table defines
    /// meanings).
    pub code: u8,
    /// Error-specific body bytes.
    pub payload: Vec<u8>,
}

impl ServiceError {
    /// Builds an error whose payload is a UTF-8 message.
    #[must_use]
    pub fn msg(code: u8, detail: &str) -> ServiceError {
        ServiceError {
            code: code.max(1),
            payload: detail.as_bytes().to_vec(),
        }
    }
}

/// The request handler a [`WireServer`] dispatches to.
///
/// Implementations must be thread-safe: every connection thread calls
/// `handle` concurrently.
pub trait WireService: Send + Sync + 'static {
    /// Maps one request to result bytes or a typed error.
    ///
    /// # Errors
    ///
    /// Returns a [`ServiceError`] that the server encodes as a non-zero
    /// response status with the error's payload as the body.
    fn handle(
        &self,
        opcode: u8,
        headers: &[(String, String)],
        body: &[u8],
    ) -> Result<Vec<u8>, ServiceError>;

    /// The service's role name, reported in the `OP_HEALTH` body (e.g.
    /// `"broker"`, `"docstore"`).
    fn role(&self) -> &'static str {
        "service"
    }

    /// The mnemonic for a service opcode, used as the `opcode` label of
    /// the per-RPC telemetry series and in slow-request reports. `None`
    /// falls back to the decimal opcode.
    fn opcode_name(&self, opcode: u8) -> Option<&'static str> {
        let _ = opcode;
        None
    }
}

/// Tunables for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections served concurrently before the handshake sheds.
    pub max_connections: usize,
    /// Ceiling on a single frame payload (bounds each connection's
    /// receive buffer).
    pub max_frame_bytes: usize,
    /// How long a connection thread blocks on the socket before
    /// re-checking the shutdown flag.
    pub read_timeout: Duration,
    /// This process's name in the fleet, echoed by `OP_HEALTH` and used
    /// as the `instance` label when a scraper merges registries.
    pub instance: String,
    /// Record per-opcode latency histograms and error counters
    /// (`net_server_rpc_seconds` / `net_server_rpc_errors_total`). The
    /// benchmark's attributable-numbers mode switches this off.
    pub rpc_telemetry: bool,
    /// Serve the admin opcodes ([`crate::admin`]). Off, admin requests
    /// are answered with a bad-request status instead.
    pub admin: bool,
    /// Minimum service time for a request to enter the slow-request
    /// ring. The zero default retains every request (the ring is small
    /// and bounded), so `OP_SLOW_RPCS` ranks the recent past even on a
    /// healthy server.
    pub slow_rpc_threshold: Duration,
    /// Capacity of the slow-request ring (drop-oldest beyond this).
    pub slow_rpc_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Duration::from_millis(200),
            instance: "mps".to_string(),
            rpc_telemetry: true,
            admin: true,
            slow_rpc_threshold: Duration::ZERO,
            slow_rpc_capacity: 256,
        }
    }
}

/// State shared by the accept loop, every connection thread, and the
/// admin plane: the live-connection count the readiness verdict is made
/// from, the start instant uptime is measured from, and the
/// slow-request ring `OP_SLOW_RPCS` drains.
struct ServerShared {
    config: ServerConfig,
    service: Arc<dyn WireService>,
    active: AtomicUsize,
    started: Instant,
    slow: SlowRpcRing,
}

impl std::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerShared")
            .field("config", &self.config)
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

/// A running wire server; shuts down when dropped, on [`WireServer::shutdown`],
/// or when a client sends [`OP_SHUTDOWN`].
#[derive(Debug)]
pub struct WireServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the socket cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<dyn WireService>,
        config: ServerConfig,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ServerShared {
            active: AtomicUsize::new(0),
            started: Instant::now(),
            slow: SlowRpcRing::new(config.slow_rpc_capacity, config.slow_rpc_threshold),
            service,
            config,
        });
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || accept_loop(&listener, &shared, &shutdown))
        };
        Ok(WireServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the server has begun shutting down.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and waits for the accept loop and all
    /// connection threads to finish.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the server shuts down (via [`WireServer::shutdown`]
    /// from another thread, or a client's [`OP_SHUTDOWN`] request). This
    /// is what the daemon binaries call after printing their address.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrements the live-connection count when a connection thread exits,
/// however it exits.
struct ConnGuard(Arc<ServerShared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>, shutdown: &Arc<AtomicBool>) {
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let slot = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
                let guard = ConnGuard(Arc::clone(shared));
                let shed = slot > shared.config.max_connections;
                let shared = Arc::clone(shared);
                let shutdown = Arc::clone(shutdown);
                let handle = thread::spawn(move || {
                    let _guard = guard;
                    serve_connection(stream, shed, &shared, &shutdown);
                });
                if let Ok(mut workers) = workers.lock() {
                    workers.retain(|w| !w.is_finished());
                    workers.push(handle);
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    let drained = match workers.lock() {
        Ok(mut workers) => workers.drain(..).collect::<Vec<_>>(),
        Err(poisoned) => poisoned.into_inner().drain(..).collect(),
    };
    for worker in drained {
        let _ = worker.join();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    shed: bool,
    shared: &ServerShared,
    shutdown: &AtomicBool,
) {
    let counters = telemetry();
    // Per-connection handle cache: the hot path pays the registry's
    // name+label lookup once per (connection, opcode), not per request.
    let mut seconds_cache: [Option<Histogram>; 256] = std::array::from_fn(|_| None);
    let config = &shared.config;
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);

    // ---- handshake: Hello -> HelloAck(ok | shed | bad-version)
    let mut buf: Vec<u8> = Vec::new();
    let hello = match read_one_frame(&mut stream, &mut buf, config, shutdown) {
        Some(frame) if frame.frame_type == FrameType::Hello => frame,
        _ => return,
    };
    let requested = hello.payload.first().copied().unwrap_or(0);
    let status = if shed {
        counters.server_shed.inc();
        HELLO_SHED
    } else if requested != crate::frame::PROTOCOL_VERSION {
        HELLO_BAD_VERSION
    } else {
        counters.server_connections.inc();
        HELLO_OK
    };
    let ack = Frame::new(
        FrameType::HelloAck,
        vec![status, crate::frame::PROTOCOL_VERSION],
    );
    if stream.write_all(&encode_frame(&ack)).is_err() || stream.flush().is_err() {
        return;
    }
    if status != HELLO_OK {
        return;
    }

    // ---- request loop
    while !shutdown.load(Ordering::SeqCst) {
        let Some(frame) = read_one_frame(&mut stream, &mut buf, config, shutdown) else {
            return;
        };
        if frame.frame_type != FrameType::Request {
            return;
        }
        let response = match RequestEnvelope::decode(&frame.payload) {
            Ok(request) => {
                counters.server_requests.inc();
                let started = Instant::now();
                let label = opcode_label(&*shared.service, request.opcode);
                if request.opcode == OP_SHUTDOWN {
                    let response = ResponseEnvelope::ok(request.correlation, Vec::new());
                    finish_rpc(
                        shared,
                        &mut seconds_cache,
                        request.opcode,
                        &label,
                        started.elapsed(),
                        STATUS_OK,
                    );
                    write_response(&mut stream, &response);
                    shutdown.store(true, Ordering::SeqCst);
                    return;
                }
                let result = if request.opcode >= ADMIN_OPCODE_MIN {
                    handle_admin(shared, request.opcode, &request.body)
                } else {
                    shared
                        .service
                        .handle(request.opcode, &request.headers, &request.body)
                };
                let (response, status) = match result {
                    Ok(body) => (ResponseEnvelope::ok(request.correlation, body), STATUS_OK),
                    Err(err) => {
                        counters.server_errors.inc();
                        let code = err.code;
                        (
                            ResponseEnvelope::error(request.correlation, err.code, err.payload),
                            code,
                        )
                    }
                };
                finish_rpc(
                    shared,
                    &mut seconds_cache,
                    request.opcode,
                    &label,
                    started.elapsed(),
                    status,
                );
                response
            }
            Err(err) => {
                counters.server_errors.inc();
                if config.rpc_telemetry {
                    rpc_errors("invalid", STATUS_BAD_REQUEST).inc();
                }
                ResponseEnvelope::error(0, STATUS_BAD_REQUEST, err.to_string().into_bytes())
            }
        };
        if !write_response(&mut stream, &response) {
            return;
        }
    }
}

/// The `opcode` label for the per-RPC series: the admin mnemonic, the
/// service's mnemonic, or the decimal opcode.
fn opcode_label(service: &dyn WireService, opcode: u8) -> Cow<'static, str> {
    if let Some(name) = admin_opcode_name(opcode) {
        return Cow::Borrowed(name);
    }
    match service.opcode_name(opcode) {
        Some(name) => Cow::Borrowed(name),
        None => Cow::Owned(opcode.to_string()),
    }
}

/// Completes one request's telemetry: latency histogram, error counter
/// (non-OK statuses only), and the slow-request ring.
fn finish_rpc(
    shared: &ServerShared,
    seconds_cache: &mut [Option<Histogram>; 256],
    opcode: u8,
    label: &str,
    elapsed: Duration,
    status: u8,
) {
    if shared.config.rpc_telemetry {
        seconds_cache[opcode as usize]
            .get_or_insert_with(|| rpc_seconds(label))
            .observe(elapsed.as_secs_f64());
        if status != STATUS_OK {
            rpc_errors(label, status).inc();
        }
    }
    shared.slow.observe(opcode, label, elapsed, status);
}

/// Serves one admin-band request (see [`crate::admin`]).
fn handle_admin(shared: &ServerShared, opcode: u8, body: &[u8]) -> Result<Vec<u8>, ServiceError> {
    if !shared.config.admin {
        return Err(ServiceError::msg(
            STATUS_BAD_REQUEST,
            "admin opcodes are disabled on this server",
        ));
    }
    match opcode {
        OP_METRICS => Ok(Registry::global().render_text().into_bytes()),
        OP_HEALTH => {
            let active = shared.active.load(Ordering::SeqCst);
            let ready = active < shared.config.max_connections;
            Ok(health_json(
                &shared.config.instance,
                shared.service.role(),
                ready,
                active,
                shared.config.max_connections,
                shared.started.elapsed(),
            )
            .into_bytes())
        }
        OP_FLIGHT_DRAIN => {
            let recorder = FlightRecorder::global();
            let jsonl = recorder.export_jsonl();
            if body.first() == Some(&1) {
                recorder.clear();
            }
            Ok(jsonl.into_bytes())
        }
        OP_SLOW_RPCS => {
            let k = match body.first().copied() {
                None | Some(0) => 10,
                Some(k) => k as usize,
            };
            Ok(shared.slow.to_json(k).into_bytes())
        }
        other => Err(ServiceError::msg(
            STATUS_BAD_REQUEST,
            &format!("unknown admin opcode {other}"),
        )),
    }
}

fn write_response(stream: &mut TcpStream, response: &ResponseEnvelope) -> bool {
    let frame = Frame::new(FrameType::Response, response.encode());
    stream.write_all(&encode_frame(&frame)).is_ok() && stream.flush().is_ok()
}

/// Reads one complete frame through the connection's bounded buffer.
/// Returns `None` on clean close, torn/corrupt input (counted), socket
/// error, or shutdown.
fn read_one_frame(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> Option<Frame> {
    let shared = telemetry();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match decode_frame(buf, config.max_frame_bytes) {
            Decoded::Frame(frame, used) => {
                buf.drain(..used);
                return Some(frame);
            }
            Decoded::Invalid(_) => {
                shared.frames_corrupt.inc();
                return None;
            }
            Decoded::End | Decoded::Torn => {}
        }
        if shutdown.load(Ordering::SeqCst) {
            return None;
        }
        // The buffer is bounded by max_frame_bytes plus one read chunk:
        // decode_frame rejects oversized declared lengths before we ever
        // accumulate them.
        match stream.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    // The peer vanished mid-frame: a torn frame, counted
                    // exactly like a torn WAL tail.
                    shared.frames_corrupt.inc();
                }
                return None;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, WireConn};

    #[derive(Debug)]
    struct Echo;

    impl WireService for Echo {
        fn handle(
            &self,
            opcode: u8,
            headers: &[(String, String)],
            body: &[u8],
        ) -> Result<Vec<u8>, ServiceError> {
            if opcode == 9 {
                return Err(ServiceError::msg(42, "boom"));
            }
            let mut out = body.to_vec();
            out.push(headers.len() as u8);
            Ok(out)
        }

        fn role(&self) -> &'static str {
            "echo"
        }

        fn opcode_name(&self, opcode: u8) -> Option<&'static str> {
            (opcode == 3).then_some("ECHO")
        }
    }

    fn start(config: ServerConfig) -> WireServer {
        WireServer::bind("127.0.0.1:0", Arc::new(Echo), config).unwrap()
    }

    #[test]
    fn echo_round_trip_over_tcp() {
        let mut server = start(ServerConfig::default());
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        let reply = conn
            .call(3, &[("x-k".into(), "v".into())], b"ping")
            .unwrap();
        assert_eq!(reply, b"ping\x01");
        server.shutdown();
    }

    #[test]
    fn service_errors_carry_code_and_payload() {
        let mut server = start(ServerConfig::default());
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        let err = conn.call(9, &[], b"").unwrap_err();
        match err {
            crate::client::NetError::Remote { code, payload } => {
                assert_eq!(code, 42);
                assert_eq!(payload, b"boom");
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn connections_beyond_capacity_are_shed() {
        let mut server = start(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        });
        let shed_before = mps_telemetry::Registry::global()
            .counter_value("net_server_shed_total")
            .unwrap_or(0);
        let _held = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        let second = WireConn::connect(server.local_addr(), &ClientConfig::default());
        assert!(matches!(second, Err(crate::client::NetError::Shed)));
        let shed_after = mps_telemetry::Registry::global()
            .counter_value("net_server_shed_total")
            .unwrap_or(0);
        assert!(shed_after > shed_before, "shed must be counted");
        server.shutdown();
    }

    #[test]
    fn shutdown_opcode_stops_the_server() {
        let server = start(ServerConfig::default());
        let addr = server.local_addr();
        let mut conn = WireConn::connect(addr, &ClientConfig::default()).unwrap();
        conn.call(OP_SHUTDOWN, &[], b"").unwrap();
        // join returns promptly because the shutdown flag is set.
        server.join();
        assert!(WireConn::connect(addr, &ClientConfig::default()).is_err());
    }

    #[test]
    fn metrics_opcode_returns_prometheus_text() {
        let mut server = start(ServerConfig::default());
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        conn.call(3, &[], b"warm").unwrap();
        let body = conn.call(OP_METRICS, &[], b"").unwrap();
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("# TYPE net_server_requests_total counter"));
        assert!(text.contains("net_server_rpc_seconds_bucket{"), "{text}");
        assert!(text.contains("le=\"+Inf\""), "{text}");
        server.shutdown();
    }

    #[test]
    fn health_opcode_reports_identity_and_readiness() {
        let mut server = start(ServerConfig {
            instance: "probe-1".to_string(),
            ..ServerConfig::default()
        });
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        let body = conn.call(OP_HEALTH, &[], b"").unwrap();
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"instance\":\"probe-1\""), "{text}");
        assert!(text.contains("\"role\":\"echo\""), "{text}");
        assert!(text.contains("\"ready\":true"), "{text}");
        server.shutdown();
    }

    #[test]
    fn slow_rpcs_opcode_ranks_the_retained_window() {
        let mut server = start(ServerConfig::default());
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        conn.call(3, &[], b"one").unwrap();
        let _ = conn.call(9, &[], b"");
        let body = conn.call(OP_SLOW_RPCS, &[], &[5]).unwrap();
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"slow\":[{"), "{text}");
        assert!(text.contains("\"name\":\"ECHO\""), "named opcode: {text}");
        assert!(text.contains("\"name\":\"9\""), "decimal fallback: {text}");
        assert!(text.contains("\"status\":42"), "error status kept: {text}");
        server.shutdown();
    }

    #[test]
    fn flight_drain_opcode_exports_and_optionally_clears() {
        use mps_telemetry::trace::{Hop, SpanRecord, TraceId};
        let mut server = start(ServerConfig::default());
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        let trace = TraceId::from_raw(0xfeed_beef_0042);
        FlightRecorder::global().record(SpanRecord::new(trace, Hop::Sensed, 7));
        // Peek (empty body) keeps the ring intact …
        let peek = String::from_utf8(conn.call(OP_FLIGHT_DRAIN, &[], b"").unwrap()).unwrap();
        assert!(peek.contains(&format!("{trace}")), "{peek}");
        // … drain (body = [1]) returns the spans and clears the ring.
        let drain = String::from_utf8(conn.call(OP_FLIGHT_DRAIN, &[], &[1]).unwrap()).unwrap();
        assert!(drain.contains(&format!("{trace}")));
        let after = String::from_utf8(conn.call(OP_FLIGHT_DRAIN, &[], b"").unwrap()).unwrap();
        assert!(!after.contains(&format!("{trace}")), "{after}");
        server.shutdown();
    }

    #[test]
    fn admin_can_be_disabled() {
        let mut server = start(ServerConfig {
            admin: false,
            ..ServerConfig::default()
        });
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        let err = conn.call(OP_METRICS, &[], b"").unwrap_err();
        assert!(matches!(
            err,
            crate::client::NetError::Remote {
                code: STATUS_BAD_REQUEST,
                ..
            }
        ));
        // Service opcodes still work.
        assert_eq!(conn.call(3, &[], b"up").unwrap(), b"up\x00");
        server.shutdown();
    }

    #[test]
    fn per_rpc_series_record_latency_and_errors() {
        let registry = mps_telemetry::Registry::global();
        let hist_before = registry
            .histogram_count("net_server_rpc_seconds")
            .unwrap_or(0);
        let err_before = registry
            .counter_value_labeled(
                "net_server_rpc_errors_total",
                &[("code", "42"), ("opcode", "9")],
            )
            .unwrap_or(0);
        let mut server = start(ServerConfig::default());
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        conn.call(3, &[], b"tick").unwrap();
        let _ = conn.call(9, &[], b"");
        let hist_after = registry.histogram_count("net_server_rpc_seconds").unwrap();
        let err_after = registry
            .counter_value_labeled(
                "net_server_rpc_errors_total",
                &[("code", "42"), ("opcode", "9")],
            )
            .unwrap();
        assert!(hist_after >= hist_before + 2, "both RPCs timed");
        assert!(err_after > err_before, "error counted under opcode+code");
        server.shutdown();
    }

    #[derive(Debug)]
    struct Quiet;

    impl WireService for Quiet {
        fn handle(
            &self,
            _opcode: u8,
            _headers: &[(String, String)],
            body: &[u8],
        ) -> Result<Vec<u8>, ServiceError> {
            Ok(body.to_vec())
        }

        fn opcode_name(&self, opcode: u8) -> Option<&'static str> {
            (opcode == 7).then_some("QUIETECHO")
        }
    }

    #[test]
    fn rpc_telemetry_can_be_disabled() {
        let mut server = WireServer::bind(
            "127.0.0.1:0",
            Arc::new(Quiet),
            ServerConfig {
                rpc_telemetry: false,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        conn.call(7, &[], b"quiet").unwrap();
        // The QUIETECHO label is unique to this test, so its absence from
        // the registry proves the quiet path registered nothing.
        let text = mps_telemetry::Registry::global().render_text();
        assert!(!text.contains("QUIETECHO"), "no per-RPC series registered");
        // The slow ring still works: it feeds OP_SLOW_RPCS, not the registry.
        let body = conn.call(OP_SLOW_RPCS, &[], b"").unwrap();
        assert!(String::from_utf8(body)
            .unwrap()
            .contains("\"name\":\"QUIETECHO\""));
        server.shutdown();
    }

    #[test]
    fn garbage_bytes_drop_the_connection_without_killing_the_server() {
        let mut server = start(ServerConfig::default());
        {
            let mut raw = TcpStream::connect(server.local_addr()).unwrap();
            raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let mut sink = Vec::new();
            let _ = raw.read_to_end(&mut sink);
        }
        let mut conn = WireConn::connect(server.local_addr(), &ClientConfig::default()).unwrap();
        assert_eq!(conn.call(1, &[], b"ok").unwrap(), b"ok\x00");
        server.shutdown();
    }
}
