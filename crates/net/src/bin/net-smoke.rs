//! `net-smoke` — multi-process smoke driver for the wire protocol.
//!
//! ```text
//! net-smoke --broker ADDR --docstore ADDR [--shutdown | --shutdown-only]
//! ```
//!
//! Connects to a running `mps-brokerd` and `mps-docstored`, pushes one
//! observation through a declare → publish → consume → ack cycle (with
//! a trace header riding the envelope), writes and reads back documents
//! on the store, and — with `--shutdown` — asks both servers to exit
//! cleanly. `--shutdown-only` skips the traffic and just requests the
//! shutdowns, so a scrape step (`xtask obs`) can run between the smoke
//! traffic and the teardown. Exits non-zero with a diagnostic on stderr
//! at the first divergence, so CI can gate on it. See
//! `docs/DEPLOYMENT.md`.

use mps_broker::{BrokerTransport, ExchangeType, Message};
use mps_docstore::{DocstoreTransport, Filter};
use mps_net::broker_api::RemoteBroker;
use mps_net::client::{ClientConfig, ClientPool};
use mps_net::docstore_api::RemoteStore;
use mps_net::rpc::OP_SHUTDOWN;
use mps_types::headers::TRACE_HEADER;
use serde_json::json;
use std::process::ExitCode;

struct Flags {
    broker: String,
    docstore: String,
    shutdown: bool,
    shutdown_only: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut broker = None;
    let mut docstore = None;
    let mut shutdown = false;
    let mut shutdown_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--broker" => broker = Some(value_for("--broker")?),
            "--docstore" => docstore = Some(value_for("--docstore")?),
            "--shutdown" => shutdown = true,
            "--shutdown-only" => shutdown_only = true,
            "--help" | "-h" => {
                return Err(
                    "usage: net-smoke --broker ADDR --docstore ADDR [--shutdown | --shutdown-only]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Flags {
        broker: broker.ok_or("--broker ADDR is required")?,
        docstore: docstore.ok_or("--docstore ADDR is required")?,
        shutdown,
        shutdown_only,
    })
}

fn check(condition: bool, what: &str) -> Result<(), String> {
    if condition {
        Ok(())
    } else {
        Err(format!("check failed: {what}"))
    }
}

fn smoke_broker(addr: &str) -> Result<(), String> {
    let broker = RemoteBroker::connect(addr, ClientConfig::default());
    broker
        .declare_exchange("smoke", ExchangeType::Topic)
        .map_err(|e| format!("declare_exchange: {e}"))?;
    broker
        .declare_queue("smoke.q")
        .map_err(|e| format!("declare_queue: {e}"))?;
    broker
        .bind_queue("smoke", "smoke.q", "obs.#")
        .map_err(|e| format!("bind_queue: {e}"))?;

    let message = Message::new(
        "obs.paris.noise"
            .parse()
            .map_err(|_| "routing key rejected".to_string())?,
        br#"{"spl": 61.5}"#.to_vec(),
    )
    .with_header(TRACE_HEADER, "smoke-trace-1");
    let fanout = broker
        .publish_message("smoke", message)
        .map_err(|e| format!("publish_message: {e}"))?;
    check(fanout == 1, "publish reached exactly one queue")?;
    check(
        broker.queue_depth("smoke.q").unwrap_or(0) == 1,
        "queue depth is 1 after publish",
    )?;

    let deliveries = broker
        .consume("smoke.q", 8)
        .map_err(|e| format!("consume: {e}"))?;
    check(deliveries.len() == 1, "consumed exactly one delivery")?;
    let delivery = &deliveries[0];
    check(
        delivery.payload() == br#"{"spl": 61.5}"#,
        "payload survived the round trip",
    )?;
    check(
        delivery.message.header(TRACE_HEADER) == Some("smoke-trace-1"),
        "trace header survived the round trip",
    )?;
    broker
        .ack("smoke.q", delivery.tag)
        .map_err(|e| format!("ack: {e}"))?;
    check(
        broker.queue_depth("smoke.q").unwrap_or(1) == 0,
        "queue drained after ack",
    )?;
    eprintln!("net-smoke: broker at {addr} ok");
    Ok(())
}

fn smoke_docstore(addr: &str) -> Result<(), String> {
    let store = RemoteStore::connect(addr, ClientConfig::default());
    let coll = store.collection("smoke");
    for (city, spl) in [("paris", 61.5), ("lyon", 48.0), ("brest", 72.25)] {
        coll.insert_one(json!({"city": city, "spl": spl}))
            .map_err(|e| format!("insert_one: {e}"))?;
    }
    check(coll.len() == 3, "three documents stored")?;
    let loud = coll
        .find(
            &Filter::parse(&json!({"spl": {"$gte": 60}}))
                .map_err(|e| format!("filter parse: {e}"))?,
        )
        .map_err(|e| format!("find: {e}"))?;
    check(loud.len() == 2, "two documents above 60 dB")?;
    check(
        store.has_collection("smoke"),
        "collection is visible store-wide",
    )?;
    store
        .drop_collection("smoke")
        .map_err(|e| format!("drop_collection: {e}"))?;
    check(!store.has_collection("smoke"), "collection gone after drop")?;
    eprintln!("net-smoke: docstore at {addr} ok");
    Ok(())
}

fn request_shutdown(addr: &str, who: &str) -> Result<(), String> {
    let pool = ClientPool::new(addr, ClientConfig::default());
    pool.call(OP_SHUTDOWN, &[], b"")
        .map_err(|e| format!("{who} shutdown: {e}"))?;
    eprintln!("net-smoke: {who} at {addr} acknowledged shutdown");
    Ok(())
}

fn run(flags: &Flags) -> Result<(), String> {
    if !flags.shutdown_only {
        smoke_broker(&flags.broker)?;
        smoke_docstore(&flags.docstore)?;
    }
    if flags.shutdown || flags.shutdown_only {
        request_shutdown(&flags.broker, "broker")?;
        request_shutdown(&flags.docstore, "docstore")?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&flags) {
        Ok(()) => {
            eprintln!("net-smoke: all checks passed");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("net-smoke: {message}");
            ExitCode::FAILURE
        }
    }
}
