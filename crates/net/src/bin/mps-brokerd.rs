//! `mps-brokerd` — the message broker as a standalone process.
//!
//! ```text
//! mps-brokerd [--listen ADDR] [--wal-dir DIR] [--max-connections N]
//!             [--instance NAME] [--shards N]
//! ```
//!
//! Serves an `mps-broker` instance over the mps-net wire protocol.
//! With `--wal-dir` the broker write-ahead-logs every queue transition
//! to that directory and replays it on restart; without it the broker
//! is in-memory. `--shards N` (default 1) serves a key-hash-partitioned
//! `ShardedBroker` instead of a single broker — same wire protocol,
//! N-way internal parallelism; with `--wal-dir` each shard logs to its
//! own `shard-{i}` subdirectory. `--instance` names this process in the
//! fleet: the admin health report echoes it and `xtask obs` labels
//! merged metrics with it. Prints the bound address on stderr
//! (`listening on ...`) so wrappers can scrape it, and exits cleanly
//! when a client sends the shutdown opcode. See `docs/DEPLOYMENT.md`,
//! `docs/SHARDING.md` and `docs/OBSERVABILITY.md`.

use mps_broker::{Broker, BrokerDurabilityConfig, BrokerTransport, ShardedBroker};
use mps_net::broker_api::BrokerService;
use mps_net::server::{ServerConfig, WireServer};
use std::process::ExitCode;
use std::sync::Arc;

struct Flags {
    listen: String,
    wal_dir: Option<String>,
    max_connections: usize,
    instance: String,
    shards: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        listen: "127.0.0.1:7401".to_string(),
        wal_dir: None,
        max_connections: ServerConfig::default().max_connections,
        instance: "brokerd".to_string(),
        shards: 1,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" => flags.listen = value_for("--listen")?,
            "--wal-dir" => flags.wal_dir = Some(value_for("--wal-dir")?),
            "--max-connections" => {
                flags.max_connections = value_for("--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections needs an integer".to_string())?;
            }
            "--instance" => flags.instance = value_for("--instance")?,
            "--shards" => {
                flags.shards = value_for("--shards")?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| "--shards needs an integer >= 1".to_string())?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: mps-brokerd [--listen ADDR] [--wal-dir DIR] [--max-connections N] \
                     [--instance NAME] [--shards N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(flags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let broker: Arc<dyn BrokerTransport> = if flags.shards > 1 {
        match &flags.wal_dir {
            None => Arc::new(ShardedBroker::new(flags.shards)),
            Some(dir) => {
                match ShardedBroker::open_durable(flags.shards, BrokerDurabilityConfig::new(dir)) {
                    Ok(broker) => Arc::new(broker),
                    Err(err) => {
                        eprintln!(
                            "cannot open durable {}-shard broker in {dir}: {err}",
                            flags.shards
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    } else {
        match &flags.wal_dir {
            None => Arc::new(Broker::new()),
            Some(dir) => match Broker::open_durable(BrokerDurabilityConfig::new(dir)) {
                Ok(broker) => Arc::new(broker),
                Err(err) => {
                    eprintln!("cannot open durable broker in {dir}: {err}");
                    return ExitCode::FAILURE;
                }
            },
        }
    };
    let config = ServerConfig {
        max_connections: flags.max_connections,
        instance: flags.instance,
        ..ServerConfig::default()
    };
    let server =
        match WireServer::bind(&*flags.listen, Arc::new(BrokerService::new(broker)), config) {
            Ok(server) => server,
            Err(err) => {
                eprintln!("cannot bind {}: {err}", flags.listen);
                return ExitCode::FAILURE;
            }
        };
    eprintln!("mps-brokerd listening on {}", server.local_addr());
    server.join();
    eprintln!("mps-brokerd shut down cleanly");
    ExitCode::SUCCESS
}
