//! `mps-docstored` — the document store as a standalone process.
//!
//! ```text
//! mps-docstored [--listen ADDR] [--wal-dir DIR] [--max-connections N]
//!               [--instance NAME] [--shards N]
//! ```
//!
//! Serves an `mps-docstore` instance over the mps-net wire protocol.
//! With `--wal-dir` every mutation is write-ahead-logged to that
//! directory and replayed on restart; without it the store is
//! in-memory. `--shards N` (default 1) serves a
//! collection-name-hash-partitioned `ShardedStore` instead of a single
//! store — same wire protocol, N-way internal parallelism; with
//! `--wal-dir` each shard logs to its own `shard-{i}` subdirectory.
//! `--instance` names this process in the fleet: the admin
//! health report echoes it and `xtask obs` labels merged metrics with
//! it. Prints the bound address on stderr (`listening on ...`)
//! and exits cleanly when a client sends the shutdown opcode. See
//! `docs/DEPLOYMENT.md`, `docs/SHARDING.md` and
//! `docs/OBSERVABILITY.md`.

use mps_docstore::{DocstoreTransport, Durability, DurabilityConfig, ShardedStore, Store};
use mps_net::docstore_api::DocstoreService;
use mps_net::server::{ServerConfig, WireServer};
use std::process::ExitCode;
use std::sync::Arc;

struct Flags {
    listen: String,
    wal_dir: Option<String>,
    max_connections: usize,
    instance: String,
    shards: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        listen: "127.0.0.1:7402".to_string(),
        wal_dir: None,
        max_connections: ServerConfig::default().max_connections,
        instance: "docstored".to_string(),
        shards: 1,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" => flags.listen = value_for("--listen")?,
            "--wal-dir" => flags.wal_dir = Some(value_for("--wal-dir")?),
            "--max-connections" => {
                flags.max_connections = value_for("--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections needs an integer".to_string())?;
            }
            "--instance" => flags.instance = value_for("--instance")?,
            "--shards" => {
                flags.shards = value_for("--shards")?
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| "--shards needs an integer >= 1".to_string())?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: mps-docstored [--listen ADDR] [--wal-dir DIR] [--max-connections N] \
                     [--instance NAME] [--shards N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(flags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let store: Arc<dyn DocstoreTransport> = if flags.shards > 1 {
        let opened = match &flags.wal_dir {
            None => Ok(ShardedStore::new(flags.shards)),
            Some(dir) => ShardedStore::open_durable(flags.shards, DurabilityConfig::new(dir)),
        };
        match opened {
            Ok(store) => Arc::new(store),
            Err(err) => {
                eprintln!("cannot open {}-shard store: {err}", flags.shards);
                return ExitCode::FAILURE;
            }
        }
    } else {
        let durability = match &flags.wal_dir {
            None => Durability::InMemory,
            Some(dir) => Durability::Durable(DurabilityConfig::new(dir)),
        };
        match Store::open(durability) {
            Ok(store) => Arc::new(store),
            Err(err) => {
                eprintln!("cannot open store: {err}");
                return ExitCode::FAILURE;
            }
        }
    };
    let config = ServerConfig {
        max_connections: flags.max_connections,
        instance: flags.instance,
        ..ServerConfig::default()
    };
    let server = match WireServer::bind(
        &*flags.listen,
        Arc::new(DocstoreService::new(store)),
        config,
    ) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("cannot bind {}: {err}", flags.listen);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("mps-docstored listening on {}", server.local_addr());
    server.join();
    eprintln!("mps-docstored shut down cleanly");
    ExitCode::SUCCESS
}
