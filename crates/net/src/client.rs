//! Pooled wire-protocol clients.
//!
//! [`WireConn`] is one handshook TCP connection; [`ClientPool`] keeps a
//! small stack of idle connections, dials on demand, and retries a
//! failed call once on a fresh connection. Retrying gives the remote
//! path *at-least-once* semantics — exactly the delivery contract the
//! rest of the pipeline already assumes, with duplicate suppression
//! living downstream in the trace machinery rather than in the
//! transport.

use crate::frame::{decode_frame, encode_frame, Decoded, Frame, FrameError, FrameType};
use crate::rpc::{RequestEnvelope, ResponseEnvelope, STATUS_OK};
use crate::server::{HELLO_BAD_VERSION, HELLO_OK, HELLO_SHED};
use crate::telemetry::{pool_connections, telemetry};
use crate::wire::WireError;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Errors surfaced by wire clients.
#[derive(Debug)]
pub enum NetError {
    /// The socket failed (connect, read or write).
    Io(io::Error),
    /// A frame failed its header or checksum validation.
    Frame(FrameError),
    /// A verified payload could not be field-decoded.
    Wire(WireError),
    /// The server shed this connection at the handshake (backpressure).
    Shed,
    /// The handshake failed for a protocol reason (bad version, or the
    /// peer is not an mps-net server).
    Handshake(String),
    /// The server answered with a non-zero status; the opcode table
    /// defines what `code` and `payload` mean.
    Remote {
        /// The response status byte.
        code: u8,
        /// The error-specific body bytes.
        payload: Vec<u8>,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(err) => write!(f, "socket error: {err}"),
            NetError::Frame(err) => write!(f, "frame error: {err}"),
            NetError::Wire(err) => write!(f, "payload error: {err}"),
            NetError::Shed => write!(f, "server shed the connection (backpressure)"),
            NetError::Handshake(msg) => write!(f, "handshake failed: {msg}"),
            NetError::Remote { code, payload } => write!(
                f,
                "remote error {code}: {}",
                String::from_utf8_lossy(payload)
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(err) => Some(err),
            NetError::Frame(err) => Some(err),
            NetError::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(err: io::Error) -> Self {
        NetError::Io(err)
    }
}

impl From<FrameError> for NetError {
    fn from(err: FrameError) -> Self {
        NetError::Frame(err)
    }
}

impl From<WireError> for NetError {
    fn from(err: WireError) -> Self {
        NetError::Wire(err)
    }
}

impl NetError {
    /// Whether retrying on a fresh connection could help: true for
    /// transport-level failures, false for remote/service errors (the
    /// server answered — asking again with the same arguments would just
    /// repeat the answer).
    #[must_use]
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            NetError::Io(_) | NetError::Frame(_) | NetError::Wire(_) | NetError::Handshake(_)
        )
    }
}

/// Tunables for client connections.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Ceiling on a received frame payload.
    pub max_frame_bytes: usize,
    /// How long a call waits for bytes of the response before failing.
    pub read_timeout: Duration,
    /// Idle connections the pool keeps for reuse.
    pub max_idle: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_frame_bytes: crate::frame::DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Duration::from_secs(10),
            max_idle: 4,
        }
    }
}

/// One handshook connection to a wire server.
#[derive(Debug)]
pub struct WireConn {
    stream: TcpStream,
    buf: Vec<u8>,
    next_correlation: u64,
    max_frame_bytes: usize,
    deadline: Duration,
}

impl WireConn {
    /// Dials `addr` and performs the Hello/HelloAck handshake.
    ///
    /// # Errors
    ///
    /// * [`NetError::Io`] — the dial failed.
    /// * [`NetError::Shed`] — the server is at capacity.
    /// * [`NetError::Handshake`] — the peer rejected the version or is
    ///   not speaking this protocol.
    pub fn connect(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<WireConn, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        stream.set_nodelay(true)?;
        let mut conn = WireConn {
            stream,
            buf: Vec::new(),
            next_correlation: 1,
            max_frame_bytes: config.max_frame_bytes,
            deadline: config.read_timeout,
        };
        conn.send_frame(&Frame::new(
            FrameType::Hello,
            vec![crate::frame::PROTOCOL_VERSION],
        ))?;
        let ack = conn.recv_frame()?;
        if ack.frame_type != FrameType::HelloAck {
            return Err(NetError::Handshake("expected HelloAck".into()));
        }
        match ack.payload.first().copied() {
            Some(HELLO_OK) => Ok(conn),
            Some(HELLO_SHED) => Err(NetError::Shed),
            Some(HELLO_BAD_VERSION) => Err(NetError::Handshake(format!(
                "server speaks protocol version {:?}, this build speaks {}",
                ack.payload.get(1),
                crate::frame::PROTOCOL_VERSION
            ))),
            other => Err(NetError::Handshake(format!(
                "unknown handshake status {other:?}"
            ))),
        }
    }

    /// Performs one request/response exchange.
    ///
    /// # Errors
    ///
    /// Transport failures ([`NetError::Io`] / [`NetError::Frame`] /
    /// [`NetError::Wire`]) leave the connection unusable; a
    /// [`NetError::Remote`] means the server answered with an error and
    /// the connection stays good.
    pub fn call(
        &mut self,
        opcode: u8,
        headers: &[(String, String)],
        body: &[u8],
    ) -> Result<Vec<u8>, NetError> {
        let correlation = self.next_correlation;
        self.next_correlation = self.next_correlation.wrapping_add(1);
        let request = RequestEnvelope {
            correlation,
            opcode,
            headers: headers.to_vec(),
            body: body.to_vec(),
        };
        self.send_frame(&Frame::new(FrameType::Request, request.encode()))?;
        let frame = self.recv_frame()?;
        if frame.frame_type != FrameType::Response {
            return Err(NetError::Handshake("expected a Response frame".into()));
        }
        let response = ResponseEnvelope::decode(&frame.payload)?;
        if response.correlation != correlation {
            return Err(NetError::Handshake(format!(
                "correlation mismatch: sent {correlation}, got {}",
                response.correlation
            )));
        }
        if response.status == STATUS_OK {
            Ok(response.body)
        } else {
            Err(NetError::Remote {
                code: response.status,
                payload: response.body,
            })
        }
    }

    fn send_frame(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.stream.write_all(&encode_frame(frame))?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Frame, NetError> {
        let started = Instant::now();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match decode_frame(&self.buf, self.max_frame_bytes) {
                Decoded::Frame(frame, used) => {
                    self.buf.drain(..used);
                    return Ok(frame);
                }
                Decoded::Invalid(err) => {
                    telemetry().frames_corrupt.inc();
                    return Err(NetError::Frame(err));
                }
                Decoded::End | Decoded::Torn => {}
            }
            if started.elapsed() > self.deadline {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "timed out waiting for a response frame",
                )));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if !self.buf.is_empty() {
                        telemetry().frames_corrupt.inc();
                        return Err(NetError::Frame(FrameError::Torn));
                    }
                    return Err(NetError::Io(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "server closed the connection",
                    )));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(err)
                    if err.kind() == io::ErrorKind::WouldBlock
                        || err.kind() == io::ErrorKind::TimedOut => {}
                Err(err) => return Err(NetError::Io(err)),
            }
        }
    }
}

/// A bounded LIFO stack of idle resources behind one mutex.
///
/// This is the concurrency kernel of [`ClientPool`], factored out so
/// the loom model in `tests/loom.rs` can exhaustively check the
/// checkout/return interleavings with a cheap payload (`u32`) instead
/// of a live socket. Its `Mutex` comes from [`crate::sync`], so a
/// `RUSTFLAGS="--cfg loom"` build swaps in the modelled version.
///
/// Invariants the model asserts: the stack never holds more than
/// `max_idle` items, a popped item is owned by exactly one thread, and
/// no item is lost unless `push` reported `false`.
pub struct IdleStack<T> {
    max_idle: usize,
    idle: crate::sync::Mutex<Vec<T>>,
}

impl<T> IdleStack<T> {
    /// An empty stack parking at most `max_idle` items.
    #[must_use]
    pub fn new(max_idle: usize) -> IdleStack<T> {
        IdleStack {
            max_idle,
            idle: crate::sync::Mutex::new(Vec::new()),
        }
    }

    /// Takes the most recently parked item, if any.
    pub fn pop(&self) -> Option<T> {
        self.idle.lock().ok().and_then(|mut idle| idle.pop())
    }

    /// Parks `item` unless the stack is full (or its lock is poisoned);
    /// returns whether the item was retained.
    pub fn push(&self, item: T) -> bool {
        if let Ok(mut idle) = self.idle.lock() {
            if idle.len() < self.max_idle {
                idle.push(item);
                return true;
            }
        }
        false
    }

    /// How many items are currently parked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.idle.lock().map(|idle| idle.len()).unwrap_or(0)
    }

    /// Whether no items are parked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> fmt::Debug for IdleStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdleStack")
            .field("max_idle", &self.max_idle)
            .field("len", &self.len())
            .finish()
    }
}

/// A thread-safe pool of [`WireConn`]s to one server address.
///
/// `call` borrows an idle connection (dialling if none is free), retries
/// exactly once on a fresh connection after a transport failure, and
/// returns the connection to the pool on success.
pub struct ClientPool {
    addr: String,
    config: ClientConfig,
    idle: IdleStack<WireConn>,
}

impl fmt::Debug for ClientPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientPool")
            .field("addr", &self.addr)
            .field("idle", &self.idle.len())
            .finish()
    }
}

impl ClientPool {
    /// Creates a pool dialling `addr` (e.g. `"127.0.0.1:7401"`) lazily.
    #[must_use]
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> ClientPool {
        let max_idle = config.max_idle;
        ClientPool {
            addr: addr.into(),
            config,
            idle: IdleStack::new(max_idle),
        }
    }

    /// The server address this pool dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn checkout(&self) -> Result<WireConn, NetError> {
        if let Some(conn) = self.idle.pop() {
            pool_connections("idle").sub(1);
            pool_connections("in_use").add(1);
            return Ok(conn);
        }
        telemetry().client_reconnects.inc();
        let conn = WireConn::connect(&*self.addr, &self.config)?;
        pool_connections("in_use").add(1);
        Ok(conn)
    }

    fn checkin(&self, conn: WireConn) {
        pool_connections("in_use").sub(1);
        if self.idle.push(conn) {
            pool_connections("idle").add(1);
        }
    }

    /// Performs one request/response exchange, retrying once on a fresh
    /// connection after a transport failure.
    ///
    /// # Errors
    ///
    /// Returns the final [`NetError`] if both attempts fail, or the
    /// server's [`NetError::Remote`] verbatim (remote errors are
    /// answers, not transport failures — they are never retried).
    pub fn call(
        &self,
        opcode: u8,
        headers: &[(String, String)],
        body: &[u8],
    ) -> Result<Vec<u8>, NetError> {
        let shared = telemetry();
        shared.client_requests.inc();
        let started = Instant::now();
        let result = self.call_once(opcode, headers, body).or_else(|err| {
            if err.is_transport() {
                // The pooled connection may simply have gone stale; one
                // fresh dial distinguishes "server gone" from "idle
                // connection died".
                shared.client_reconnects.inc();
                let mut conn = WireConn::connect(&*self.addr, &self.config)?;
                pool_connections("in_use").add(1);
                match conn.call(opcode, headers, body) {
                    Ok(reply) => {
                        self.checkin(conn);
                        Ok(reply)
                    }
                    Err(err) => {
                        // The retry connection dies with its error.
                        pool_connections("in_use").sub(1);
                        Err(err)
                    }
                }
            } else {
                Err(err)
            }
        });
        let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
        shared.client_request_ms.observe(elapsed_ms);
        if let Err(err) = &result {
            if err.is_transport() {
                shared.client_errors.inc();
            }
        }
        result
    }

    fn call_once(
        &self,
        opcode: u8,
        headers: &[(String, String)],
        body: &[u8],
    ) -> Result<Vec<u8>, NetError> {
        let mut conn = self.checkout()?;
        match conn.call(opcode, headers, body) {
            Ok(reply) => {
                self.checkin(conn);
                Ok(reply)
            }
            Err(err @ NetError::Remote { .. }) => {
                // The server answered; the connection is still healthy.
                self.checkin(conn);
                Err(err)
            }
            Err(err) => {
                // The transport died; the checked-out connection is
                // dropped here, so it leaves the in_use gauge.
                pool_connections("in_use").sub(1);
                Err(err)
            }
        }
    }
}

impl Drop for ClientPool {
    fn drop(&mut self) {
        pool_connections("idle").sub(self.idle.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, ServiceError, WireServer, WireService};
    use std::sync::Arc;

    /// The `Upper` test service ignores its opcode, but the byte on the
    /// wire is still named (L007): raw opcode literals live only in the
    /// declaring api modules.
    const OP_UPPER: u8 = 1;

    #[derive(Debug)]
    struct Upper;

    impl WireService for Upper {
        fn handle(
            &self,
            _opcode: u8,
            _headers: &[(String, String)],
            body: &[u8],
        ) -> Result<Vec<u8>, ServiceError> {
            Ok(body.to_ascii_uppercase())
        }
    }

    #[test]
    fn pool_reuses_connections() {
        let mut server =
            WireServer::bind("127.0.0.1:0", Arc::new(Upper), ServerConfig::default()).unwrap();
        let pool = ClientPool::new(server.local_addr().to_string(), ClientConfig::default());
        for _ in 0..5 {
            assert_eq!(pool.call(OP_UPPER, &[], b"abc").unwrap(), b"ABC");
        }
        assert_eq!(
            pool.idle.len(),
            1,
            "sequential calls share one pooled connection"
        );
        server.shutdown();
    }

    #[test]
    fn pool_retries_once_on_stale_connection() {
        let mut first =
            WireServer::bind("127.0.0.1:0", Arc::new(Upper), ServerConfig::default()).unwrap();
        let addr = first.local_addr();
        let pool = ClientPool::new(addr.to_string(), ClientConfig::default());
        assert_eq!(pool.call(OP_UPPER, &[], b"x").unwrap(), b"X");
        // Kill the server; the pooled connection is now stale.
        first.shutdown();
        let second = WireServer::bind(addr, Arc::new(Upper), ServerConfig::default());
        match second {
            Ok(mut second) => {
                assert_eq!(pool.call(OP_UPPER, &[], b"y").unwrap(), b"Y");
                second.shutdown();
            }
            // The OS may refuse an immediate rebind of the same port;
            // the stale connection must then surface as a transport
            // error rather than hanging.
            Err(_) => assert!(pool.call(OP_UPPER, &[], b"y").unwrap_err().is_transport()),
        }
    }

    #[test]
    fn pool_gauges_track_idle_and_in_use() {
        let registry = mps_telemetry::Registry::global();
        let idle_of = || {
            registry
                .gauge_value_labeled("net_client_pool_connections", &[("state", "idle")])
                .unwrap_or(0)
        };
        let mut server =
            WireServer::bind("127.0.0.1:0", Arc::new(Upper), ServerConfig::default()).unwrap();
        let before = idle_of();
        let pool = ClientPool::new(server.local_addr().to_string(), ClientConfig::default());
        pool.call(OP_UPPER, &[], b"abc").unwrap();
        assert!(idle_of() > before, "the call's connection was parked idle");
        let in_use = registry
            .gauge_value_labeled("net_client_pool_connections", &[("state", "in_use")])
            .unwrap_or(0);
        assert!(in_use >= 0, "in_use never goes negative");
        drop(pool);
        assert!(idle_of() <= before + 1, "drop withdrew the idle connection");
        server.shutdown();
    }

    #[test]
    fn connect_to_closed_port_is_io_error() {
        let server =
            WireServer::bind("127.0.0.1:0", Arc::new(Upper), ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        drop(server);
        let err = WireConn::connect(addr, &ClientConfig::default()).unwrap_err();
        assert!(matches!(err, NetError::Io(_)));
    }

    /// Real threads hammering the checkout/return path — the ThreadSanitizer
    /// counterpart to the bounded loom model in `tests/loom.rs` (the CI
    /// tsan job selects tests matching `concurrent`).
    #[test]
    fn idle_stack_concurrent_checkout_return_respects_capacity() {
        let stack: Arc<IdleStack<u32>> = Arc::new(IdleStack::new(2));
        let handles: Vec<_> = (0..4u32)
            .map(|tid| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    let mut parked = 0u32;
                    for i in 0..100 {
                        if let Some(conn) = stack.pop() {
                            // "Use" the borrowed connection, then return it.
                            std::hint::black_box(conn);
                            if stack.push(conn) {
                                parked += 1;
                            }
                        } else if stack.push(tid * 1000 + i) {
                            parked += 1;
                        }
                    }
                    parked
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(stack.len() <= 2, "capacity bound holds under contention");
    }

    #[test]
    fn pool_concurrent_calls_share_the_idle_stack() {
        let mut server =
            WireServer::bind("127.0.0.1:0", Arc::new(Upper), ServerConfig::default()).unwrap();
        let pool = Arc::new(ClientPool::new(
            server.local_addr().to_string(),
            ClientConfig::default(),
        ));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        assert_eq!(pool.call(OP_UPPER, &[], b"abc").unwrap(), b"ABC");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            pool.idle.len() <= ClientConfig::default().max_idle,
            "the pool never parks beyond max_idle"
        );
        server.shutdown();
    }
}
