//! Broker opcodes: the server-side [`BrokerService`] and the
//! client-side [`RemoteBroker`].
//!
//! Every method of [`mps_broker::BrokerTransport`] maps to one opcode;
//! argument and result layouts use [`crate::wire`] primitives and are
//! specified normatively in `docs/WIRE_PROTOCOL.md`. Trace context
//! ([`mps_types::headers::TRACE_HEADER`]) rides the *request envelope*
//! headers on publishes, so a wire capture attributes every message to
//! its trace without decoding broker payloads.

use crate::client::{ClientConfig, ClientPool, NetError};
use crate::rpc::STATUS_BAD_REQUEST;
use crate::server::{ServiceError, WireService};
use crate::wire::{WireError, WireReader, WireWriter};
use mps_broker::{BrokerError, BrokerTransport, DeadLetterPolicy, Delivery, ExchangeType, Message};
use mps_types::headers::{SENT_MS_HEADER, TRACE_HEADER};
use std::fmt;
use std::sync::Arc;

/// Broker opcode table (`1..=19`); see `docs/WIRE_PROTOCOL.md` §5.
pub mod op {
    /// `declare_exchange(name, type)`
    pub const DECLARE_EXCHANGE: u8 = 1;
    /// `declare_queue(name)`
    pub const DECLARE_QUEUE: u8 = 2;
    /// `declare_queue_with_capacity(name, capacity)`
    pub const DECLARE_QUEUE_WITH_CAPACITY: u8 = 3;
    /// `exchange_exists(name) -> bool`
    pub const EXCHANGE_EXISTS: u8 = 4;
    /// `queue_exists(name) -> bool`
    pub const QUEUE_EXISTS: u8 = 5;
    /// `bind_queue(exchange, queue, pattern)`
    pub const BIND_QUEUE: u8 = 6;
    /// `bind_exchange(source, destination, pattern)`
    pub const BIND_EXCHANGE: u8 = 7;
    /// `unbind_queue(exchange, queue, pattern)`
    pub const UNBIND_QUEUE: u8 = 8;
    /// `delete_exchange(name)`
    pub const DELETE_EXCHANGE: u8 = 9;
    /// `delete_queue(name)`
    pub const DELETE_QUEUE: u8 = 10;
    /// `purge_queue(name) -> count`
    pub const PURGE_QUEUE: u8 = 11;
    /// `configure_dead_letter(queue, attempts, target)`
    pub const CONFIGURE_DEAD_LETTER: u8 = 12;
    /// `dead_letter_policy(queue) -> policy?`
    pub const DEAD_LETTER_POLICY: u8 = 13;
    /// `queue_depth(name) -> depth`
    pub const QUEUE_DEPTH: u8 = 14;
    /// `publish(exchange, key, payload) -> fanout`
    pub const PUBLISH: u8 = 15;
    /// `publish_message(exchange, key, payload, headers) -> fanout`
    pub const PUBLISH_MESSAGE: u8 = 16;
    /// `consume(queue, max) -> deliveries`
    pub const CONSUME: u8 = 17;
    /// `ack(queue, tag)`
    pub const ACK: u8 = 18;
    /// `nack(queue, tag, requeue)`
    pub const NACK: u8 = 19;
}

/// Broker error status codes (`16..=24`); see `docs/WIRE_PROTOCOL.md` §7.
pub mod err {
    /// [`mps_broker::BrokerError::ExchangeNotFound`]
    pub const EXCHANGE_NOT_FOUND: u8 = 16;
    /// [`mps_broker::BrokerError::QueueNotFound`]
    pub const QUEUE_NOT_FOUND: u8 = 17;
    /// [`mps_broker::BrokerError::ExchangeTypeMismatch`]
    pub const EXCHANGE_TYPE_MISMATCH: u8 = 18;
    /// [`mps_broker::BrokerError::InvalidKey`]
    pub const INVALID_KEY: u8 = 19;
    /// [`mps_broker::BrokerError::UnknownDeliveryTag`]
    pub const UNKNOWN_DELIVERY_TAG: u8 = 20;
    /// [`mps_broker::BrokerError::QueueFull`]
    pub const QUEUE_FULL: u8 = 21;
    /// [`mps_broker::BrokerError::InvalidDeadLetter`]
    pub const INVALID_DEAD_LETTER: u8 = 22;
    /// [`mps_broker::BrokerError::Durability`]
    pub const DURABILITY: u8 = 23;
    /// [`mps_broker::BrokerError::Transport`]
    pub const TRANSPORT: u8 = 24;
}

fn exchange_type_byte(kind: ExchangeType) -> u8 {
    match kind {
        ExchangeType::Direct => 1,
        ExchangeType::Fanout => 2,
        ExchangeType::Topic => 3,
    }
}

fn exchange_type_from_byte(byte: u8) -> Result<ExchangeType, WireError> {
    match byte {
        1 => Ok(ExchangeType::Direct),
        2 => Ok(ExchangeType::Fanout),
        3 => Ok(ExchangeType::Topic),
        value => Err(WireError::BadDiscriminant {
            field: "exchange type",
            value,
        }),
    }
}

/// Encodes a [`BrokerError`] as a wire status + payload.
#[must_use]
pub fn encode_broker_error(error: &BrokerError) -> ServiceError {
    let mut w = WireWriter::new();
    let code = match error {
        BrokerError::ExchangeNotFound(name) => {
            w.string(name);
            err::EXCHANGE_NOT_FOUND
        }
        BrokerError::QueueNotFound(name) => {
            w.string(name);
            err::QUEUE_NOT_FOUND
        }
        BrokerError::ExchangeTypeMismatch { name } => {
            w.string(name);
            err::EXCHANGE_TYPE_MISMATCH
        }
        BrokerError::InvalidKey(key) => {
            w.string(key);
            err::INVALID_KEY
        }
        BrokerError::UnknownDeliveryTag { queue, tag } => {
            w.string(queue).u64(*tag);
            err::UNKNOWN_DELIVERY_TAG
        }
        BrokerError::QueueFull(name) => {
            w.string(name);
            err::QUEUE_FULL
        }
        BrokerError::InvalidDeadLetter(reason) => {
            w.string(reason);
            err::INVALID_DEAD_LETTER
        }
        BrokerError::Durability(msg) => {
            w.string(msg);
            err::DURABILITY
        }
        BrokerError::Transport(msg) => {
            w.string(msg);
            err::TRANSPORT
        }
    };
    ServiceError {
        code,
        payload: w.finish(),
    }
}

/// Decodes a wire status + payload back into the exact [`BrokerError`].
/// Unknown codes degrade to [`BrokerError::Transport`], never a panic —
/// a newer server must not crash an older client.
#[must_use]
pub fn decode_broker_error(code: u8, payload: &[u8]) -> BrokerError {
    let mut r = WireReader::new(payload);
    let decoded = match code {
        err::EXCHANGE_NOT_FOUND => r.string("name").map(BrokerError::ExchangeNotFound),
        err::QUEUE_NOT_FOUND => r.string("name").map(BrokerError::QueueNotFound),
        err::EXCHANGE_TYPE_MISMATCH => r
            .string("name")
            .map(|name| BrokerError::ExchangeTypeMismatch { name }),
        err::INVALID_KEY => r.string("key").map(BrokerError::InvalidKey),
        err::UNKNOWN_DELIVERY_TAG => r.string("queue").and_then(|queue| {
            r.u64("tag")
                .map(|tag| BrokerError::UnknownDeliveryTag { queue, tag })
        }),
        err::QUEUE_FULL => r.string("name").map(BrokerError::QueueFull),
        err::INVALID_DEAD_LETTER => r.string("reason").map(BrokerError::InvalidDeadLetter),
        err::DURABILITY => r.string("msg").map(BrokerError::Durability),
        err::TRANSPORT => r.string("msg").map(BrokerError::Transport),
        other => {
            return BrokerError::Transport(format!(
                "unknown broker error code {other}: {}",
                String::from_utf8_lossy(payload)
            ))
        }
    };
    decoded.unwrap_or_else(|wire| {
        BrokerError::Transport(format!("undecodable broker error {code}: {wire}"))
    })
}

fn encode_deliveries(deliveries: &[Delivery]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(deliveries.len() as u32);
    for delivery in deliveries {
        w.u64(delivery.tag)
            .u8(u8::from(delivery.redelivered))
            .string(delivery.routing_key().as_str())
            .bytes(delivery.payload());
        let headers: Vec<(&str, &str)> = delivery.message.headers().collect();
        w.u16(headers.len() as u16);
        for (key, value) in headers {
            w.string(key).string(value);
        }
    }
    w.finish()
}

fn decode_deliveries(payload: &[u8]) -> Result<Vec<Delivery>, WireError> {
    let mut r = WireReader::new(payload);
    let count = r.u32("delivery count")?;
    let mut deliveries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let tag = r.u64("tag")?;
        let redelivered = r.u8("redelivered")? != 0;
        let key = r.string("routing key")?;
        let body = r.bytes("payload")?.to_vec();
        let routing_key = key.parse().map_err(|_| WireError::BadDiscriminant {
            field: "routing key",
            value: 0,
        })?;
        let mut message = Message::new(routing_key, body);
        let header_count = r.u16("header count")?;
        for _ in 0..header_count {
            let name = r.string("header name")?;
            let value = r.string("header value")?;
            message = message.with_header(name, value);
        }
        deliveries.push(Delivery {
            tag,
            message: Arc::new(message),
            redelivered,
        });
    }
    r.expect_end()?;
    Ok(deliveries)
}

// ---------------------------------------------------------------- server

/// Serves any [`BrokerTransport`] — usually a local [`mps_broker::Broker`] —
/// over the wire protocol.
pub struct BrokerService {
    inner: Arc<dyn BrokerTransport>,
}

impl fmt::Debug for BrokerService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerService").finish_non_exhaustive()
    }
}

impl BrokerService {
    /// Wraps a transport for serving.
    #[must_use]
    pub fn new(inner: Arc<dyn BrokerTransport>) -> BrokerService {
        BrokerService { inner }
    }

    fn dispatch(&self, opcode: u8, body: &[u8]) -> Result<Result<Vec<u8>, BrokerError>, WireError> {
        let mut r = WireReader::new(body);
        let empty = |result: Result<(), BrokerError>| result.map(|()| Vec::new());
        let reply = match opcode {
            op::DECLARE_EXCHANGE => {
                let name = r.string("exchange")?;
                let kind = exchange_type_from_byte(r.u8("exchange type")?)?;
                empty(self.inner.declare_exchange(&name, kind))
            }
            op::DECLARE_QUEUE => empty(self.inner.declare_queue(&r.string("queue")?)),
            op::DECLARE_QUEUE_WITH_CAPACITY => {
                let queue = r.string("queue")?;
                let capacity = r.u64("capacity")? as usize;
                empty(self.inner.declare_queue_with_capacity(&queue, capacity))
            }
            op::EXCHANGE_EXISTS => {
                let name = r.string("exchange")?;
                Ok(vec![u8::from(self.inner.exchange_exists(&name))])
            }
            op::QUEUE_EXISTS => {
                let name = r.string("queue")?;
                Ok(vec![u8::from(self.inner.queue_exists(&name))])
            }
            op::BIND_QUEUE => {
                let exchange = r.string("exchange")?;
                let queue = r.string("queue")?;
                let pattern = r.string("pattern")?;
                empty(self.inner.bind_queue(&exchange, &queue, &pattern))
            }
            op::BIND_EXCHANGE => {
                let source = r.string("source")?;
                let destination = r.string("destination")?;
                let pattern = r.string("pattern")?;
                empty(self.inner.bind_exchange(&source, &destination, &pattern))
            }
            op::UNBIND_QUEUE => {
                let exchange = r.string("exchange")?;
                let queue = r.string("queue")?;
                let pattern = r.string("pattern")?;
                empty(self.inner.unbind_queue(&exchange, &queue, &pattern))
            }
            op::DELETE_EXCHANGE => empty(self.inner.delete_exchange(&r.string("exchange")?)),
            op::DELETE_QUEUE => empty(self.inner.delete_queue(&r.string("queue")?)),
            op::PURGE_QUEUE => self.inner.purge_queue(&r.string("queue")?).map(|purged| {
                let mut w = WireWriter::new();
                w.u64(purged as u64);
                w.finish()
            }),
            op::CONFIGURE_DEAD_LETTER => {
                let queue = r.string("queue")?;
                let attempts = r.u32("max delivery attempts")?;
                let target = r.string("target")?;
                empty(self.inner.configure_dead_letter(&queue, attempts, &target))
            }
            op::DEAD_LETTER_POLICY => {
                self.inner
                    .dead_letter_policy(&r.string("queue")?)
                    .map(|policy| {
                        let mut w = WireWriter::new();
                        match policy {
                            None => {
                                w.u8(0);
                            }
                            Some(policy) => {
                                w.u8(1)
                                    .u32(policy.max_delivery_attempts)
                                    .string(&policy.target);
                            }
                        }
                        w.finish()
                    })
            }
            op::QUEUE_DEPTH => self.inner.queue_depth(&r.string("queue")?).map(|depth| {
                let mut w = WireWriter::new();
                w.u64(depth as u64);
                w.finish()
            }),
            op::PUBLISH => {
                let exchange = r.string("exchange")?;
                let key = r.string("routing key")?;
                let payload = r.bytes("payload")?;
                self.inner.publish(&exchange, &key, payload).map(|fanout| {
                    let mut w = WireWriter::new();
                    w.u64(fanout as u64);
                    w.finish()
                })
            }
            op::PUBLISH_MESSAGE => {
                let exchange = r.string("exchange")?;
                let key = r.string("routing key")?;
                let payload = r.bytes("payload")?.to_vec();
                let header_count = r.u16("header count")?;
                let routing_key = key.parse().map_err(|_| WireError::BadDiscriminant {
                    field: "routing key",
                    value: 0,
                })?;
                let mut message = Message::new(routing_key, payload);
                for _ in 0..header_count {
                    let name = r.string("header name")?;
                    let value = r.string("header value")?;
                    message = message.with_header(name, value);
                }
                self.inner
                    .publish_message(&exchange, message)
                    .map(|fanout| {
                        let mut w = WireWriter::new();
                        w.u64(fanout as u64);
                        w.finish()
                    })
            }
            op::CONSUME => {
                let queue = r.string("queue")?;
                let max = r.u32("max")? as usize;
                self.inner
                    .consume(&queue, max)
                    .map(|deliveries| encode_deliveries(&deliveries))
            }
            op::ACK => {
                let queue = r.string("queue")?;
                let tag = r.u64("tag")?;
                empty(self.inner.ack(&queue, tag))
            }
            op::NACK => {
                let queue = r.string("queue")?;
                let tag = r.u64("tag")?;
                let requeue = r.u8("requeue")? != 0;
                empty(self.inner.nack(&queue, tag, requeue))
            }
            other => {
                return Err(WireError::BadDiscriminant {
                    field: "broker opcode",
                    value: other,
                })
            }
        };
        r.expect_end()?;
        Ok(reply)
    }
}

impl WireService for BrokerService {
    fn handle(
        &self,
        opcode: u8,
        _headers: &[(String, String)],
        body: &[u8],
    ) -> Result<Vec<u8>, ServiceError> {
        match self.dispatch(opcode, body) {
            Ok(Ok(reply)) => Ok(reply),
            Ok(Err(broker_error)) => Err(encode_broker_error(&broker_error)),
            Err(wire_error) => Err(ServiceError::msg(
                STATUS_BAD_REQUEST,
                &wire_error.to_string(),
            )),
        }
    }

    fn role(&self) -> &'static str {
        "broker"
    }

    fn opcode_name(&self, opcode: u8) -> Option<&'static str> {
        Some(match opcode {
            op::DECLARE_EXCHANGE => "DECLARE_EXCHANGE",
            op::DECLARE_QUEUE => "DECLARE_QUEUE",
            op::DECLARE_QUEUE_WITH_CAPACITY => "DECLARE_QUEUE_WITH_CAPACITY",
            op::EXCHANGE_EXISTS => "EXCHANGE_EXISTS",
            op::QUEUE_EXISTS => "QUEUE_EXISTS",
            op::BIND_QUEUE => "BIND_QUEUE",
            op::BIND_EXCHANGE => "BIND_EXCHANGE",
            op::UNBIND_QUEUE => "UNBIND_QUEUE",
            op::DELETE_EXCHANGE => "DELETE_EXCHANGE",
            op::DELETE_QUEUE => "DELETE_QUEUE",
            op::PURGE_QUEUE => "PURGE_QUEUE",
            op::CONFIGURE_DEAD_LETTER => "CONFIGURE_DEAD_LETTER",
            op::DEAD_LETTER_POLICY => "DEAD_LETTER_POLICY",
            op::QUEUE_DEPTH => "QUEUE_DEPTH",
            op::PUBLISH => "PUBLISH",
            op::PUBLISH_MESSAGE => "PUBLISH_MESSAGE",
            op::CONSUME => "CONSUME",
            op::ACK => "ACK",
            op::NACK => "NACK",
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------- client

/// A [`BrokerTransport`] that forwards every call to a remote
/// [`BrokerService`] over a [`ClientPool`].
#[derive(Debug)]
pub struct RemoteBroker {
    pool: ClientPool,
}

impl RemoteBroker {
    /// Creates a remote broker dialling `addr` lazily.
    #[must_use]
    pub fn connect(addr: impl Into<String>, config: ClientConfig) -> RemoteBroker {
        RemoteBroker {
            pool: ClientPool::new(addr, config),
        }
    }

    fn transport_error(err: NetError) -> BrokerError {
        match err {
            NetError::Remote { code, payload } => decode_broker_error(code, &payload),
            other => BrokerError::Transport(other.to_string()),
        }
    }

    fn call(&self, opcode: u8, body: Vec<u8>) -> Result<Vec<u8>, BrokerError> {
        self.call_with_headers(opcode, &[], body)
    }

    fn call_with_headers(
        &self,
        opcode: u8,
        headers: &[(String, String)],
        body: Vec<u8>,
    ) -> Result<Vec<u8>, BrokerError> {
        self.pool
            .call(opcode, headers, &body)
            .map_err(Self::transport_error)
    }

    fn call_unit(&self, opcode: u8, body: Vec<u8>) -> Result<(), BrokerError> {
        self.call(opcode, body).map(|_| ())
    }

    fn call_u64(&self, opcode: u8, body: Vec<u8>) -> Result<u64, BrokerError> {
        let reply = self.call(opcode, body)?;
        let mut r = WireReader::new(&reply);
        r.u64("result")
            .map_err(|err| BrokerError::Transport(format!("bad reply: {err}")))
    }

    fn call_bool(&self, opcode: u8, body: Vec<u8>) -> bool {
        // Existence probes are infallible in the transport signature;
        // over a broken wire the conservative answer is "no".
        self.call(opcode, body)
            .map(|reply| reply.first().copied() == Some(1))
            .unwrap_or(false)
    }

    fn one_string(value: &str) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.string(value);
        w.finish()
    }
}

impl BrokerTransport for RemoteBroker {
    fn declare_exchange(&self, name: &str, kind: ExchangeType) -> Result<(), BrokerError> {
        let mut w = WireWriter::new();
        w.string(name).u8(exchange_type_byte(kind));
        self.call_unit(op::DECLARE_EXCHANGE, w.finish())
    }

    fn declare_queue(&self, name: &str) -> Result<(), BrokerError> {
        self.call_unit(op::DECLARE_QUEUE, Self::one_string(name))
    }

    fn declare_queue_with_capacity(&self, name: &str, capacity: usize) -> Result<(), BrokerError> {
        let mut w = WireWriter::new();
        w.string(name).u64(capacity as u64);
        self.call_unit(op::DECLARE_QUEUE_WITH_CAPACITY, w.finish())
    }

    fn exchange_exists(&self, name: &str) -> bool {
        self.call_bool(op::EXCHANGE_EXISTS, Self::one_string(name))
    }

    fn queue_exists(&self, name: &str) -> bool {
        self.call_bool(op::QUEUE_EXISTS, Self::one_string(name))
    }

    fn bind_queue(&self, exchange: &str, queue: &str, pattern: &str) -> Result<(), BrokerError> {
        let mut w = WireWriter::new();
        w.string(exchange).string(queue).string(pattern);
        self.call_unit(op::BIND_QUEUE, w.finish())
    }

    fn bind_exchange(
        &self,
        source: &str,
        destination: &str,
        pattern: &str,
    ) -> Result<(), BrokerError> {
        let mut w = WireWriter::new();
        w.string(source).string(destination).string(pattern);
        self.call_unit(op::BIND_EXCHANGE, w.finish())
    }

    fn unbind_queue(&self, exchange: &str, queue: &str, pattern: &str) -> Result<(), BrokerError> {
        let mut w = WireWriter::new();
        w.string(exchange).string(queue).string(pattern);
        self.call_unit(op::UNBIND_QUEUE, w.finish())
    }

    fn delete_exchange(&self, name: &str) -> Result<(), BrokerError> {
        self.call_unit(op::DELETE_EXCHANGE, Self::one_string(name))
    }

    fn delete_queue(&self, name: &str) -> Result<(), BrokerError> {
        self.call_unit(op::DELETE_QUEUE, Self::one_string(name))
    }

    fn purge_queue(&self, name: &str) -> Result<usize, BrokerError> {
        self.call_u64(op::PURGE_QUEUE, Self::one_string(name))
            .map(|purged| purged as usize)
    }

    fn configure_dead_letter(
        &self,
        queue: &str,
        max_delivery_attempts: u32,
        target: &str,
    ) -> Result<(), BrokerError> {
        let mut w = WireWriter::new();
        w.string(queue).u32(max_delivery_attempts).string(target);
        self.call_unit(op::CONFIGURE_DEAD_LETTER, w.finish())
    }

    fn dead_letter_policy(&self, queue: &str) -> Result<Option<DeadLetterPolicy>, BrokerError> {
        let reply = self.call(op::DEAD_LETTER_POLICY, Self::one_string(queue))?;
        let mut r = WireReader::new(&reply);
        let bad_reply = |err: WireError| BrokerError::Transport(format!("bad reply: {err}"));
        if r.u8("present").map_err(bad_reply)? == 0 {
            return Ok(None);
        }
        let max_delivery_attempts = r.u32("max delivery attempts").map_err(bad_reply)?;
        let target = r.string("target").map_err(bad_reply)?;
        Ok(Some(DeadLetterPolicy {
            max_delivery_attempts,
            target,
        }))
    }

    fn queue_depth(&self, name: &str) -> Result<usize, BrokerError> {
        self.call_u64(op::QUEUE_DEPTH, Self::one_string(name))
            .map(|depth| depth as usize)
    }

    fn publish(&self, exchange: &str, key: &str, payload: &[u8]) -> Result<usize, BrokerError> {
        let mut w = WireWriter::new();
        w.string(exchange).string(key).bytes(payload);
        self.call_u64(op::PUBLISH, w.finish())
            .map(|fanout| fanout as usize)
    }

    fn publish_message(&self, exchange: &str, message: Message) -> Result<usize, BrokerError> {
        let mut w = WireWriter::new();
        w.string(exchange)
            .string(message.routing_key().as_str())
            .bytes(message.payload());
        let headers: Vec<(&str, &str)> = message.headers().collect();
        w.u16(headers.len() as u16);
        // The trace context additionally rides the request envelope so
        // that wire-level observers can attribute frames to traces.
        let mut envelope_headers = Vec::new();
        for (name, value) in headers {
            w.string(name).string(value);
            if name == TRACE_HEADER || name == SENT_MS_HEADER {
                envelope_headers.push((name.to_string(), value.to_string()));
            }
        }
        let reply = self.call_with_headers(op::PUBLISH_MESSAGE, &envelope_headers, w.finish())?;
        let mut r = WireReader::new(&reply);
        r.u64("fanout")
            .map(|fanout| fanout as usize)
            .map_err(|err| BrokerError::Transport(format!("bad reply: {err}")))
    }

    fn consume(&self, queue: &str, max: usize) -> Result<Vec<Delivery>, BrokerError> {
        let mut w = WireWriter::new();
        w.string(queue).u32(max.min(u32::MAX as usize) as u32);
        let reply = self.call(op::CONSUME, w.finish())?;
        decode_deliveries(&reply)
            .map_err(|err| BrokerError::Transport(format!("bad deliveries: {err}")))
    }

    fn ack(&self, queue: &str, tag: u64) -> Result<(), BrokerError> {
        let mut w = WireWriter::new();
        w.string(queue).u64(tag);
        self.call_unit(op::ACK, w.finish())
    }

    fn nack(&self, queue: &str, tag: u64, requeue: bool) -> Result<(), BrokerError> {
        let mut w = WireWriter::new();
        w.string(queue).u64(tag).u8(u8::from(requeue));
        self.call_unit(op::NACK, w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, WireServer};
    use mps_broker::Broker;

    fn start_remote() -> (WireServer, RemoteBroker) {
        let broker: Arc<dyn BrokerTransport> = Arc::new(Broker::new());
        let server = WireServer::bind(
            "127.0.0.1:0",
            Arc::new(BrokerService::new(broker)),
            ServerConfig::default(),
        )
        .unwrap();
        let remote =
            RemoteBroker::connect(server.local_addr().to_string(), ClientConfig::default());
        (server, remote)
    }

    #[test]
    fn full_topology_and_message_flow_over_tcp() {
        let (mut server, remote) = start_remote();
        remote.declare_exchange("app", ExchangeType::Topic).unwrap();
        remote.declare_queue("inbox").unwrap();
        remote.bind_queue("app", "inbox", "obs.#").unwrap();
        assert!(remote.exchange_exists("app"));
        assert!(remote.queue_exists("inbox"));
        assert!(!remote.queue_exists("ghost"));

        let fanout = remote.publish("app", "obs.paris.noise", b"{}").unwrap();
        assert_eq!(fanout, 1);
        assert_eq!(remote.queue_depth("inbox").unwrap(), 1);

        let deliveries = remote.consume("inbox", 10).unwrap();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].routing_key().as_str(), "obs.paris.noise");
        remote.ack("inbox", deliveries[0].tag).unwrap();
        assert_eq!(remote.queue_depth("inbox").unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn headers_and_dead_letters_cross_the_wire() {
        let (mut server, remote) = start_remote();
        remote
            .declare_exchange("app", ExchangeType::Direct)
            .unwrap();
        remote.declare_queue("work").unwrap();
        remote.declare_queue("dead").unwrap();
        remote.bind_queue("app", "work", "job").unwrap();
        remote.configure_dead_letter("work", 1, "dead").unwrap();
        let policy = remote.dead_letter_policy("work").unwrap().unwrap();
        assert_eq!(policy.max_delivery_attempts, 1);
        assert_eq!(policy.target, "dead");
        assert!(remote.dead_letter_policy("dead").unwrap().is_none());

        let message = Message::new("job".parse().unwrap(), b"payload".to_vec())
            .with_header(TRACE_HEADER, "t-1")
            .with_header("content-type", "application/json");
        remote.publish_message("app", message).unwrap();
        let deliveries = remote.consume("work", 1).unwrap();
        assert_eq!(deliveries[0].message.header(TRACE_HEADER), Some("t-1"));
        assert_eq!(
            deliveries[0].message.header("content-type"),
            Some("application/json")
        );
        // Nack past the delivery budget: the message must dead-letter.
        remote.nack("work", deliveries[0].tag, true).unwrap();
        assert_eq!(remote.queue_depth("dead").unwrap(), 1);
        assert_eq!(remote.queue_depth("work").unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn broker_errors_come_back_typed() {
        let (mut server, remote) = start_remote();
        assert_eq!(
            remote.publish("ghost", "k", b"").unwrap_err(),
            BrokerError::ExchangeNotFound("ghost".into())
        );
        remote.declare_queue("q").unwrap();
        assert_eq!(
            remote.ack("q", 99).unwrap_err(),
            BrokerError::UnknownDeliveryTag {
                queue: "q".into(),
                tag: 99
            }
        );
        server.shutdown();
    }

    #[test]
    fn unreachable_server_degrades_to_transport_error() {
        let (server, _) = start_remote();
        let addr = server.local_addr().to_string();
        drop(server);
        let remote = RemoteBroker::connect(addr, ClientConfig::default());
        assert!(matches!(
            remote.declare_queue("q").unwrap_err(),
            BrokerError::Transport(_)
        ));
        assert!(!remote.queue_exists("q"));
    }

    #[test]
    fn error_codec_round_trips_every_variant() {
        let cases = vec![
            BrokerError::ExchangeNotFound("e".into()),
            BrokerError::QueueNotFound("q".into()),
            BrokerError::ExchangeTypeMismatch { name: "n".into() },
            BrokerError::InvalidKey("a..b".into()),
            BrokerError::UnknownDeliveryTag {
                queue: "q".into(),
                tag: 7,
            },
            BrokerError::QueueFull("q".into()),
            BrokerError::InvalidDeadLetter("self".into()),
            BrokerError::Durability("torn".into()),
            BrokerError::Transport("refused".into()),
        ];
        for case in cases {
            let encoded = encode_broker_error(&case);
            assert_eq!(decode_broker_error(encoded.code, &encoded.payload), case);
        }
    }

    /// Every broker opcode, by name: the dispatcher knows its mnemonic
    /// and no two opcodes share a value. mps-lint L006 additionally
    /// cross-checks this table against `docs/WIRE_PROTOCOL.md` §5.
    #[test]
    fn opcode_table_is_complete_unique_and_named() {
        let broker: Arc<dyn BrokerTransport> = Arc::new(Broker::new());
        let service = BrokerService::new(broker);
        let table: &[(u8, &str)] = &[
            (op::DECLARE_EXCHANGE, "DECLARE_EXCHANGE"),
            (op::DECLARE_QUEUE, "DECLARE_QUEUE"),
            (
                op::DECLARE_QUEUE_WITH_CAPACITY,
                "DECLARE_QUEUE_WITH_CAPACITY",
            ),
            (op::EXCHANGE_EXISTS, "EXCHANGE_EXISTS"),
            (op::QUEUE_EXISTS, "QUEUE_EXISTS"),
            (op::BIND_QUEUE, "BIND_QUEUE"),
            (op::BIND_EXCHANGE, "BIND_EXCHANGE"),
            (op::UNBIND_QUEUE, "UNBIND_QUEUE"),
            (op::DELETE_EXCHANGE, "DELETE_EXCHANGE"),
            (op::DELETE_QUEUE, "DELETE_QUEUE"),
            (op::PURGE_QUEUE, "PURGE_QUEUE"),
            (op::CONFIGURE_DEAD_LETTER, "CONFIGURE_DEAD_LETTER"),
            (op::DEAD_LETTER_POLICY, "DEAD_LETTER_POLICY"),
            (op::QUEUE_DEPTH, "QUEUE_DEPTH"),
            (op::PUBLISH, "PUBLISH"),
            (op::PUBLISH_MESSAGE, "PUBLISH_MESSAGE"),
            (op::CONSUME, "CONSUME"),
            (op::ACK, "ACK"),
            (op::NACK, "NACK"),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for &(opcode, name) in table {
            assert_eq!(
                service.opcode_name(opcode),
                Some(name),
                "mnemonic of {name}"
            );
            assert!(seen.insert(opcode), "opcode value of {name} collides");
            assert!((1..=19).contains(&opcode), "{name} outside the broker band");
        }
        assert_eq!(seen.len(), 19, "every §5 opcode is present");
    }
}
