//! Synchronisation primitives, switchable to [loom]'s model checker.
//!
//! The two concurrency hot-spots of this crate — the
//! [`IdleStack`](crate::client::IdleStack) behind
//! [`ClientPool`](crate::client::ClientPool) and the
//! [`SlowRpcRing`](crate::admin::SlowRpcRing) every server thread
//! observes into — import their `Mutex` from here instead of
//! `std::sync`. Under a normal build this module is a zero-cost
//! re-export of `std::sync`; under `RUSTFLAGS="--cfg loom"` it
//! re-exports loom's modelled version, so `tests/loom.rs` can
//! exhaustively explore thread interleavings of the exact production
//! code paths.
//!
//! The loom dependency itself is declared under
//! `[target.'cfg(loom)'.dependencies]`, so ordinary builds never compile
//! (or even download) it — the same discipline as `mps-telemetry`.
//!
//! [loom]: https://github.com/tokio-rs/loom

#[cfg(loom)]
pub(crate) use loom::sync::Mutex;

#[cfg(not(loom))]
pub(crate) use std::sync::Mutex;
