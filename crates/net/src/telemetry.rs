//! Shared `net_*` series in the process-wide telemetry registry.

use mps_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::OnceLock;

/// Per-opcode RPC latency buckets: `exponential_buckets(1e-5, 4.0, 12)`,
/// precomputed so every registration site shares one literal. 10µs
/// catches loopback no-ops; ~42s catches a hung disk with room to spare.
const RPC_SECONDS_BUCKETS: [f64; 12] = [
    1e-5, 4e-5, 1.6e-4, 6.4e-4, 2.56e-3, 1.024e-2, 4.096e-2, 0.16384, 0.65536, 2.62144, 10.48576,
    41.94304,
];

/// The per-opcode server-side service-latency histogram.
pub(crate) fn rpc_seconds(opcode: &str) -> Histogram {
    Registry::global().histogram_labeled(
        "net_server_rpc_seconds",
        &[("opcode", opcode)],
        "Server-side RPC service latency in seconds, per opcode",
        &RPC_SECONDS_BUCKETS,
    )
}

/// The per-opcode, per-status-code server-side RPC error counter.
pub(crate) fn rpc_errors(opcode: &str, code: u8) -> Counter {
    Registry::global().counter_labeled(
        "net_server_rpc_errors_total",
        &[("code", &code.to_string()), ("opcode", opcode)],
        "Server-side RPC errors, per opcode and response status code",
    )
}

/// The pooled-client connection gauge for one `state` (`idle` or
/// `in_use`); the two states sum to the pool's live connection count.
pub(crate) fn pool_connections(state: &'static str) -> Gauge {
    Registry::global().gauge_labeled(
        "net_client_pool_connections",
        &[("state", state)],
        "Pooled client connections by state (idle in the pool vs checked out)",
    )
}

/// Shared networking metric handles, under the workspace naming
/// convention `net_<side>_<metric>`.
pub(crate) struct NetTelemetry {
    /// Requests issued by pooled clients (before any retry).
    pub(crate) client_requests: Counter,
    /// Fresh connections dialled because the pool was empty or a pooled
    /// connection had gone stale.
    pub(crate) client_reconnects: Counter,
    /// Client calls that ultimately failed (after the one retry).
    pub(crate) client_errors: Counter,
    /// Wall-clock round-trip latency of client calls.
    pub(crate) client_request_ms: Histogram,
    /// Connections a server accepted and handshook.
    pub(crate) server_connections: Counter,
    /// Connections shed at the handshake because the server was at its
    /// connection ceiling — the explicit backpressure signal.
    pub(crate) server_shed: Counter,
    /// Requests a server dispatched to its service.
    pub(crate) server_requests: Counter,
    /// Requests that returned an error status to the client.
    pub(crate) server_errors: Counter,
    /// Frames rejected for checksum, magic, version or size violations.
    pub(crate) frames_corrupt: Counter,
}

/// The lazily-registered networking metric set.
pub(crate) fn telemetry() -> &'static NetTelemetry {
    static TELEMETRY: OnceLock<NetTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| {
        let registry = Registry::global();
        NetTelemetry {
            client_requests: registry.counter(
                "net_client_requests_total",
                "Wire requests issued by pooled clients before retries",
            ),
            client_reconnects: registry.counter(
                "net_client_reconnects_total",
                "Fresh connections dialled by pooled clients",
            ),
            client_errors: registry.counter(
                "net_client_errors_total",
                "Client wire calls that failed after retrying",
            ),
            client_request_ms: registry.histogram(
                "net_client_request_ms",
                "Round-trip latency of client wire calls in milliseconds",
                &[
                    0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                ],
            ),
            server_connections: registry.counter(
                "net_server_connections_total",
                "Connections accepted and handshook by wire servers",
            ),
            server_shed: registry.counter(
                "net_server_shed_total",
                "Connections shed at the handshake by server backpressure",
            ),
            server_requests: registry.counter(
                "net_server_requests_total",
                "Requests dispatched by wire servers to their service",
            ),
            server_errors: registry.counter(
                "net_server_errors_total",
                "Requests answered with an error status by wire servers",
            ),
            frames_corrupt: registry.counter(
                "net_frames_corrupt_total",
                "Frames rejected for checksum, magic, version or size violations",
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_follow_convention() {
        let t = telemetry();
        t.client_requests.inc();
        t.frames_corrupt.inc();
        let registry = Registry::global();
        assert!(registry
            .counter_value("net_client_requests_total")
            .is_some());
        assert!(registry.counter_value("net_frames_corrupt_total").is_some());
    }

    #[test]
    fn rpc_series_register_per_opcode_children() {
        rpc_seconds("PUBLISH").observe(0.002);
        rpc_errors("PUBLISH", 21).inc();
        let registry = Registry::global();
        assert!(registry.histogram_count("net_server_rpc_seconds").unwrap() >= 1);
        assert!(
            registry
                .counter_value_labeled(
                    "net_server_rpc_errors_total",
                    &[("code", "21"), ("opcode", "PUBLISH")],
                )
                .unwrap()
                >= 1
        );
    }

    #[test]
    fn pool_gauge_states_share_one_series() {
        pool_connections("idle").add(2);
        pool_connections("in_use").add(1);
        let total = Registry::global()
            .gauge_value("net_client_pool_connections")
            .unwrap();
        assert!(total >= 3);
        pool_connections("idle").sub(2);
        pool_connections("in_use").sub(1);
    }
}
