//! Admin opcodes: the observability plane every wire server exposes.
//!
//! Opcodes `240..=255` are reserved for the plane (the operations
//! band); services never see them. A [`WireServer`] with
//! [`ServerConfig::admin`] enabled answers:
//!
//! * [`OP_METRICS`] — the process-wide telemetry registry rendered in
//!   Prometheus text exposition format.
//! * [`OP_HEALTH`] — a JSON liveness + readiness report (connection
//!   headroom, WAL recovery status, queue backlog, RPC error budget).
//! * [`OP_FLIGHT_DRAIN`] — the process-wide [`FlightRecorder`] ring as
//!   JSON Lines; body byte `1` drains (snapshot **and clear**), `0` or
//!   empty peeks.
//! * [`OP_SLOW_RPCS`] — the top-k slowest requests retained by the
//!   server's [`SlowRpcRing`], as JSON.
//!
//! Together these make a fleet of daemons scrapeable over the wire
//! protocol itself — no HTTP sidecar — which is what
//! [`crate::fleet`] and `xtask obs` build on. The paper's deployment
//! lesson is direct: the middleware that survived was the one whose
//! operators could *see* backlog, shed and loss per node, remotely,
//! while the experiment ran.
//!
//! [`WireServer`]: crate::server::WireServer
//! [`ServerConfig::admin`]: crate::server::ServerConfig::admin
//! [`FlightRecorder`]: mps_telemetry::trace::FlightRecorder

use crate::sync::Mutex;
use mps_telemetry::trace::FlightRecorder;
use mps_telemetry::Registry;
use std::collections::VecDeque;
use std::sync::PoisonError;
use std::time::Duration;

/// First opcode of the reserved admin band (`240..=255`). Opcodes below
/// this are dispatched to the [`crate::server::WireService`]; opcodes in
/// the band are handled by the server itself (or rejected when
/// [`crate::server::ServerConfig::admin`] is off).
pub const ADMIN_OPCODE_MIN: u8 = 240;

/// Admin: render the process-wide telemetry registry as Prometheus
/// text exposition format (UTF-8 response body).
pub const OP_METRICS: u8 = 250;

/// Admin: return the JSON health report (see [`health_json`]).
pub const OP_HEALTH: u8 = 251;

/// Admin: return the process-wide flight recorder as JSON Lines.
/// Request body byte `1` drains (snapshot and clear); anything else
/// peeks without clearing.
pub const OP_FLIGHT_DRAIN: u8 = 252;

/// Admin: return the top-k slowest retained RPCs as JSON. Request body
/// byte is `k` (`0`/empty means 10).
pub const OP_SLOW_RPCS: u8 = 253;

/// The mnemonic for an admin-band opcode, when it has one.
#[must_use]
pub fn admin_opcode_name(opcode: u8) -> Option<&'static str> {
    match opcode {
        OP_METRICS => Some("METRICS"),
        OP_HEALTH => Some("HEALTH"),
        OP_FLIGHT_DRAIN => Some("FLIGHT_DRAIN"),
        OP_SLOW_RPCS => Some("SLOW_RPCS"),
        crate::rpc::OP_SHUTDOWN => Some("SHUTDOWN"),
        _ => None,
    }
}

/// One slow request retained by a [`SlowRpcRing`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowRpc {
    /// Monotonic admission sequence (1-based, per ring).
    pub seq: u64,
    /// The request opcode.
    pub opcode: u8,
    /// The opcode's mnemonic at recording time (`"17"`-style decimal
    /// when the service named no mnemonic).
    pub name: String,
    /// Service time in microseconds (decode to response-encode).
    pub micros: u64,
    /// The response status the request was answered with.
    pub status: u8,
}

impl SlowRpc {
    fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"opcode\":{},\"name\":{},\"micros\":{},\"status\":{}}}",
            self.seq,
            self.opcode,
            json_string(&self.name),
            self.micros,
            self.status,
        )
    }
}

/// Serialises `s` as a JSON string literal (quotes, backslashes and
/// control characters escaped) — the same dependency-light discipline
/// as `SpanRecord::to_jsonl`.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A bounded, drop-oldest ring of the slowest requests a server has
/// answered.
///
/// Requests at or above the threshold are admitted in arrival order;
/// when the ring is full the oldest entry is dropped (and counted), so
/// memory stays bounded no matter how degraded the server gets — the
/// same drop-oldest discipline as the [`FlightRecorder`]. [`top_k`]
/// sorts the *retained* window by service time, so the answer is "the
/// worst of the recent past", not "the worst ever".
///
/// [`top_k`]: SlowRpcRing::top_k
#[derive(Debug)]
pub struct SlowRpcRing {
    threshold: Duration,
    capacity: usize,
    inner: Mutex<SlowInner>,
}

#[derive(Debug, Default)]
struct SlowInner {
    next_seq: u64,
    dropped: u64,
    entries: VecDeque<SlowRpc>,
}

impl SlowRpcRing {
    /// A ring retaining at most `capacity` entries (min 1), admitting
    /// requests that took at least `threshold`.
    #[must_use]
    pub fn new(capacity: usize, threshold: Duration) -> Self {
        SlowRpcRing {
            threshold,
            capacity: capacity.max(1),
            inner: Mutex::new(SlowInner::default()),
        }
    }

    /// The admission threshold.
    #[must_use]
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Offers one answered request to the ring; entries faster than the
    /// threshold are ignored.
    pub fn observe(&self, opcode: u8, name: &str, elapsed: Duration, status: u8) {
        if elapsed < self.threshold {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.next_seq += 1;
        let seq = inner.next_seq;
        if inner.entries.len() == self.capacity {
            inner.entries.pop_front();
            inner.dropped += 1;
        }
        inner.entries.push_back(SlowRpc {
            seq,
            opcode,
            name: name.to_owned(),
            micros: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
            status,
        });
    }

    /// Entries dropped to ring wrap-around.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped
    }

    /// The `k` slowest retained requests, slowest first (ties broken by
    /// recency — later admissions first).
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<SlowRpc> {
        let mut entries: Vec<SlowRpc> = self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .iter()
            .cloned()
            .collect();
        entries.sort_by(|a, b| b.micros.cmp(&a.micros).then(b.seq.cmp(&a.seq)));
        entries.truncate(k);
        entries
    }

    /// The [`OP_SLOW_RPCS`] response body: the top-k as a JSON document
    /// `{"threshold_us": …, "dropped": …, "slow": [ … ]}`.
    #[must_use]
    pub fn to_json(&self, k: usize) -> String {
        let slow: Vec<String> = self.top_k(k).iter().map(SlowRpc::to_json).collect();
        format!(
            "{{\"threshold_us\":{},\"dropped\":{},\"slow\":[{}]}}",
            u64::try_from(self.threshold.as_micros()).unwrap_or(u64::MAX),
            self.dropped(),
            slow.join(","),
        )
    }
}

/// Builds the [`OP_HEALTH`] response body.
///
/// `ready` is the server's own verdict (connection headroom remains);
/// everything else is read from the process-wide [`Registry`] and
/// [`FlightRecorder`], so one scrape answers the operator's first three
/// questions — is it up, is it keeping up, and has it been losing data:
///
/// ```json
/// {
///   "instance": "broker-a", "role": "broker",
///   "ready": true, "uptime_ms": 12345,
///   "connections": {"active": 3, "max": 64},
///   "wal": {"recoveries": 1, "torn_tail_truncations": 0, "open_segments": 4},
///   "queues": {"ready_depth": 17, "dlq_depth": 0},
///   "rpc": {"requests": 4211, "errors": 2},
///   "flight_recorder": {"recorded": 900, "dropped": 0, "capacity": 16384}
/// }
/// ```
#[must_use]
pub fn health_json(
    instance: &str,
    role: &str,
    ready: bool,
    active_connections: usize,
    max_connections: usize,
    uptime: Duration,
) -> String {
    let registry = Registry::global();
    let recorder = FlightRecorder::global();
    format!(
        "{{\"instance\":{},\"role\":{},\"ready\":{},\"uptime_ms\":{},\
         \"connections\":{{\"active\":{},\"max\":{}}},\
         \"wal\":{{\"recoveries\":{},\"torn_tail_truncations\":{},\"open_segments\":{}}},\
         \"queues\":{{\"ready_depth\":{},\"dlq_depth\":{}}},\
         \"rpc\":{{\"requests\":{},\"errors\":{}}},\
         \"flight_recorder\":{{\"recorded\":{},\"dropped\":{},\"capacity\":{}}}}}",
        json_string(instance),
        json_string(role),
        ready,
        u64::try_from(uptime.as_millis()).unwrap_or(u64::MAX),
        active_connections,
        max_connections,
        registry.counter_value("wal_recoveries_total").unwrap_or(0),
        registry
            .counter_value("wal_torn_tail_truncations_total")
            .unwrap_or(0),
        registry.gauge_value("wal_open_segments").unwrap_or(0),
        registry.gauge_value("broker_queue_depth").unwrap_or(0),
        registry.gauge_value("broker_dlq_depth").unwrap_or(0),
        registry
            .counter_value("net_server_requests_total")
            .unwrap_or(0),
        registry
            .counter_value("net_server_errors_total")
            .unwrap_or(0),
        recorder.recorded(),
        recorder.dropped(),
        recorder.capacity(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admin_opcodes_sit_in_the_reserved_band() {
        for op in [OP_METRICS, OP_HEALTH, OP_FLIGHT_DRAIN, OP_SLOW_RPCS] {
            assert!(op >= ADMIN_OPCODE_MIN);
            assert!(admin_opcode_name(op).is_some());
        }
        assert_eq!(admin_opcode_name(crate::rpc::OP_SHUTDOWN), Some("SHUTDOWN"));
        assert_eq!(admin_opcode_name(1), None);
    }

    #[test]
    fn slow_ring_admits_above_threshold_only() {
        let ring = SlowRpcRing::new(8, Duration::from_micros(100));
        ring.observe(1, "FAST", Duration::from_micros(10), 0);
        ring.observe(2, "SLOW", Duration::from_micros(200), 0);
        let top = ring.top_k(10);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].name, "SLOW");
        assert_eq!(top[0].micros, 200);
    }

    #[test]
    fn slow_ring_drops_oldest_and_ranks_by_latency() {
        let ring = SlowRpcRing::new(3, Duration::ZERO);
        for (op, us) in [(1u8, 50u64), (2, 400), (3, 100), (4, 300)] {
            ring.observe(op, "X", Duration::from_micros(us), 0);
        }
        // Capacity 3: the (1, 50µs) entry was dropped.
        assert_eq!(ring.dropped(), 1);
        let top = ring.top_k(2);
        assert_eq!(
            top.iter().map(|s| s.micros).collect::<Vec<_>>(),
            vec![400, 300]
        );
    }

    #[test]
    fn slow_ring_json_has_envelope_fields() {
        let ring = SlowRpcRing::new(4, Duration::ZERO);
        ring.observe(7, "GET", Duration::from_micros(42), 3);
        let json = ring.to_json(10);
        assert!(json.contains("\"threshold_us\":0"));
        assert!(json.contains("\"slow\":[{"));
        assert!(json.contains("\"name\":\"GET\""));
        assert!(json.contains("\"status\":3"));
    }

    /// Real threads racing observe/top_k/dropped — the ThreadSanitizer
    /// counterpart to the bounded loom model in `tests/loom.rs` (the CI
    /// tsan job selects tests matching `concurrent`).
    #[test]
    fn slow_ring_concurrent_observe_keeps_sequences_unique() {
        let ring = std::sync::Arc::new(SlowRpcRing::new(4, Duration::ZERO));
        let writers: Vec<_> = (0..4u8)
            .map(|tid| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        ring.observe(tid, "OP", Duration::from_micros(i + 1), 0);
                    }
                })
            })
            .collect();
        let reader = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let top = ring.top_k(4);
                    assert!(top.len() <= 4, "a read never tears past capacity");
                    let _ = ring.dropped();
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        // 200 admissions total: every sequence number was handed out
        // exactly once, and retained + dropped accounts for all of them.
        let top = ring.top_k(4);
        let mut seqs: Vec<u64> = top.iter().map(|s| s.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), top.len(), "sequence numbers are unique");
        assert_eq!(ring.dropped() + top.len() as u64, 200);
    }

    #[test]
    fn health_json_reports_identity_and_readiness() {
        let json = health_json("node-1", "broker", true, 2, 64, Duration::from_millis(1500));
        assert!(json.contains("\"instance\":\"node-1\""));
        assert!(json.contains("\"role\":\"broker\""));
        assert!(json.contains("\"ready\":true"));
        assert!(json.contains("\"uptime_ms\":1500"));
        assert!(json.contains("\"active\":2"));
        assert!(json.contains("\"max\":64"));
        // Registry-backed sections always present, even at zero.
        assert!(json.contains("\"wal\""));
        assert!(json.contains("\"queues\""));
        assert!(json.contains("\"flight_recorder\""));
    }
}
