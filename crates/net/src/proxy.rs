//! A fault-injecting TCP proxy for the wire protocol.
//!
//! [`SocketFaultProxy`] sits between a wire client and a wire server and
//! applies an [`mps_faults::FaultPlan`] *at the frame boundary* of the
//! client→server direction — the moral equivalent of [`mps_faults`]'s
//! `FaultyLink`, moved from the simulated radio link to an actual
//! socket. Faults are always **visible**: a dropped request tears the
//! TCP stream (the peer sees a torn frame / closed connection and the
//! client's retry machinery takes over), never a silently swallowed
//! call with a fabricated success.
//!
//! Action mapping, per request frame:
//!
//! * `Deliver` — forward the frame unchanged.
//! * `Drop` — forward a truncated prefix of the frame, then sever both
//!   directions. The server counts a torn frame; the client sees a
//!   transport error.
//! * `Delay` — hold the frame back (bounded by
//!   [`SocketFaultProxy::MAX_DELAY_MS`]) and then forward it.
//! * `Duplicate` — forwarded once, like `Deliver`: a duplicated *RPC
//!   frame* would desynchronise request/response correlation, and
//!   duplicate suppression belongs to the message layer (trace
//!   machinery), not the RPC layer. The plan still counts the decision.
//!
//! Handshake (`Hello`) frames always pass — the plan decides the fate
//! of *operations*, not of connection establishment; shed/refused
//! connections are the server's backpressure domain.

use crate::frame::{decode_frame, encode_frame, Decoded, FrameType, DEFAULT_MAX_FRAME_BYTES};
use crate::rpc::RequestEnvelope;
use mps_faults::{FaultAction, FaultPlan, FaultStats};
use mps_types::SimTime;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// A running proxy; stops when dropped or on [`SocketFaultProxy::stop`].
#[derive(Debug)]
pub struct SocketFaultProxy {
    addr: SocketAddr,
    plan: Arc<Mutex<FaultPlan>>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SocketFaultProxy {
    /// Ceiling on an injected delay, so a pathological dice roll cannot
    /// outlast client timeouts.
    pub const MAX_DELAY_MS: i64 = 2_000;

    /// Starts a proxy listening on `127.0.0.1:0`, forwarding to
    /// `upstream`, deciding each request frame's fate with `plan`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the listening socket cannot be bound.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> io::Result<SocketFaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let plan = Arc::new(Mutex::new(plan));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let plan = Arc::clone(&plan);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || accept_loop(&listener, upstream, &plan, &shutdown))
        };
        Ok(SocketFaultProxy {
            addr,
            plan,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should dial instead of the upstream.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The plan's conservation counters so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        match self.plan.lock() {
            Ok(plan) => plan.stats(),
            Err(poisoned) => poisoned.into_inner().stats(),
        }
    }

    /// Stops accepting and tears down forwarding threads.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SocketFaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &Arc<Mutex<FaultPlan>>,
    shutdown: &Arc<AtomicBool>,
) {
    let started = Instant::now();
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let Ok(server) = TcpStream::connect(upstream) else {
                    // Upstream down: refuse by closing — exactly what the
                    // client would see without a proxy in the middle.
                    continue;
                };
                let plan = Arc::clone(plan);
                let shutdown = Arc::clone(shutdown);
                let handle = thread::spawn(move || {
                    proxy_connection(client, server, &plan, &shutdown, started)
                });
                if let Ok(mut workers) = workers.lock() {
                    workers.retain(|w| !w.is_finished());
                    workers.push(handle);
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    let drained = match workers.lock() {
        Ok(mut workers) => workers.drain(..).collect::<Vec<_>>(),
        Err(poisoned) => poisoned.into_inner().drain(..).collect(),
    };
    for worker in drained {
        let _ = worker.join();
    }
}

fn proxy_connection(
    client: TcpStream,
    server: TcpStream,
    plan: &Arc<Mutex<FaultPlan>>,
    shutdown: &Arc<AtomicBool>,
    epoch: Instant,
) {
    let _ = client.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = server.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);

    // server→client: raw byte pump, no faults (responses tear with the
    // connection when a request is dropped; a lost-response direction
    // would make every drop ambiguous instead of attributable).
    let downstream = {
        let mut server = match server.try_clone() {
            Ok(clone) => clone,
            Err(_) => return,
        };
        let mut client = match client.try_clone() {
            Ok(clone) => clone,
            Err(_) => return,
        };
        let shutdown = Arc::clone(shutdown);
        thread::spawn(move || pump_raw(&mut server, &mut client, &shutdown))
    };

    forward_frames(client, server, plan, shutdown, epoch);
    let _ = downstream.join();
}

fn pump_raw(from: &mut TcpStream, to: &mut TcpStream, shutdown: &AtomicBool) {
    let mut chunk = [0u8; 16 * 1024];
    while !shutdown.load(Ordering::SeqCst) {
        match from.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&chunk[..n]).is_err() || to.flush().is_err() {
                    break;
                }
            }
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

fn forward_frames(
    mut client: TcpStream,
    mut server: TcpStream,
    plan: &Arc<Mutex<FaultPlan>>,
    shutdown: &Arc<AtomicBool>,
    epoch: Instant,
) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    'outer: while !shutdown.load(Ordering::SeqCst) {
        loop {
            match decode_frame(&buf, DEFAULT_MAX_FRAME_BYTES) {
                Decoded::Frame(frame, used) => {
                    buf.drain(..used);
                    let encoded = encode_frame(&frame);
                    let action = if frame.frame_type == FrameType::Request {
                        let route = RequestEnvelope::decode(&frame.payload)
                            .map(|req| format!("op{}", req.opcode))
                            .unwrap_or_else(|_| "op?".to_string());
                        let now = SimTime::from_millis(
                            epoch.elapsed().as_millis().min(i64::MAX as u128) as i64,
                        );
                        match plan.lock() {
                            Ok(mut plan) => plan.decide(&route, now),
                            Err(poisoned) => poisoned.into_inner().decide(&route, now),
                        }
                    } else {
                        FaultAction::Deliver
                    };
                    match action {
                        FaultAction::Deliver | FaultAction::Duplicate(_) => {
                            if server.write_all(&encoded).is_err() || server.flush().is_err() {
                                break 'outer;
                            }
                        }
                        FaultAction::Delay(by) => {
                            let ms = by.as_millis().clamp(0, SocketFaultProxy::MAX_DELAY_MS);
                            thread::sleep(Duration::from_millis(ms as u64));
                            if server.write_all(&encoded).is_err() || server.flush().is_err() {
                                break 'outer;
                            }
                        }
                        FaultAction::Drop(_) => {
                            // Tear the frame: half of it reaches the server,
                            // then both directions die. Loss is visible on
                            // both sides.
                            let _ = server.write_all(&encoded[..encoded.len() / 2]);
                            let _ = server.flush();
                            break 'outer;
                        }
                    }
                }
                Decoded::Invalid(_) => break 'outer,
                Decoded::End | Decoded::Torn => break,
            }
        }
        match client.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    let _ = server.shutdown(Shutdown::Both);
    let _ = client.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, ClientPool};
    use crate::server::{ServerConfig, ServiceError, WireServer, WireService};
    use mps_faults::FaultSpec;

    /// The `Echo` test service ignores its opcode; the byte is still
    /// named so no raw wire constant appears at a call site (L007).
    const OP_ECHO: u8 = 1;

    #[derive(Debug)]
    struct Echo;

    impl WireService for Echo {
        fn handle(
            &self,
            _opcode: u8,
            _headers: &[(String, String)],
            body: &[u8],
        ) -> Result<Vec<u8>, ServiceError> {
            Ok(body.to_vec())
        }
    }

    fn short_timeout() -> ClientConfig {
        ClientConfig {
            read_timeout: Duration::from_secs(2),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn transparent_proxy_passes_traffic() {
        let mut server =
            WireServer::bind("127.0.0.1:0", Arc::new(Echo), ServerConfig::default()).unwrap();
        let mut proxy =
            SocketFaultProxy::start(server.local_addr(), FaultPlan::new(7, FaultSpec::default()))
                .unwrap();
        let pool = ClientPool::new(proxy.local_addr().to_string(), short_timeout());
        for i in 0..10u8 {
            assert_eq!(pool.call(OP_ECHO, &[], &[i]).unwrap(), vec![i]);
        }
        assert_eq!(proxy.stats().decisions, 10);
        assert_eq!(proxy.stats().dropped, 0);
        proxy.stop();
        server.shutdown();
    }

    #[test]
    fn drops_are_visible_failures_and_recoverable_by_retry() {
        let mut server =
            WireServer::bind("127.0.0.1:0", Arc::new(Echo), ServerConfig::default()).unwrap();
        let spec = FaultSpec {
            drop_prob: 0.4,
            ..FaultSpec::default()
        };
        let mut proxy =
            SocketFaultProxy::start(server.local_addr(), FaultPlan::new(42, spec)).unwrap();
        let pool = ClientPool::new(proxy.local_addr().to_string(), short_timeout());
        let mut ok = 0usize;
        let mut failed = 0usize;
        for i in 0..30u8 {
            // The pool already retries once; with p=0.4 a double drop is
            // common enough that we retry at this level too, as any real
            // client of a lossy link would.
            let mut attempts = 0;
            loop {
                attempts += 1;
                match pool.call(OP_ECHO, &[], &[i]) {
                    Ok(reply) => {
                        assert_eq!(reply, vec![i]);
                        ok += 1;
                        break;
                    }
                    Err(_) if attempts < 8 => continue,
                    Err(_) => {
                        failed += 1;
                        break;
                    }
                }
            }
        }
        assert_eq!(failed, 0, "every call must eventually succeed");
        assert_eq!(ok, 30);
        let stats = proxy.stats();
        assert!(stats.dropped > 0, "the dice must have fired at p=0.4");
        proxy.stop();
        server.shutdown();
    }
}
