//! Fleet scraping: one view over N processes.
//!
//! A deployment of this middleware is several daemons — `mps-brokerd`,
//! `mps-docstored`, drivers — each exposing the admin opcodes
//! ([`crate::admin`]) on its wire port. This module is the scraper side:
//! dial every endpoint, pull metrics / health / flight-recorder spans /
//! slow RPCs, and merge them into one fleet-wide picture:
//!
//! * [`FleetSnapshot::merged_metrics`] — every instance's Prometheus
//!   text merged under an injected `instance` label, one preamble per
//!   family (what a real Prometheus would store after federation).
//! * [`FleetSnapshot::stitched`] — the instances' flight recorders
//!   merged on [`TraceId`] (span ids remapped per instance, so a trace
//!   whose hops ran in three processes reads as one tree).
//! * [`FleetSnapshot::conservation`] — the loss ledger over stitched
//!   traces: every terminated observation is stored, dead-lettered,
//!   quarantined, or attributed to an explicit loss outcome; the books
//!   must balance.
//! * [`FleetSnapshot::render_dashboard`] — the `xtask obs` text
//!   dashboard: fleet table, cross-process latency waterfall, loss
//!   attribution, top slow RPCs, and per-instance p99 vs the declared
//!   SLO budget.
//!
//! The paper's operational lesson drives the shape: during the
//! large-scale experiment the authors could not attribute loss per node
//! until they had *one* merged view; per-process logs each looked
//! healthy while the fleet lost data in the seams between them.
//!
//! [`TraceId`]: mps_telemetry::trace::TraceId

use crate::admin::{OP_FLIGHT_DRAIN, OP_HEALTH, OP_METRICS, OP_SLOW_RPCS};
use crate::client::{ClientConfig, ClientPool};
use mps_telemetry::trace::{
    merge_instance_spans, LatencyWaterfall, LossAttribution, Outcome, SpanRecord, TraceIndex,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One scrape target: a fleet-unique name plus a dialable address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// The instance name used for the injected `instance` label.
    pub name: String,
    /// The `host:port` the daemon listens on.
    pub addr: String,
}

impl Endpoint {
    /// Parses a `name=host:port` spec (a bare `host:port` names the
    /// instance after its address).
    ///
    /// # Errors
    ///
    /// Returns a message when either side is empty or the address has
    /// no port separator.
    pub fn parse(spec: &str) -> Result<Endpoint, String> {
        let (name, addr) = match spec.split_once('=') {
            Some((name, addr)) => (name.trim(), addr.trim()),
            None => (spec.trim(), spec.trim()),
        };
        if name.is_empty() || addr.is_empty() {
            return Err(format!("bad endpoint spec {spec:?} (want name=host:port)"));
        }
        if !addr.contains(':') {
            return Err(format!("endpoint address {addr:?} has no port"));
        }
        Ok(Endpoint {
            name: name.to_string(),
            addr: addr.to_string(),
        })
    }
}

/// Everything pulled from one instance in one scrape pass.
#[derive(Debug)]
pub struct InstanceScrape {
    /// The endpoint's fleet name.
    pub name: String,
    /// The address that was dialled.
    pub addr: String,
    /// The instance's Prometheus text exposition (empty on error).
    pub metrics: String,
    /// The parsed `OP_HEALTH` report (`Null` on error).
    pub health: serde_json::Value,
    /// The instance's flight-recorder spans.
    pub spans: Vec<SpanRecord>,
    /// The parsed `OP_SLOW_RPCS` report (`Null` on error).
    pub slow: serde_json::Value,
    /// The first scrape failure, when any admin call failed.
    pub error: Option<String>,
}

impl InstanceScrape {
    /// Whether the instance reported itself ready.
    #[must_use]
    pub fn ready(&self) -> bool {
        self.health["ready"].as_bool() == Some(true)
    }
}

/// A merged view over one scrape pass of the whole fleet.
#[derive(Debug)]
pub struct FleetSnapshot {
    /// Per-instance scrapes, in endpoint order.
    pub instances: Vec<InstanceScrape>,
}

/// The fleet-wide observation ledger computed from stitched traces.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Conservation {
    /// Traces whose primary terminal is `ok` (stored durably).
    pub stored: u64,
    /// Traces parked in a dead-letter queue.
    pub dead_lettered: u64,
    /// Traces diverted to quarantine.
    pub quarantined: u64,
    /// Traces lost to drops, black-holes or retry-queue shedding.
    pub lost: u64,
    /// Traces with no primary terminal (still in flight, or their spans
    /// were evicted from a recorder ring).
    pub unterminated: u64,
}

impl Conservation {
    /// Traces that arrived at *some* terminal accounting.
    #[must_use]
    pub fn terminated(&self) -> u64 {
        self.stored + self.dead_lettered + self.quarantined + self.lost
    }

    /// The books balance when every trace is accounted for:
    /// `stored + dlq + quarantined + lost == terminated` by
    /// construction, so the check that matters operationally is that
    /// nothing is left unterminated.
    #[must_use]
    pub fn balanced(&self) -> bool {
        self.unterminated == 0
    }
}

impl FleetSnapshot {
    /// Scrapes every endpoint once. `drain` forwards to
    /// [`OP_FLIGHT_DRAIN`]: `true` clears each instance's recorder
    /// after export (exactly-once span collection for pipelines of
    /// scrapers), `false` peeks.
    ///
    /// A dead endpoint still appears in the snapshot — with its error —
    /// so the dashboard shows the hole instead of silently shrinking.
    #[must_use]
    pub fn scrape(endpoints: &[Endpoint], config: &ClientConfig, drain: bool) -> FleetSnapshot {
        let instances = endpoints
            .iter()
            .map(|endpoint| scrape_instance(endpoint, config, drain))
            .collect();
        FleetSnapshot { instances }
    }

    /// Every instance's metrics merged under an injected `instance`
    /// label, grouped per family with one `# HELP`/`# TYPE` preamble.
    #[must_use]
    pub fn merged_metrics(&self) -> String {
        struct Family {
            preamble: Vec<String>,
            samples: Vec<String>,
        }
        let mut families: BTreeMap<String, Family> = BTreeMap::new();
        for instance in &self.instances {
            let mut current: Option<String> = None;
            for line in instance.metrics.lines() {
                if line.is_empty() {
                    continue;
                }
                if let Some(rest) = line.strip_prefix("# ") {
                    // "# HELP <name> …" / "# TYPE <name> <kind>"
                    let mut parts = rest.splitn(3, ' ');
                    let _marker = parts.next();
                    if let Some(name) = parts.next() {
                        let family = families.entry(name.to_string()).or_insert_with(|| Family {
                            preamble: Vec::new(),
                            samples: Vec::new(),
                        });
                        if !family.preamble.iter().any(|p| p == line) {
                            family.preamble.push(line.to_string());
                        }
                        current = Some(name.to_string());
                    }
                } else if let Some(name) = &current {
                    if let Some(family) = families.get_mut(name) {
                        if let Some(sample) = inject_instance_label(line, &instance.name) {
                            family.samples.push(sample);
                        }
                    }
                }
            }
        }
        let mut out = String::new();
        for family in families.values() {
            for line in &family.preamble {
                out.push_str(line);
                out.push('\n');
            }
            for line in &family.samples {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// The instances' spans merged into one id space (see
    /// [`merge_instance_spans`]): per-instance span ids are remapped,
    /// parents follow, and every span gains an `instance` attribute.
    #[must_use]
    pub fn merged_spans(&self) -> Vec<SpanRecord> {
        merge_instance_spans(
            self.instances
                .iter()
                .map(|i| (i.name.clone(), i.spans.clone()))
                .collect(),
        )
    }

    /// Cross-process traces stitched on trace id over the merged spans.
    #[must_use]
    pub fn stitched(&self) -> TraceIndex {
        TraceIndex::from_spans(self.merged_spans())
    }

    /// The fleet-wide observation ledger over stitched traces.
    #[must_use]
    pub fn conservation(&self) -> Conservation {
        let mut ledger = Conservation::default();
        for tree in self.stitched().iter() {
            match tree.terminal().map(|span| span.outcome) {
                Some(Outcome::Ok) => ledger.stored += 1,
                Some(Outcome::DeadLettered) => ledger.dead_lettered += 1,
                Some(Outcome::Quarantined) => ledger.quarantined += 1,
                Some(_) => ledger.lost += 1,
                None => ledger.unterminated += 1,
            }
        }
        ledger
    }

    /// The fleet's slow RPCs merged across instances, slowest first.
    /// Each row is `(instance, opcode name, micros, status)`.
    #[must_use]
    pub fn slow_rpcs(&self, k: usize) -> Vec<(String, String, u64, u64)> {
        let mut rows: Vec<(String, String, u64, u64)> = Vec::new();
        for instance in &self.instances {
            if let Some(entries) = instance.slow["slow"].as_array() {
                for entry in entries {
                    rows.push((
                        instance.name.clone(),
                        entry["name"].as_str().unwrap_or("?").to_string(),
                        entry["micros"].as_u64().unwrap_or(0),
                        entry["status"].as_u64().unwrap_or(0),
                    ));
                }
            }
        }
        rows.sort_by_key(|row| std::cmp::Reverse(row.2));
        rows.truncate(k);
        rows
    }

    /// The ops dashboard `xtask obs` prints: fleet table, stitched
    /// latency waterfall, loss attribution + conservation verdict, top
    /// slow RPCs, and per-instance server p99 against `slo_p99_ms`.
    #[must_use]
    pub fn render_dashboard(&self, slo_p99_ms: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== fleet ==");
        let _ = writeln!(
            out,
            "{:<12} {:<9} {:<6} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6}",
            "instance", "role", "ready", "uptime_ms", "rpcs", "errors", "conns", "queue", "dlq"
        );
        for i in &self.instances {
            if let Some(error) = &i.error {
                let _ = writeln!(out, "{:<12} UNREACHABLE {} ({})", i.name, i.addr, error);
                continue;
            }
            let _ = writeln!(
                out,
                "{:<12} {:<9} {:<6} {:>9} {:>9} {:>9} {:>3}/{:<3} {:>7} {:>6}",
                i.name,
                i.health["role"].as_str().unwrap_or("?"),
                if i.ready() { "yes" } else { "NO" },
                i.health["uptime_ms"].as_u64().unwrap_or(0),
                i.health["rpc"]["requests"].as_u64().unwrap_or(0),
                i.health["rpc"]["errors"].as_u64().unwrap_or(0),
                i.health["connections"]["active"].as_u64().unwrap_or(0),
                i.health["connections"]["max"].as_u64().unwrap_or(0),
                i.health["queues"]["ready_depth"].as_i64().unwrap_or(0),
                i.health["queues"]["dlq_depth"].as_i64().unwrap_or(0),
            );
        }

        let spans = self.merged_spans();
        if !spans.is_empty() {
            let _ = writeln!(out, "\n== cross-process latency waterfall ==");
            out.push_str(&LatencyWaterfall::from_spans(&spans).render());
            let _ = writeln!(out, "\n== loss attribution ==");
            out.push_str(&LossAttribution::from_spans(&spans).render());
        }
        let ledger = self.conservation();
        let _ = writeln!(
            out,
            "\n== conservation ==\nstored {} + dead-lettered {} + quarantined {} + lost {} = {} terminated; {} unterminated -> {}",
            ledger.stored,
            ledger.dead_lettered,
            ledger.quarantined,
            ledger.lost,
            ledger.terminated(),
            ledger.unterminated,
            if ledger.balanced() { "BALANCED" } else { "NOT BALANCED" },
        );

        let slow = self.slow_rpcs(10);
        if !slow.is_empty() {
            let _ = writeln!(out, "\n== top slow RPCs ==");
            let _ = writeln!(
                out,
                "{:<12} {:<24} {:>10} {:>6}",
                "instance", "opcode", "micros", "status"
            );
            for (instance, name, micros, status) in slow {
                let _ = writeln!(out, "{instance:<12} {name:<24} {micros:>10} {status:>6}");
            }
        }

        let _ = writeln!(out, "\n== SLO burn (server RPC p99 vs {slo_p99_ms} ms) ==");
        for i in &self.instances {
            match rpc_p99_seconds(&i.metrics) {
                Some(p99) => {
                    let p99_ms = p99 * 1000.0;
                    let burn = p99_ms / slo_p99_ms;
                    let _ = writeln!(
                        out,
                        "{:<12} p99 {:>10.3} ms  budget burn {:>6.2}x {}",
                        i.name,
                        p99_ms,
                        burn,
                        if burn > 1.0 { "OVER BUDGET" } else { "ok" },
                    );
                }
                None => {
                    let _ = writeln!(out, "{:<12} no RPC latency samples", i.name);
                }
            }
        }
        out
    }
}

fn scrape_instance(endpoint: &Endpoint, config: &ClientConfig, drain: bool) -> InstanceScrape {
    let pool = ClientPool::new(endpoint.addr.clone(), config.clone());
    let mut scrape = InstanceScrape {
        name: endpoint.name.clone(),
        addr: endpoint.addr.clone(),
        metrics: String::new(),
        health: serde_json::Value::Null,
        spans: Vec::new(),
        slow: serde_json::Value::Null,
        error: None,
    };
    let note = |error: String, slot: &mut Option<String>| {
        if slot.is_none() {
            *slot = Some(error);
        }
    };
    match pool.call(OP_METRICS, &[], b"") {
        Ok(body) => scrape.metrics = String::from_utf8_lossy(&body).into_owned(),
        Err(err) => note(format!("metrics: {err}"), &mut scrape.error),
    }
    match pool.call(OP_HEALTH, &[], b"") {
        Ok(body) => {
            scrape.health = serde_json::from_slice(&body).unwrap_or(serde_json::Value::Null);
        }
        Err(err) => note(format!("health: {err}"), &mut scrape.error),
    }
    match pool.call(OP_FLIGHT_DRAIN, &[], &[u8::from(drain)]) {
        Ok(body) => {
            scrape.spans = String::from_utf8_lossy(&body)
                .lines()
                .filter_map(SpanRecord::from_jsonl)
                .collect();
        }
        Err(err) => note(format!("flight-drain: {err}"), &mut scrape.error),
    }
    match pool.call(OP_SLOW_RPCS, &[], &[10]) {
        Ok(body) => {
            scrape.slow = serde_json::from_slice(&body).unwrap_or(serde_json::Value::Null);
        }
        Err(err) => note(format!("slow-rpcs: {err}"), &mut scrape.error),
    }
    scrape
}

/// Injects `instance="…"` as the first label of one Prometheus sample
/// line (`name{labels} value` or `name value`).
fn inject_instance_label(line: &str, instance: &str) -> Option<String> {
    let (series, value) = line.rsplit_once(' ')?;
    let labeled = match series.split_once('{') {
        Some((name, rest)) => format!("{name}{{instance=\"{instance}\",{rest}"),
        None => format!("{series}{{instance=\"{instance}\"}}"),
    };
    Some(format!("{labeled} {value}"))
}

/// Estimates the server-side RPC p99 in seconds from the cumulative
/// `net_server_rpc_seconds_bucket` lines of one instance's metrics
/// text, summed across opcodes. `None` without samples.
#[must_use]
pub fn rpc_p99_seconds(metrics: &str) -> Option<f64> {
    let mut buckets: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    for line in metrics.lines() {
        let Some(rest) = line.strip_prefix("net_server_rpc_seconds_bucket{") else {
            continue;
        };
        let (labels, value) = rest.rsplit_once("} ")?;
        let le = labels
            .split(',')
            .find_map(|label| label.strip_prefix("le=\""))?
            .trim_end_matches('"');
        let bound = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse::<f64>().ok()?
        };
        let count: u64 = value.trim().parse().ok()?;
        // Key by the bit pattern so +Inf sorts last and equal bounds
        // from different opcodes land in one cell.
        let entry = buckets.entry(bound.to_bits()).or_insert((bound, 0));
        entry.1 += count;
    }
    let total = buckets.values().map(|(_, n)| *n).max()?;
    if total == 0 {
        return None;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let target = ((total as f64) * 0.99).ceil() as u64;
    let mut p99 = f64::INFINITY;
    for (bound, cumulative) in buckets.values() {
        if *cumulative >= target {
            p99 = *bound;
            break;
        }
    }
    Some(p99)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, ServiceError, WireServer, WireService};
    use std::sync::Arc;

    #[test]
    fn endpoint_parse_accepts_named_and_bare_forms() {
        let named = Endpoint::parse("broker-a=127.0.0.1:7401").unwrap();
        assert_eq!(named.name, "broker-a");
        assert_eq!(named.addr, "127.0.0.1:7401");
        let bare = Endpoint::parse("127.0.0.1:7402").unwrap();
        assert_eq!(bare.name, bare.addr);
        assert!(Endpoint::parse("=1.2.3.4:5").is_err());
        assert!(Endpoint::parse("x=noport").is_err());
    }

    #[test]
    fn instance_label_is_injected_first() {
        assert_eq!(
            inject_instance_label("a_total 3", "n1").unwrap(),
            "a_total{instance=\"n1\"} 3"
        );
        assert_eq!(
            inject_instance_label("a_bucket{le=\"1\"} 2", "n1").unwrap(),
            "a_bucket{instance=\"n1\",le=\"1\"} 2"
        );
    }

    #[test]
    fn p99_reads_summed_cumulative_buckets() {
        let text = "\
net_server_rpc_seconds_bucket{opcode=\"A\",le=\"0.001\"} 90
net_server_rpc_seconds_bucket{opcode=\"A\",le=\"0.01\"} 99
net_server_rpc_seconds_bucket{opcode=\"A\",le=\"+Inf\"} 100
";
        let p99 = rpc_p99_seconds(text).unwrap();
        assert!((p99 - 0.01).abs() < 1e-9, "{p99}");
        assert!(rpc_p99_seconds("").is_none());
    }

    #[derive(Debug)]
    struct Nop;

    impl WireService for Nop {
        fn handle(
            &self,
            _opcode: u8,
            _headers: &[(String, String)],
            body: &[u8],
        ) -> Result<Vec<u8>, ServiceError> {
            Ok(body.to_vec())
        }

        fn role(&self) -> &'static str {
            "nop"
        }
    }

    #[test]
    fn scrape_merges_metrics_under_instance_labels() {
        let mut a = WireServer::bind(
            "127.0.0.1:0",
            Arc::new(Nop),
            ServerConfig {
                instance: "alpha".into(),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut b = WireServer::bind(
            "127.0.0.1:0",
            Arc::new(Nop),
            ServerConfig {
                instance: "beta".into(),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let endpoints = vec![
            Endpoint {
                name: "alpha".into(),
                addr: a.local_addr().to_string(),
            },
            Endpoint {
                name: "beta".into(),
                addr: b.local_addr().to_string(),
            },
        ];
        let snapshot = FleetSnapshot::scrape(&endpoints, &ClientConfig::default(), false);
        assert_eq!(snapshot.instances.len(), 2);
        assert!(snapshot.instances.iter().all(|i| i.error.is_none()));
        assert!(snapshot.instances.iter().all(InstanceScrape::ready));
        let merged = snapshot.merged_metrics();
        assert!(merged.contains("instance=\"alpha\""), "{merged}");
        assert!(merged.contains("instance=\"beta\""));
        // One preamble per family even with two instances contributing.
        assert_eq!(
            merged
                .matches("# TYPE net_server_requests_total counter")
                .count(),
            1
        );
        let dashboard = snapshot.render_dashboard(50.0);
        assert!(dashboard.contains("alpha"), "{dashboard}");
        assert!(dashboard.contains("beta"));
        assert!(dashboard.contains("== conservation =="));
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn dead_endpoints_surface_their_error() {
        let endpoints = vec![Endpoint {
            name: "ghost".into(),
            addr: "127.0.0.1:1".into(),
        }];
        let config = ClientConfig {
            read_timeout: std::time::Duration::from_millis(200),
            ..ClientConfig::default()
        };
        let snapshot = FleetSnapshot::scrape(&endpoints, &config, false);
        assert!(snapshot.instances[0].error.is_some());
        let dashboard = snapshot.render_dashboard(50.0);
        assert!(dashboard.contains("UNREACHABLE"), "{dashboard}");
    }
}
