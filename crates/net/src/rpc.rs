//! Request/response envelopes carried inside [`FrameType::Request`] and
//! [`FrameType::Response`] frames.
//!
//! A request payload is:
//!
//! ```text
//! u64 correlation | u8 opcode | u16 header count | (string key, string value)* | bytes body
//! ```
//!
//! and a response payload is:
//!
//! ```text
//! u64 correlation | u8 status | bytes body
//! ```
//!
//! Status `0` means success and `body` is the opcode-specific result;
//! any other status is an error code whose meaning (and body encoding)
//! the opcode table defines. Headers exist to carry cross-cutting
//! metadata — above all the [`mps_types::headers::TRACE_HEADER`] trace
//! context, which must ride *every* hop so loss attribution survives the
//! network boundary.
//!
//! [`FrameType::Request`]: crate::frame::FrameType::Request
//! [`FrameType::Response`]: crate::frame::FrameType::Response

use crate::wire::{WireError, WireReader, WireWriter};

/// Reserved opcode asking a server to finish in-flight work and stop
/// accepting connections. Answered with an empty success body before the
/// server begins shutting down.
pub const OP_SHUTDOWN: u8 = 255;

/// Response status signalling success.
pub const STATUS_OK: u8 = 0;

/// Response status for a request the server could not even decode
/// (malformed envelope). The body is a UTF-8 description.
pub const STATUS_BAD_REQUEST: u8 = 1;

/// A decoded request envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestEnvelope {
    /// Client-chosen id echoed back in the response.
    pub correlation: u64,
    /// Which operation to perform; opcode tables live in the API modules.
    pub opcode: u8,
    /// Cross-cutting metadata (trace context and friends).
    pub headers: Vec<(String, String)>,
    /// Opcode-specific argument bytes.
    pub body: Vec<u8>,
}

impl RequestEnvelope {
    /// Encodes the envelope to payload bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.correlation).u8(self.opcode);
        w.u16(self.headers.len() as u16);
        for (key, value) in &self.headers {
            w.string(key).string(value);
        }
        w.bytes(&self.body);
        w.finish()
    }

    /// Decodes an envelope from payload bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the payload is truncated, has invalid
    /// UTF-8 in a header, or carries trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<RequestEnvelope, WireError> {
        let mut r = WireReader::new(payload);
        let correlation = r.u64("correlation")?;
        let opcode = r.u8("opcode")?;
        let count = r.u16("header count")?;
        let mut headers = Vec::with_capacity(usize::from(count));
        for _ in 0..count {
            let key = r.string("header key")?;
            let value = r.string("header value")?;
            headers.push((key, value));
        }
        let body = r.bytes("body")?.to_vec();
        r.expect_end()?;
        Ok(RequestEnvelope {
            correlation,
            opcode,
            headers,
            body,
        })
    }
}

/// A decoded response envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseEnvelope {
    /// Echo of the request's correlation id.
    pub correlation: u64,
    /// [`STATUS_OK`] or an error code.
    pub status: u8,
    /// Result bytes on success, error-specific bytes otherwise.
    pub body: Vec<u8>,
}

impl ResponseEnvelope {
    /// Builds a success response.
    #[must_use]
    pub fn ok(correlation: u64, body: Vec<u8>) -> ResponseEnvelope {
        ResponseEnvelope {
            correlation,
            status: STATUS_OK,
            body,
        }
    }

    /// Builds an error response.
    #[must_use]
    pub fn error(correlation: u64, status: u8, body: Vec<u8>) -> ResponseEnvelope {
        ResponseEnvelope {
            correlation,
            status,
            body,
        }
    }

    /// Encodes the envelope to payload bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.correlation).u8(self.status).bytes(&self.body);
        w.finish()
    }

    /// Decodes an envelope from payload bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the payload is truncated or carries
    /// trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<ResponseEnvelope, WireError> {
        let mut r = WireReader::new(payload);
        let correlation = r.u64("correlation")?;
        let status = r.u8("status")?;
        let body = r.bytes("body")?.to_vec();
        r.expect_end()?;
        Ok(ResponseEnvelope {
            correlation,
            status,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = RequestEnvelope {
            correlation: 9000,
            opcode: 17,
            headers: vec![("x".into(), "y".into()), ("k".into(), String::new())],
            body: vec![1, 2, 3],
        };
        assert_eq!(RequestEnvelope::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn response_round_trips() {
        let resp = ResponseEnvelope::ok(1, b"result".to_vec());
        assert_eq!(ResponseEnvelope::decode(&resp.encode()).unwrap(), resp);
        let err = ResponseEnvelope::error(2, 40, b"queue gone".to_vec());
        assert_eq!(ResponseEnvelope::decode(&err.encode()).unwrap(), err);
    }

    #[test]
    fn truncated_request_is_rejected() {
        let bytes = RequestEnvelope {
            correlation: 1,
            opcode: 2,
            headers: vec![("a".into(), "b".into())],
            body: vec![9; 8],
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(RequestEnvelope::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
