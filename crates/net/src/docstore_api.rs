//! Docstore opcodes: the server-side [`DocstoreService`] and the
//! client-side [`RemoteStore`] / remote collection handles.
//!
//! Every collection operation carries its collection name as the first
//! field, so one connection serves any number of collections. Documents,
//! filters and updates travel as canonical JSON — filters via
//! [`mps_docstore::Filter::to_doc`], updates via
//! [`mps_docstore::Update::to_doc`] — making the payloads readable in a
//! wire capture and implementable without this codebase. The layouts are
//! specified normatively in `docs/WIRE_PROTOCOL.md` §6.

use crate::client::{ClientConfig, ClientPool, NetError};
use crate::rpc::STATUS_BAD_REQUEST;
use crate::server::{ServiceError, WireService};
use crate::wire::{WireError, WireReader, WireWriter};
use mps_docstore::{
    CollectionHandle, CollectionOps, DocId, DocstoreTransport, Filter, FindOptions, SortOrder,
    StoreError, Update,
};
use serde_json::{json, Value};
use std::fmt;
use std::sync::Arc;

/// Docstore opcode table (`1..=20`); see `docs/WIRE_PROTOCOL.md` §6.
pub mod op {
    /// `insert_one(coll, doc) -> id`
    pub const INSERT_ONE: u8 = 1;
    /// `insert_many(coll, docs) -> ids`
    pub const INSERT_MANY: u8 = 2;
    /// `get(coll, id) -> doc?`
    pub const GET: u8 = 3;
    /// `len(coll) -> count`
    pub const LEN: u8 = 4;
    /// `find(coll, filter) -> docs`
    pub const FIND: u8 = 5;
    /// `find_with_options(coll, filter, options) -> docs`
    pub const FIND_WITH_OPTIONS: u8 = 6;
    /// `count(coll, filter) -> count`
    pub const COUNT: u8 = 7;
    /// `update_many(coll, filter, update) -> modified`
    pub const UPDATE_MANY: u8 = 8;
    /// `delete_many(coll, filter) -> deleted`
    pub const DELETE_MANY: u8 = 9;
    /// `create_index(coll, path)`
    pub const CREATE_INDEX: u8 = 10;
    /// `drop_index(coll, path)`
    pub const DROP_INDEX: u8 = 11;
    /// `has_index(coll, path) -> bool`
    pub const HAS_INDEX: u8 = 12;
    /// `index_cardinality(coll, path) -> count?`
    pub const INDEX_CARDINALITY: u8 = 13;
    /// `distinct(coll, path, filter) -> values`
    pub const DISTINCT: u8 = 14;
    /// `clear(coll)`
    pub const CLEAR: u8 = 15;
    /// `all(coll) -> docs`
    pub const ALL: u8 = 16;
    /// `has_collection(name) -> bool`
    pub const HAS_COLLECTION: u8 = 17;
    /// `collection_names() -> names`
    pub const COLLECTION_NAMES: u8 = 18;
    /// `drop_collection(name)`
    pub const DROP_COLLECTION: u8 = 19;
    /// `total_documents() -> count`
    pub const TOTAL_DOCUMENTS: u8 = 20;
}

/// Docstore error status codes (`16..=23`); see `docs/WIRE_PROTOCOL.md` §7.
pub mod err {
    /// [`mps_docstore::StoreError::NotAnObject`]
    pub const NOT_AN_OBJECT: u8 = 16;
    /// [`mps_docstore::StoreError::BadFilter`]
    pub const BAD_FILTER: u8 = 17;
    /// [`mps_docstore::StoreError::BadUpdate`]
    pub const BAD_UPDATE: u8 = 18;
    /// [`mps_docstore::StoreError::BadPipeline`]
    pub const BAD_PIPELINE: u8 = 19;
    /// [`mps_docstore::StoreError::CollectionNotFound`]
    pub const COLLECTION_NOT_FOUND: u8 = 20;
    /// [`mps_docstore::StoreError::Unorderable`]
    pub const UNORDERABLE: u8 = 21;
    /// [`mps_docstore::StoreError::Durability`]
    pub const DURABILITY: u8 = 22;
    /// [`mps_docstore::StoreError::Transport`]
    pub const TRANSPORT: u8 = 23;
}

/// Encodes a [`StoreError`] as a wire status + payload.
#[must_use]
pub fn encode_store_error(error: &StoreError) -> ServiceError {
    let mut w = WireWriter::new();
    let code = match error {
        StoreError::NotAnObject => err::NOT_AN_OBJECT,
        StoreError::BadFilter(msg) => {
            w.string(msg);
            err::BAD_FILTER
        }
        StoreError::BadUpdate(msg) => {
            w.string(msg);
            err::BAD_UPDATE
        }
        StoreError::BadPipeline(msg) => {
            w.string(msg);
            err::BAD_PIPELINE
        }
        StoreError::CollectionNotFound(name) => {
            w.string(name);
            err::COLLECTION_NOT_FOUND
        }
        StoreError::Unorderable(path) => {
            w.string(path);
            err::UNORDERABLE
        }
        StoreError::Durability(msg) => {
            w.string(msg);
            err::DURABILITY
        }
        StoreError::Transport(msg) => {
            w.string(msg);
            err::TRANSPORT
        }
    };
    ServiceError {
        code,
        payload: w.finish(),
    }
}

/// Decodes a wire status + payload back into the exact [`StoreError`].
/// Unknown codes degrade to [`StoreError::Transport`].
#[must_use]
pub fn decode_store_error(code: u8, payload: &[u8]) -> StoreError {
    let mut r = WireReader::new(payload);
    let decoded = match code {
        err::NOT_AN_OBJECT => return StoreError::NotAnObject,
        err::BAD_FILTER => r.string("msg").map(StoreError::BadFilter),
        err::BAD_UPDATE => r.string("msg").map(StoreError::BadUpdate),
        err::BAD_PIPELINE => r.string("msg").map(StoreError::BadPipeline),
        err::COLLECTION_NOT_FOUND => r.string("name").map(StoreError::CollectionNotFound),
        err::UNORDERABLE => r.string("path").map(StoreError::Unorderable),
        err::DURABILITY => r.string("msg").map(StoreError::Durability),
        err::TRANSPORT => r.string("msg").map(StoreError::Transport),
        other => {
            return StoreError::Transport(format!(
                "unknown store error code {other}: {}",
                String::from_utf8_lossy(payload)
            ))
        }
    };
    decoded.unwrap_or_else(|wire| {
        StoreError::Transport(format!("undecodable store error {code}: {wire}"))
    })
}

fn encode_json(value: &Value) -> Vec<u8> {
    // `serde_json::Value` always serializes; fall back to `null` rather
    // than panicking if that invariant ever changes.
    serde_json::to_vec(value).unwrap_or_else(|_| b"null".to_vec())
}

fn decode_json(bytes: &[u8], what: &str) -> Result<Value, StoreError> {
    serde_json::from_slice(bytes)
        .map_err(|err| StoreError::Transport(format!("undecodable {what}: {err}")))
}

/// Encodes [`FindOptions`] as its canonical JSON document.
#[must_use]
pub fn find_options_to_doc(options: &FindOptions) -> Value {
    let sort = options.sort.as_ref().map(|(path, order)| {
        json!({
            "path": path,
            "order": match order {
                SortOrder::Ascending => "asc",
                SortOrder::Descending => "desc",
            },
        })
    });
    json!({
        "sort": sort,
        "skip": options.skip,
        "limit": options.limit,
        "projection": options.projection,
    })
}

/// Decodes [`FindOptions`] from its canonical JSON document.
///
/// # Errors
///
/// Returns [`StoreError::Transport`] on a malformed document.
pub fn find_options_from_doc(doc: &Value) -> Result<FindOptions, StoreError> {
    let bad = |what: &str| StoreError::Transport(format!("bad find options: {what}"));
    let sort_doc = doc.get("sort").unwrap_or(&Value::Null);
    let sort = if sort_doc.is_null() {
        None
    } else {
        let path = sort_doc
            .get("path")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("sort.path"))?;
        let order = match sort_doc.get("order").and_then(Value::as_str) {
            Some("asc") => SortOrder::Ascending,
            Some("desc") => SortOrder::Descending,
            _ => return Err(bad("sort.order")),
        };
        Some((path.to_string(), order))
    };
    let skip = doc
        .get("skip")
        .and_then(Value::as_u64)
        .ok_or_else(|| bad("skip"))? as usize;
    let limit_doc = doc.get("limit").unwrap_or(&Value::Null);
    let limit = if limit_doc.is_null() {
        None
    } else {
        Some(limit_doc.as_u64().ok_or_else(|| bad("limit"))? as usize)
    };
    let projection_doc = doc.get("projection").unwrap_or(&Value::Null);
    let projection = if projection_doc.is_null() {
        None
    } else {
        let paths = projection_doc
            .as_array()
            .ok_or_else(|| bad("projection"))?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad("projection entry"))
            })
            .collect::<Result<Vec<String>, StoreError>>()?;
        Some(paths)
    };
    Ok(FindOptions {
        sort,
        skip,
        limit,
        projection,
    })
}

fn encode_docs(docs: &[Value]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(docs.len() as u32);
    for doc in docs {
        w.bytes(&encode_json(doc));
    }
    w.finish()
}

fn decode_docs(payload: &[u8]) -> Result<Vec<Value>, StoreError> {
    let bad = |err: WireError| StoreError::Transport(format!("bad reply: {err}"));
    let mut r = WireReader::new(payload);
    let count = r.u32("doc count").map_err(bad)?;
    let mut docs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let bytes = r.bytes("doc").map_err(bad)?;
        docs.push(decode_json(bytes, "document")?);
    }
    r.expect_end().map_err(bad)?;
    Ok(docs)
}

// ---------------------------------------------------------------- server

/// Serves any [`DocstoreTransport`] — usually a local
/// [`mps_docstore::Store`] — over the wire protocol.
pub struct DocstoreService {
    inner: Arc<dyn DocstoreTransport>,
}

impl fmt::Debug for DocstoreService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DocstoreService").finish_non_exhaustive()
    }
}

impl DocstoreService {
    /// Wraps a transport for serving.
    #[must_use]
    pub fn new(inner: Arc<dyn DocstoreTransport>) -> DocstoreService {
        DocstoreService { inner }
    }

    fn read_filter(r: &mut WireReader<'_>) -> Result<Result<Filter, StoreError>, WireError> {
        let bytes = r.bytes("filter")?;
        Ok(decode_json(bytes, "filter").and_then(|doc| Filter::parse(&doc)))
    }

    fn dispatch(&self, opcode: u8, body: &[u8]) -> Result<Result<Vec<u8>, StoreError>, WireError> {
        let mut r = WireReader::new(body);
        let reply = match opcode {
            op::HAS_COLLECTION => {
                let name = r.string("collection")?;
                Ok(vec![u8::from(self.inner.has_collection(&name))])
            }
            op::COLLECTION_NAMES => {
                let names = self.inner.collection_names();
                let mut w = WireWriter::new();
                w.u32(names.len() as u32);
                for name in names {
                    w.string(&name);
                }
                Ok(w.finish())
            }
            op::DROP_COLLECTION => self
                .inner
                .drop_collection(&r.string("collection")?)
                .map(|()| Vec::new()),
            op::TOTAL_DOCUMENTS => {
                let mut w = WireWriter::new();
                w.u64(self.inner.total_documents() as u64);
                Ok(w.finish())
            }
            _ => {
                let name = r.string("collection")?;
                let coll = self.inner.collection(&name);
                self.dispatch_collection(opcode, &coll, &mut r)?
            }
        };
        r.expect_end()?;
        Ok(reply)
    }

    fn dispatch_collection(
        &self,
        opcode: u8,
        coll: &CollectionHandle,
        r: &mut WireReader<'_>,
    ) -> Result<Result<Vec<u8>, StoreError>, WireError> {
        let u64_reply = |value: Result<usize, StoreError>| {
            value.map(|n| {
                let mut w = WireWriter::new();
                w.u64(n as u64);
                w.finish()
            })
        };
        Ok(match opcode {
            op::INSERT_ONE => {
                let bytes = r.bytes("document")?;
                decode_json(bytes, "document")
                    .and_then(|doc| coll.insert_one(doc))
                    .map(|id| {
                        let mut w = WireWriter::new();
                        w.u64(id.0);
                        w.finish()
                    })
            }
            op::INSERT_MANY => {
                let count = r.u32("doc count")?;
                let mut docs = Vec::with_capacity(count as usize);
                let mut parse_failure = None;
                for _ in 0..count {
                    let bytes = r.bytes("document")?;
                    match decode_json(bytes, "document") {
                        Ok(doc) => docs.push(doc),
                        Err(err) => parse_failure = Some(err),
                    }
                }
                match parse_failure {
                    Some(err) => Err(err),
                    None => coll.insert_many(docs).map(|ids| {
                        let mut w = WireWriter::new();
                        w.u32(ids.len() as u32);
                        for id in ids {
                            w.u64(id.0);
                        }
                        w.finish()
                    }),
                }
            }
            op::GET => {
                let id = DocId(r.u64("doc id")?);
                let mut w = WireWriter::new();
                match coll.get(id) {
                    None => {
                        w.u8(0);
                    }
                    Some(doc) => {
                        w.u8(1).bytes(&encode_json(&doc));
                    }
                }
                Ok(w.finish())
            }
            op::LEN => {
                let mut w = WireWriter::new();
                w.u64(coll.len() as u64);
                Ok(w.finish())
            }
            op::FIND => Self::read_filter(r)?
                .and_then(|filter| coll.find(&filter))
                .map(|docs| encode_docs(&docs)),
            op::FIND_WITH_OPTIONS => {
                let filter = Self::read_filter(r)?;
                let options_bytes = r.bytes("find options")?;
                filter
                    .and_then(|filter| {
                        let options = decode_json(options_bytes, "find options")
                            .and_then(|doc| find_options_from_doc(&doc))?;
                        coll.find_with_options(&filter, &options)
                    })
                    .map(|docs| encode_docs(&docs))
            }
            op::COUNT => u64_reply(Self::read_filter(r)?.and_then(|filter| coll.count(&filter))),
            op::UPDATE_MANY => {
                let filter = Self::read_filter(r)?;
                let update_bytes = r.bytes("update")?;
                u64_reply(filter.and_then(|filter| {
                    let update =
                        decode_json(update_bytes, "update").and_then(|doc| Update::parse(&doc))?;
                    coll.update_many(&filter, &update)
                }))
            }
            op::DELETE_MANY => {
                u64_reply(Self::read_filter(r)?.and_then(|filter| coll.delete_many(&filter)))
            }
            op::CREATE_INDEX => coll.create_index(&r.string("path")?).map(|()| Vec::new()),
            op::DROP_INDEX => coll.drop_index(&r.string("path")?).map(|()| Vec::new()),
            op::HAS_INDEX => {
                let path = r.string("path")?;
                Ok(vec![u8::from(coll.has_index(&path))])
            }
            op::INDEX_CARDINALITY => {
                let path = r.string("path")?;
                let mut w = WireWriter::new();
                match coll.index_cardinality(&path) {
                    None => {
                        w.u8(0);
                    }
                    Some(cardinality) => {
                        w.u8(1).u64(cardinality as u64);
                    }
                }
                Ok(w.finish())
            }
            op::DISTINCT => {
                let path = r.string("path")?;
                Self::read_filter(r)?.map(|filter| encode_docs(&coll.distinct(&path, &filter)))
            }
            op::CLEAR => coll.clear().map(|()| Vec::new()),
            op::ALL => Ok(encode_docs(&coll.all())),
            other => {
                return Err(WireError::BadDiscriminant {
                    field: "docstore opcode",
                    value: other,
                })
            }
        })
    }
}

impl WireService for DocstoreService {
    fn handle(
        &self,
        opcode: u8,
        _headers: &[(String, String)],
        body: &[u8],
    ) -> Result<Vec<u8>, ServiceError> {
        match self.dispatch(opcode, body) {
            Ok(Ok(reply)) => Ok(reply),
            Ok(Err(store_error)) => Err(encode_store_error(&store_error)),
            Err(wire_error) => Err(ServiceError::msg(
                STATUS_BAD_REQUEST,
                &wire_error.to_string(),
            )),
        }
    }

    fn role(&self) -> &'static str {
        "docstore"
    }

    fn opcode_name(&self, opcode: u8) -> Option<&'static str> {
        Some(match opcode {
            op::INSERT_ONE => "INSERT_ONE",
            op::INSERT_MANY => "INSERT_MANY",
            op::GET => "GET",
            op::LEN => "LEN",
            op::FIND => "FIND",
            op::FIND_WITH_OPTIONS => "FIND_WITH_OPTIONS",
            op::COUNT => "COUNT",
            op::UPDATE_MANY => "UPDATE_MANY",
            op::DELETE_MANY => "DELETE_MANY",
            op::CREATE_INDEX => "CREATE_INDEX",
            op::DROP_INDEX => "DROP_INDEX",
            op::HAS_INDEX => "HAS_INDEX",
            op::INDEX_CARDINALITY => "INDEX_CARDINALITY",
            op::DISTINCT => "DISTINCT",
            op::CLEAR => "CLEAR",
            op::ALL => "ALL",
            op::HAS_COLLECTION => "HAS_COLLECTION",
            op::COLLECTION_NAMES => "COLLECTION_NAMES",
            op::DROP_COLLECTION => "DROP_COLLECTION",
            op::TOTAL_DOCUMENTS => "TOTAL_DOCUMENTS",
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------- client

/// A [`DocstoreTransport`] forwarding every call to a remote
/// [`DocstoreService`] over a shared [`ClientPool`].
#[derive(Debug)]
pub struct RemoteStore {
    pool: Arc<ClientPool>,
}

impl RemoteStore {
    /// Creates a remote store dialling `addr` lazily.
    #[must_use]
    pub fn connect(addr: impl Into<String>, config: ClientConfig) -> RemoteStore {
        RemoteStore {
            pool: Arc::new(ClientPool::new(addr, config)),
        }
    }

    fn transport_error(err: NetError) -> StoreError {
        match err {
            NetError::Remote { code, payload } => decode_store_error(code, &payload),
            other => StoreError::Transport(other.to_string()),
        }
    }

    fn call(&self, opcode: u8, body: Vec<u8>) -> Result<Vec<u8>, StoreError> {
        self.pool
            .call(opcode, &[], &body)
            .map_err(Self::transport_error)
    }
}

impl DocstoreTransport for RemoteStore {
    fn collection(&self, name: &str) -> CollectionHandle {
        CollectionHandle::new(Arc::new(RemoteCollection {
            pool: Arc::clone(&self.pool),
            name: name.to_string(),
        }))
    }

    fn has_collection(&self, name: &str) -> bool {
        let mut w = WireWriter::new();
        w.string(name);
        self.call(op::HAS_COLLECTION, w.finish())
            .map(|reply| reply.first().copied() == Some(1))
            .unwrap_or(false)
    }

    fn collection_names(&self) -> Vec<String> {
        let Ok(reply) = self.call(op::COLLECTION_NAMES, Vec::new()) else {
            return Vec::new();
        };
        let mut r = WireReader::new(&reply);
        let Ok(count) = r.u32("name count") else {
            return Vec::new();
        };
        let mut names = Vec::with_capacity(count as usize);
        for _ in 0..count {
            match r.string("name") {
                Ok(name) => names.push(name),
                Err(_) => return Vec::new(),
            }
        }
        names
    }

    fn drop_collection(&self, name: &str) -> Result<(), StoreError> {
        let mut w = WireWriter::new();
        w.string(name);
        self.call(op::DROP_COLLECTION, w.finish()).map(|_| ())
    }

    fn total_documents(&self) -> usize {
        let Ok(reply) = self.call(op::TOTAL_DOCUMENTS, Vec::new()) else {
            return 0;
        };
        let mut r = WireReader::new(&reply);
        r.u64("total").map(|n| n as usize).unwrap_or(0)
    }
}

/// One collection's operations forwarded over the wire; obtained via
/// [`RemoteStore::collection`] wrapped in a [`CollectionHandle`].
struct RemoteCollection {
    pool: Arc<ClientPool>,
    name: String,
}

impl fmt::Debug for RemoteCollection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteCollection")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl RemoteCollection {
    fn writer(&self) -> WireWriter {
        let mut w = WireWriter::new();
        w.string(&self.name);
        w
    }

    fn call(&self, opcode: u8, w: WireWriter) -> Result<Vec<u8>, StoreError> {
        self.pool
            .call(opcode, &[], &w.finish())
            .map_err(RemoteStore::transport_error)
    }

    fn call_u64(&self, opcode: u8, w: WireWriter) -> Result<usize, StoreError> {
        let reply = self.call(opcode, w)?;
        let mut r = WireReader::new(&reply);
        r.u64("result")
            .map(|n| n as usize)
            .map_err(|err| StoreError::Transport(format!("bad reply: {err}")))
    }
}

impl CollectionOps for RemoteCollection {
    fn insert_one(&self, doc: Value) -> Result<DocId, StoreError> {
        let mut w = self.writer();
        w.bytes(&encode_json(&doc));
        self.call_u64(op::INSERT_ONE, w).map(|id| DocId(id as u64))
    }

    fn insert_many(&self, docs: Vec<Value>) -> Result<Vec<DocId>, StoreError> {
        let mut w = self.writer();
        w.u32(docs.len() as u32);
        for doc in &docs {
            w.bytes(&encode_json(doc));
        }
        let reply = self.call(op::INSERT_MANY, w)?;
        let bad = |err: WireError| StoreError::Transport(format!("bad reply: {err}"));
        let mut r = WireReader::new(&reply);
        let count = r.u32("id count").map_err(bad)?;
        let mut ids = Vec::with_capacity(count as usize);
        for _ in 0..count {
            ids.push(DocId(r.u64("id").map_err(bad)?));
        }
        Ok(ids)
    }

    fn get(&self, id: DocId) -> Result<Option<Value>, StoreError> {
        let mut w = self.writer();
        w.u64(id.0);
        let reply = self.call(op::GET, w)?;
        let bad = |err: WireError| StoreError::Transport(format!("bad reply: {err}"));
        let mut r = WireReader::new(&reply);
        if r.u8("present").map_err(bad)? == 0 {
            return Ok(None);
        }
        let bytes = r.bytes("document").map_err(bad)?;
        decode_json(bytes, "document").map(Some)
    }

    fn len(&self) -> Result<usize, StoreError> {
        self.call_u64(op::LEN, self.writer())
    }

    fn find(&self, filter: &Filter) -> Result<Vec<Value>, StoreError> {
        let mut w = self.writer();
        w.bytes(&encode_json(&filter.to_doc()));
        decode_docs(&self.call(op::FIND, w)?)
    }

    fn find_with_options(
        &self,
        filter: &Filter,
        options: &FindOptions,
    ) -> Result<Vec<Value>, StoreError> {
        let mut w = self.writer();
        w.bytes(&encode_json(&filter.to_doc()));
        w.bytes(&encode_json(&find_options_to_doc(options)));
        decode_docs(&self.call(op::FIND_WITH_OPTIONS, w)?)
    }

    fn count(&self, filter: &Filter) -> Result<usize, StoreError> {
        let mut w = self.writer();
        w.bytes(&encode_json(&filter.to_doc()));
        self.call_u64(op::COUNT, w)
    }

    fn update_many(&self, filter: &Filter, update: &Update) -> Result<usize, StoreError> {
        let mut w = self.writer();
        w.bytes(&encode_json(&filter.to_doc()));
        w.bytes(&encode_json(&update.to_doc()));
        self.call_u64(op::UPDATE_MANY, w)
    }

    fn delete_many(&self, filter: &Filter) -> Result<usize, StoreError> {
        let mut w = self.writer();
        w.bytes(&encode_json(&filter.to_doc()));
        self.call_u64(op::DELETE_MANY, w)
    }

    fn create_index(&self, path: &str) -> Result<(), StoreError> {
        let mut w = self.writer();
        w.string(path);
        self.call(op::CREATE_INDEX, w).map(|_| ())
    }

    fn drop_index(&self, path: &str) -> Result<(), StoreError> {
        let mut w = self.writer();
        w.string(path);
        self.call(op::DROP_INDEX, w).map(|_| ())
    }

    fn has_index(&self, path: &str) -> Result<bool, StoreError> {
        let mut w = self.writer();
        w.string(path);
        let reply = self.call(op::HAS_INDEX, w)?;
        Ok(reply.first().copied() == Some(1))
    }

    fn index_cardinality(&self, path: &str) -> Result<Option<usize>, StoreError> {
        let mut w = self.writer();
        w.string(path);
        let reply = self.call(op::INDEX_CARDINALITY, w)?;
        let bad = |err: WireError| StoreError::Transport(format!("bad reply: {err}"));
        let mut r = WireReader::new(&reply);
        if r.u8("present").map_err(bad)? == 0 {
            return Ok(None);
        }
        Ok(Some(r.u64("cardinality").map_err(bad)? as usize))
    }

    fn distinct(&self, path: &str, filter: &Filter) -> Result<Vec<Value>, StoreError> {
        let mut w = self.writer();
        w.string(path);
        w.bytes(&encode_json(&filter.to_doc()));
        decode_docs(&self.call(op::DISTINCT, w)?)
    }

    fn clear(&self) -> Result<(), StoreError> {
        self.call(op::CLEAR, self.writer()).map(|_| ())
    }

    fn all(&self) -> Result<Vec<Value>, StoreError> {
        decode_docs(&self.call(op::ALL, self.writer())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, WireServer};
    use mps_docstore::Store;

    fn start_remote() -> (WireServer, RemoteStore) {
        let store: Arc<dyn DocstoreTransport> = Arc::new(Store::new());
        let server = WireServer::bind(
            "127.0.0.1:0",
            Arc::new(DocstoreService::new(store)),
            ServerConfig::default(),
        )
        .unwrap();
        let remote = RemoteStore::connect(server.local_addr().to_string(), ClientConfig::default());
        (server, remote)
    }

    #[test]
    fn documents_round_trip_over_tcp() {
        let (mut server, remote) = start_remote();
        let coll = remote.collection("obs");
        let id = coll
            .insert_one(json!({"spl": 61.5, "city": "paris"}))
            .unwrap();
        assert_eq!(coll.len(), 1);
        let doc = coll.get(id).unwrap();
        assert_eq!(doc.get("city"), Some(&json!("paris")));

        coll.insert_many(vec![
            json!({"spl": 40.0, "city": "paris"}),
            json!({"spl": 80.0, "city": "lyon"}),
        ])
        .unwrap();
        let loud = coll
            .find(&Filter::parse(&json!({"spl": {"$gte": 60}})).unwrap())
            .unwrap();
        assert_eq!(loud.len(), 2);

        let options = FindOptions::new()
            .sort("spl", SortOrder::Descending)
            .limit(1);
        let top = coll
            .find_with_options(&Filter::parse(&json!({})).unwrap(), &options)
            .unwrap();
        assert_eq!(top[0].get("spl"), Some(&json!(80.0)));

        assert!(remote.has_collection("obs"));
        assert!(!remote.has_collection("ghost"));
        assert_eq!(remote.total_documents(), 3);
        assert_eq!(remote.collection_names(), vec!["obs".to_string()]);
        server.shutdown();
    }

    #[test]
    fn updates_indexes_and_distinct_cross_the_wire() {
        let (mut server, remote) = start_remote();
        let coll = remote.collection("obs");
        for city in ["paris", "paris", "lyon"] {
            coll.insert_one(json!({"city": city, "n": 0.0})).unwrap();
        }
        let modified = coll
            .update_many(
                &Filter::parse(&json!({"city": "paris"})).unwrap(),
                &Update::inc("n", 5.0),
            )
            .unwrap();
        assert_eq!(modified, 2);
        assert_eq!(
            coll.count(&Filter::parse(&json!({"n": 5.0})).unwrap())
                .unwrap(),
            2
        );

        coll.create_index("city").unwrap();
        assert!(coll.has_index("city"));
        assert_eq!(coll.index_cardinality("city"), Some(2));
        let cities = coll.distinct("city", &Filter::parse(&json!({})).unwrap());
        assert_eq!(cities.len(), 2);
        coll.drop_index("city").unwrap();
        assert!(!coll.has_index("city"));

        let deleted = coll
            .delete_many(&Filter::parse(&json!({"city": "lyon"})).unwrap())
            .unwrap();
        assert_eq!(deleted, 1);
        coll.clear().unwrap();
        assert_eq!(coll.len(), 0);
        server.shutdown();
    }

    #[test]
    fn store_errors_come_back_typed() {
        let (mut server, remote) = start_remote();
        let coll = remote.collection("obs");
        assert_eq!(
            coll.insert_one(json!([1, 2, 3])).unwrap_err(),
            StoreError::NotAnObject
        );
        assert!(matches!(
            remote.drop_collection("ghost").unwrap_err(),
            StoreError::CollectionNotFound(_)
        ));
        server.shutdown();
    }

    #[test]
    fn find_options_doc_round_trips() {
        let options = FindOptions::new()
            .sort("spl", SortOrder::Descending)
            .skip(3)
            .limit(10)
            .project(vec!["spl".into(), "city".into()]);
        let doc = find_options_to_doc(&options);
        let back = find_options_from_doc(&doc).unwrap();
        assert_eq!(back.sort, options.sort);
        assert_eq!(back.skip, options.skip);
        assert_eq!(back.limit, options.limit);
        assert_eq!(back.projection, options.projection);

        let defaults =
            find_options_from_doc(&find_options_to_doc(&FindOptions::default())).unwrap();
        assert!(defaults.sort.is_none());
        assert_eq!(defaults.skip, 0);
    }

    #[test]
    fn error_codec_round_trips_every_variant() {
        let cases = vec![
            StoreError::NotAnObject,
            StoreError::BadFilter("f".into()),
            StoreError::BadUpdate("u".into()),
            StoreError::BadPipeline("p".into()),
            StoreError::CollectionNotFound("c".into()),
            StoreError::Unorderable("a.b".into()),
            StoreError::Durability("disk".into()),
            StoreError::Transport("refused".into()),
        ];
        for case in cases {
            let encoded = encode_store_error(&case);
            assert_eq!(decode_store_error(encoded.code, &encoded.payload), case);
        }
    }

    /// Every docstore opcode, by name: the dispatcher knows its
    /// mnemonic and no two opcodes share a value. mps-lint L006
    /// additionally cross-checks this table against
    /// `docs/WIRE_PROTOCOL.md` §6.
    #[test]
    fn opcode_table_is_complete_unique_and_named() {
        let store: Arc<dyn DocstoreTransport> = Arc::new(Store::new());
        let service = DocstoreService::new(store);
        let table: &[(u8, &str)] = &[
            (op::INSERT_ONE, "INSERT_ONE"),
            (op::INSERT_MANY, "INSERT_MANY"),
            (op::GET, "GET"),
            (op::LEN, "LEN"),
            (op::FIND, "FIND"),
            (op::FIND_WITH_OPTIONS, "FIND_WITH_OPTIONS"),
            (op::COUNT, "COUNT"),
            (op::UPDATE_MANY, "UPDATE_MANY"),
            (op::DELETE_MANY, "DELETE_MANY"),
            (op::CREATE_INDEX, "CREATE_INDEX"),
            (op::DROP_INDEX, "DROP_INDEX"),
            (op::HAS_INDEX, "HAS_INDEX"),
            (op::INDEX_CARDINALITY, "INDEX_CARDINALITY"),
            (op::DISTINCT, "DISTINCT"),
            (op::CLEAR, "CLEAR"),
            (op::ALL, "ALL"),
            (op::HAS_COLLECTION, "HAS_COLLECTION"),
            (op::COLLECTION_NAMES, "COLLECTION_NAMES"),
            (op::DROP_COLLECTION, "DROP_COLLECTION"),
            (op::TOTAL_DOCUMENTS, "TOTAL_DOCUMENTS"),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for &(opcode, name) in table {
            assert_eq!(
                service.opcode_name(opcode),
                Some(name),
                "mnemonic of {name}"
            );
            assert!(seen.insert(opcode), "opcode value of {name} collides");
            assert!(
                (1..=20).contains(&opcode),
                "{name} outside the docstore band"
            );
        }
        assert_eq!(seen.len(), 20, "every §6 opcode is present");
    }
}
