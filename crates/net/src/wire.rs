//! Primitive field encoding inside frame payloads.
//!
//! Frame payloads are flat sequences of little-endian fixed-width
//! integers and `u32`-length-prefixed byte strings — no self-describing
//! envelope, no varints. The opcode tables in [`crate::broker_api`] and
//! [`crate::docstore_api`] define which fields appear in which order;
//! `docs/WIRE_PROTOCOL.md` is the normative reference.

use std::fmt;

/// A field-level decoding failure inside an already checksum-verified
/// payload — always a protocol bug or version skew, never line noise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field was complete.
    Truncated {
        /// What the reader was trying to decode.
        field: &'static str,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// Payload bytes remained after the last expected field.
    TrailingBytes(usize),
    /// A discriminant byte had no defined meaning.
    BadDiscriminant {
        /// What the discriminant selects.
        field: &'static str,
        /// The offending value.
        value: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { field } => write!(f, "payload truncated reading {field}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} unexpected trailing bytes"),
            WireError::BadDiscriminant { field, value } => {
                write!(f, "bad discriminant {value} for {field}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Appends wire-encoded fields to a byte vector.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Starts an empty payload.
    #[must_use]
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Finishes and returns the encoded payload.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Appends a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(v);
        self
    }
}

/// Reads wire-encoded fields off the front of a payload slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wraps a payload for reading.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len()))
        }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated { field });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the payload is exhausted.
    pub fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, field)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the payload is exhausted.
    pub fn u16(&mut self, field: &'static str) -> Result<u16, WireError> {
        let bytes = self.take(2, field)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the payload is exhausted.
    pub fn u32(&mut self, field: &'static str) -> Result<u32, WireError> {
        let bytes = self.take(4, field)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the payload is exhausted.
    pub fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        let bytes = self.take(8, field)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the payload is exhausted.
    pub fn i64(&mut self, field: &'static str) -> Result<i64, WireError> {
        let bytes = self.take(8, field)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(i64::from_le_bytes(arr))
    }

    /// Reads a `u32`-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the payload is exhausted.
    pub fn bytes(&mut self, field: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.u32(field)? as usize;
        self.take(len, field)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on exhaustion or
    /// [`WireError::BadUtf8`] on invalid UTF-8.
    pub fn string(&mut self, field: &'static str) -> Result<String, WireError> {
        let bytes = self.bytes(field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_string_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(u64::MAX)
            .i64(-42)
            .string("città")
            .bytes(b"\x00\xff");
        let buf = w.finish();

        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 300);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), u64::MAX);
        assert_eq!(r.i64("e").unwrap(), -42);
        assert_eq!(r.string("f").unwrap(), "città");
        assert_eq!(r.bytes("g").unwrap(), b"\x00\xff");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_names_the_field() {
        let mut r = WireReader::new(&[1, 0]);
        assert_eq!(
            r.u32("queue_depth"),
            Err(WireError::Truncated {
                field: "queue_depth"
            })
        );
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut w = WireWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.string("s"), Err(WireError::BadUtf8));
    }

    #[test]
    fn trailing_bytes_are_flagged() {
        let mut w = WireWriter::new();
        w.u8(1).u8(2);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let _ = r.u8("first").unwrap();
        assert_eq!(r.expect_end(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn string_length_beyond_payload_truncates() {
        // Length prefix says 100 bytes but only 2 follow.
        let mut buf = 100u32.to_le_bytes().to_vec();
        buf.extend_from_slice(b"ab");
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.bytes("s"), Err(WireError::Truncated { .. })));
    }
}
