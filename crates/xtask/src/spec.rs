//! Parses the normative wire-protocol spec tables for L006.
//!
//! The spec (`docs/WIRE_PROTOCOL.md`) carries machine-readable markdown
//! tables; this module extracts them into [`SpecRow`]s without any
//! markdown dependency. Four table shapes are recognised by their
//! header cells:
//!
//! * `| byte | type | … |` — frame types (band `frame`);
//! * `| status | name | … |` — handshake statuses (band `handshake`);
//! * `| op | name | request body | success reply |` — an opcode table,
//!   attributed to the configured role whose name appears in the
//!   nearest enclosing heading (band `<role> op`);
//! * `| code | error | … |` — an error-code table, attributed to the
//!   role named in the closest preceding prose line containing
//!   "<role> error" (band `<role> err`).
//!
//! Tables that match none of these shapes (or that cannot be attributed
//! to a configured role) are ignored, so the spec may freely contain
//! other tables. Error names are written CamelCase in the spec and
//! normalised to `SCREAMING_SNAKE` to match the declared constants.

/// One parsed normative table row, anchored to its spec line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecRow {
    /// Band key: `frame`, `handshake`, `<role> op`, or `<role> err`.
    pub band: String,
    /// Constant-shaped name (error names already normalised).
    pub name: String,
    /// The name exactly as written in the spec.
    pub display_name: String,
    /// The declared numeric value.
    pub value: i64,
    /// Request-body cell (opcode tables only; empty otherwise).
    pub request: String,
    /// Success-reply cell (opcode tables only; empty otherwise).
    pub reply: String,
    /// 1-based spec line of the row.
    pub line: u32,
    /// 1-based column of the name within the row.
    pub col: u32,
    /// Caret width for the name.
    pub len: u32,
}

/// A row the parser had to skip (bad number, missing cells); reported
/// by L006 so typos in the spec itself cannot hide.
#[derive(Debug, Clone)]
pub struct SpecProblem {
    /// 1-based spec line.
    pub line: u32,
    /// What is wrong with the row.
    pub message: String,
}

/// Splits a markdown table line into trimmed cells.
fn cells(line: &str) -> Vec<String> {
    line.trim()
        .trim_start_matches('|')
        .trim_end_matches('|')
        .split('|')
        .map(|c| c.trim().to_owned())
        .collect()
}

/// Is this a `|---|---|` separator line?
fn is_separator(line: &str) -> bool {
    let trimmed = line.trim();
    trimmed.starts_with('|') && trimmed.chars().all(|c| matches!(c, '|' | '-' | ':' | ' '))
}

/// Strips surrounding whitespace from a cell, unwrapping a single
/// enclosing backtick pair (`` `NAME` `` → `NAME`). Cells with interior
/// backticks (prose such as ``empty or `u8 k` ``) are kept verbatim so
/// the markup stays balanced when re-rendered.
fn clean(cell: &str) -> String {
    let trimmed = cell.trim();
    match trimmed.strip_prefix('`').and_then(|s| s.strip_suffix('`')) {
        Some(inner) if !inner.contains('`') => inner.trim().to_owned(),
        _ => trimmed.to_owned(),
    }
}

/// `CamelCase` → `SCREAMING_SNAKE`; names already containing `_` or all
/// uppercase pass through unchanged.
pub fn normalize_name(name: &str) -> String {
    if name.contains('_') || name.chars().all(|c| !c.is_ascii_lowercase()) {
        return name.to_owned();
    }
    let mut out = String::new();
    let mut prev_lower = false;
    for c in name.chars() {
        if c.is_ascii_uppercase() && prev_lower {
            out.push('_');
        }
        prev_lower = c.is_ascii_lowercase() || c.is_ascii_digit();
        out.push(c.to_ascii_uppercase());
    }
    out
}

/// What kind of normative table a header row announces.
enum TableKind {
    Frame,
    Handshake,
    Opcode,
    Error,
}

fn classify(header: &[String]) -> Option<TableKind> {
    let h: Vec<String> = header.iter().map(|c| c.to_ascii_lowercase()).collect();
    match (h.first().map(String::as_str), h.get(1).map(String::as_str)) {
        (Some("byte"), Some("type")) => Some(TableKind::Frame),
        (Some("status"), Some("name")) => Some(TableKind::Handshake),
        (Some("op"), Some("name")) => Some(TableKind::Opcode),
        (Some("code"), Some("error")) => Some(TableKind::Error),
        _ => None,
    }
}

/// First configured role (in order) whose name appears in `context`.
fn attribute<'a>(context: &str, roles: &'a [String]) -> Option<&'a str> {
    let lower = context.to_ascii_lowercase();
    roles
        .iter()
        .find(|r| lower.contains(&r.to_ascii_lowercase()))
        .map(String::as_str)
}

/// Parses every recognised table in `doc`. `roles` is the ordered list
/// of service roles from the config (everything in `wire_api` except
/// `frame` and `handshake`).
pub fn parse(doc: &str, roles: &[String]) -> (Vec<SpecRow>, Vec<SpecProblem>) {
    let mut rows = Vec::new();
    let mut problems = Vec::new();
    let mut heading = String::new();
    let mut prose = String::new();
    let mut in_fence = false;
    let mut table: Option<(TableKind, Option<String>)> = None; // kind + role

    for (idx, raw) in doc.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let trimmed = raw.trim();
        if trimmed.starts_with("```") {
            in_fence = !in_fence;
            table = None;
            continue;
        }
        if in_fence {
            continue;
        }
        if trimmed.starts_with('#') {
            heading = trimmed.to_owned();
            prose.clear();
            table = None;
            continue;
        }
        if !trimmed.starts_with('|') {
            table = None;
            if !trimmed.is_empty() {
                prose = trimmed.to_owned();
            }
            continue;
        }
        if is_separator(raw) {
            continue;
        }
        let row_cells = cells(raw);
        let Some((kind, role)) = table.as_ref() else {
            // This is a header row: classify and attribute the table.
            if let Some(kind) = classify(&row_cells) {
                let role = match kind {
                    TableKind::Opcode => attribute(&heading, roles).map(str::to_owned),
                    TableKind::Error => attribute(&prose, roles)
                        .or_else(|| attribute(&heading, roles))
                        .map(str::to_owned),
                    TableKind::Frame | TableKind::Handshake => None,
                };
                table = Some((kind, role));
            } else {
                // Not a normative table; swallow its body rows.
                table = Some((TableKind::Frame, Some(String::new())));
                // A sentinel role ("") marks "ignore this table".
            }
            continue;
        };
        let band = match (kind, role) {
            (TableKind::Frame, None) => "frame".to_owned(),
            (TableKind::Handshake, None) => "handshake".to_owned(),
            (TableKind::Opcode, Some(r)) if !r.is_empty() => format!("{r} op"),
            (TableKind::Error, Some(r)) if !r.is_empty() => format!("{r} err"),
            _ => continue, // unattributable or ignored table
        };
        let (value_cell, name_cell) = match (row_cells.first(), row_cells.get(1)) {
            (Some(v), Some(n)) => (clean(v), clean(n)),
            _ => {
                problems.push(SpecProblem {
                    line: line_no,
                    message: format!("table row with fewer than two cells: `{trimmed}`"),
                });
                continue;
            }
        };
        let Ok(value) = value_cell.parse::<i64>() else {
            problems.push(SpecProblem {
                line: line_no,
                message: format!("unparsable value `{value_cell}` in band `{band}`"),
            });
            continue;
        };
        if name_cell.is_empty() {
            problems.push(SpecProblem {
                line: line_no,
                message: format!("row with value {value} in band `{band}` has an empty name"),
            });
            continue;
        }
        let col = raw.find(&name_cell).map(|p| p as u32 + 1).unwrap_or(1);
        // Only error names are CamelCase in the spec; every other band
        // writes the constant name verbatim.
        let name = if band.ends_with(" err") {
            normalize_name(&name_cell)
        } else {
            name_cell.clone()
        };
        rows.push(SpecRow {
            band,
            name,
            display_name: name_cell.clone(),
            value,
            request: row_cells.get(2).map(|c| clean(c)).unwrap_or_default(),
            reply: row_cells.get(3).map(|c| clean(c)).unwrap_or_default(),
            line: line_no,
            col,
            len: name_cell.chars().count() as u32,
        });
    }
    (rows, problems)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
# Wire protocol

## 2. Frames

| byte | type | direction | payload |
|---|---|---|---|
| 1 | `Hello` | client → server | none |
| 2 | `HelloAck` | server → client | status |

## 3. Handshake

| status | name | meaning |
|---|---|---|
| 0 | `HELLO_OK` | accepted |
| 1 | `HELLO_SHED` | shed |

## 5. Broker opcodes

| op | name | request body | success reply |
|---|---|---|---|
| 1 | `DECLARE_EXCHANGE` | `str name` | empty |
| 7 | `PUBLISH` | `str key` | `u64 fanout` |

## 7. Error codes

Broker error codes (body layouts in parentheses):

| code | error | body |
|---|---|---|
| 16 | `ExchangeNotFound` | `str` |

```text
| op | name | request body | success reply |
| 99 | `FENCED_OFF` | ignored | ignored |
```

## 9. Admin band (opcodes 240-255)

| op | name | request body | success reply |
|---|---|---|---|
| 250 | `OP_METRICS` | empty | `str` |
";

    fn roles() -> Vec<String> {
        vec!["broker".to_owned(), "admin".to_owned()]
    }

    #[test]
    fn parses_all_four_table_shapes() {
        let (rows, problems) = parse(DOC, &roles());
        assert!(problems.is_empty(), "{problems:?}");
        let bands: Vec<&str> = rows.iter().map(|r| r.band.as_str()).collect();
        assert!(bands.contains(&"frame"));
        assert!(bands.contains(&"handshake"));
        assert!(bands.contains(&"broker op"));
        assert!(bands.contains(&"broker err"));
        assert!(bands.contains(&"admin op"));
        // The fenced table must not leak through.
        assert!(!rows.iter().any(|r| r.name == "FENCED_OFF"));
    }

    #[test]
    fn opcode_rows_carry_request_and_reply_shapes() {
        let (rows, _) = parse(DOC, &roles());
        let publish = rows.iter().find(|r| r.name == "PUBLISH").unwrap();
        assert_eq!(publish.band, "broker op");
        assert_eq!(publish.value, 7);
        assert_eq!(publish.request, "str key");
        assert_eq!(publish.reply, "u64 fanout");
    }

    #[test]
    fn error_names_normalise_to_screaming_snake() {
        let (rows, _) = parse(DOC, &roles());
        let err = rows.iter().find(|r| r.band == "broker err").unwrap();
        assert_eq!(err.name, "EXCHANGE_NOT_FOUND");
        assert_eq!(err.display_name, "ExchangeNotFound");
        assert_eq!(err.value, 16);
    }

    #[test]
    fn rows_are_span_anchored() {
        let (rows, _) = parse(DOC, &roles());
        let hello = rows.iter().find(|r| r.name == "Hello").unwrap();
        let line = DOC.lines().nth(hello.line as usize - 1).unwrap();
        let start = (hello.col - 1) as usize;
        assert_eq!(&line[start..start + hello.len as usize], "Hello");
    }

    #[test]
    fn bad_values_become_problems_not_rows() {
        let doc = "| op | name | request body | success reply |\n\
                   |---|---|---|---|\n\
                   | seven | `X` | a | b |\n";
        // Attribution comes from the (empty) heading — so give the
        // parser a heading naming the role.
        let doc = format!("## Broker opcodes\n\n{doc}");
        let (rows, problems) = parse(&doc, &roles());
        assert!(rows.is_empty());
        assert_eq!(problems.len(), 1);
        assert!(problems[0].message.contains("seven"));
    }

    #[test]
    fn normalize_name_cases() {
        assert_eq!(normalize_name("ExchangeNotFound"), "EXCHANGE_NOT_FOUND");
        assert_eq!(normalize_name("Transport"), "TRANSPORT");
        assert_eq!(normalize_name("HELLO_OK"), "HELLO_OK");
        assert_eq!(normalize_name("OP_METRICS"), "OP_METRICS");
        assert_eq!(normalize_name("Hello"), "HELLO");
    }
}
