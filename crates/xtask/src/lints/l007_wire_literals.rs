//! L007 — wire-constant confinement: usage sites name their opcodes.
//!
//! A raw integer in opcode position (`self.call(7, body)`,
//! `opcode == 9`, `RpcFrame { opcode: 17, … }`) is a protocol fact the
//! compiler cannot connect to its declaration: when the spec renumbers,
//! the literal silently keeps speaking the old protocol — the exact
//! drift the paper blames for silent data loss between deployed
//! versions. Mirroring L005's header-key confinement, integer literals
//! in wire positions are only allowed inside the declaring api modules
//! (the `wire_api` files from `mps-lint.toml`); everywhere else —
//! clients, servers, the fleet scraper, *and tests* — the constant must
//! be named so renumbering is one edit.
//!
//! Three syntactic patterns are flagged:
//!
//! * a numeric literal as the **first argument** of an opcode-taking
//!   call helper (`.call(`, `.call_unit(`, `.call_u64(`, `.call_bool(`,
//!   `.call_with_headers(`);
//! * a comparison of an `opcode`/`frame_type` identifier against a
//!   numeric literal (either side of `==`/`!=`);
//! * a struct-literal field init `opcode: <num>` / `frame_type: <num>`.
//!
//! Unlike most lints, L007 deliberately applies to test code: tests
//! that hard-code `9` keep passing when the constant moves, which is
//! how conformance suites rot.

use crate::config::Config;
use crate::findings::{Finding, LintId};
use crate::lexer::TokenKind;
use crate::lints::is_punct;
use crate::scan::SourceFile;

/// Call helpers whose first argument is an opcode byte.
const OPCODE_CALLS: &[&str] = &[
    "call",
    "call_unit",
    "call_u64",
    "call_bool",
    "call_with_headers",
];

/// Identifiers whose comparison/field value is a wire constant.
const WIRE_IDENTS: &[&str] = &["opcode", "frame_type"];

/// Runs L007 over one file.
pub fn check(file: &SourceFile, config: &Config, findings: &mut Vec<Finding>) {
    // The declaring api modules may spell out raw values (that is where
    // the numbers live, including deliberate raw-byte codec tests).
    if config
        .wire_api
        .iter()
        .any(|(_, path)| path == &file.rel_path)
    {
        return;
    }
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        let tok = &tokens[i];
        // `.call*(<num>` — opcode literal as first call argument.
        if tok.kind == TokenKind::Ident
            && OPCODE_CALLS.contains(&tok.text.as_str())
            && is_punct(tokens, i.wrapping_sub(1), '.')
            && is_punct(tokens, i + 1, '(')
        {
            if let Some(num) = tokens.get(i + 2).filter(|t| t.kind == TokenKind::Num) {
                report(file, num, &tok.text, findings);
            }
        }
        if tok.kind != TokenKind::Ident || !WIRE_IDENTS.contains(&tok.text.as_str()) {
            continue;
        }
        // `opcode == <num>` / `opcode != <num>`.
        if (is_punct(tokens, i + 1, '=') && is_punct(tokens, i + 2, '='))
            || (is_punct(tokens, i + 1, '!') && is_punct(tokens, i + 2, '='))
        {
            if let Some(num) = tokens.get(i + 3).filter(|t| t.kind == TokenKind::Num) {
                report(file, num, &tok.text, findings);
            }
        }
        // `<num> == opcode` / `<num> != opcode`.
        if is_punct(tokens, i.wrapping_sub(1), '=')
            && (is_punct(tokens, i.wrapping_sub(2), '=')
                || is_punct(tokens, i.wrapping_sub(2), '!'))
        {
            // `a != b` lexes as `!`,`=` and `a == b` as `=`,`=` — in
            // both cases the literal sits three tokens back.
            if let Some(num) = tokens
                .get(i.wrapping_sub(3))
                .filter(|t| t.kind == TokenKind::Num)
            {
                report(file, num, &tok.text, findings);
            }
        }
        // Struct-literal init `opcode: <num>` (not a type ascription —
        // a numeric literal can never be a type).
        if is_punct(tokens, i + 1, ':') && !is_punct(tokens, i + 2, ':') {
            if let Some(num) = tokens.get(i + 2).filter(|t| t.kind == TokenKind::Num) {
                report(file, num, &tok.text, findings);
            }
        }
    }
}

fn report(
    file: &SourceFile,
    num: &crate::lexer::Token,
    context: &str,
    findings: &mut Vec<Finding>,
) {
    findings.push(
        Finding::new(
            LintId::L007,
            &file.rel_path,
            num.line,
            num.col,
            num.len,
            format!("raw wire constant `{}` at a `{context}` site", num.text),
        )
        .with_help(
            "name the constant from the declaring api module (op::…, err::…, OP_…) so \
             renumbering the protocol is a single edit; raw values are only allowed in \
             the wire_api modules themselves",
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::parse(path, "net", src);
        let config = Config::parse(
            "sim_path = [\"net\"]\nwire_api = [\"broker=crates/net/src/broker_api.rs\"]\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        check(&file, &config, &mut findings);
        findings
    }

    #[test]
    fn flags_literal_first_call_argument() {
        let findings = run(
            "crates/net/src/client.rs",
            "fn f(c: &C) { c.call(7, body); c.call_unit(op::ACK, body); }",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].message,
            "raw wire constant `7` at a `call` site"
        );
    }

    #[test]
    fn flags_comparisons_both_sides_and_negation() {
        let findings = run(
            "crates/net/src/server.rs",
            "fn f(opcode: u8) -> bool { opcode == 9 || 3 == opcode || opcode != 17 }",
        );
        assert_eq!(findings.len(), 3);
    }

    #[test]
    fn flags_struct_field_init() {
        let findings = run(
            "crates/net/src/rpc.rs",
            "fn f() -> Req { Req { opcode: 17, body: vec![] } }",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn applies_to_test_code_too() {
        let findings = run(
            "crates/net/src/server.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(c: &C) { c.call(1, vec![]); }\n}\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn declaring_api_module_is_exempt() {
        let findings = run(
            "crates/net/src/broker_api.rs",
            "fn f(c: &C) { c.call(7, body); }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn named_constants_and_unrelated_code_pass() {
        let findings = run(
            "crates/net/src/client.rs",
            "fn f(c: &C, opcode: u8) {\n\
             c.call(op::PUBLISH, body);\n\
             if opcode == op::ACK {}\n\
             let r = Req { opcode: op::NACK };\n\
             let x: u8 = 7;\n\
             recall(7);\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
