//! L008 — lock discipline: no lock-order cycles, no blocking I/O under
//! a live guard.
//!
//! For every crate enrolled in `mps-lint.toml` `lock_discipline`, the
//! pass walks the token stream and tracks live `Mutex`/`RwLock` guards
//! per function, using a conservative lifetime heuristic:
//!
//! * `let g = x.lock()…;` — the guard lives to the end of the
//!   enclosing block;
//! * `if let Ok(g) = x.lock()`, `while let …`, `match x.lock() {…}` —
//!   the guard lives exactly for the construct's brace block;
//! * a temporary (`x.lock().unwrap().field = v;`) dies at the next
//!   statement end.
//!
//! While any guard is live, two things are findings:
//!
//! * acquiring another lock records a directed edge in the per-crate
//!   acquisition-order graph; cycles in that graph (including
//!   re-acquiring the same lock) are potential deadlocks;
//! * calling a blocking I/O method (`read`/`write`/`accept`/`connect`/
//!   `flush`/`sync_all` family) stalls every other thread contending
//!   for the lock — the scalability failure mode the paper's §5
//!   deployment postmortem describes.
//!
//! Lock identity is the receiver's field path (`self.idle.lock()` →
//! `idle`), so the graph merges acquisitions across functions of the
//! same crate. The analysis is intraprocedural: a helper that returns
//! a guard is seen inside the helper, and a call made *while* holding
//! a guard is not followed — loom models and the TSan CI job provide
//! the dynamic counterpart (see `docs/STATIC_ANALYSIS.md`).

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::{Finding, LintId};
use crate::lexer::{Token, TokenKind};
use crate::lints::{is_ident, is_punct};
use crate::scan::SourceFile;

/// Methods treated as blocking I/O when called under a guard.
const BLOCKING: &[&str] = &[
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_until",
    "write",
    "write_all",
    "write_vectored",
    "flush",
    "accept",
    "connect",
    "sync_all",
    "sync_data",
    "fsync",
];

/// How a live guard dies.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Close {
    /// Dies when brace depth drops below this (plain `let` binding —
    /// end of the enclosing block).
    BlockBelow(u32),
    /// Waiting for the construct body `{` of an `if let`/`while let`/
    /// `match`; becomes `BlockBelow(body depth)` when it opens.
    NextBrace,
    /// A temporary: dies at the next `;` at this depth (or when the
    /// block closes, whichever comes first).
    Semi(u32),
}

#[derive(Debug, Clone)]
struct Guard {
    /// Receiver path without a leading `self.` (`idle`, `state`, or
    /// `self` for a bare `self.lock()` helper).
    node: String,
    line: u32,
    close: Close,
    /// Parenthesis depth tracked while waiting for `NextBrace`.
    pending_parens: i32,
}

/// One directed acquisition-order edge with its first witness site.
#[derive(Debug, Clone)]
struct Edge {
    file: String,
    line: u32,
    col: u32,
    len: u32,
}

/// Per-crate state shared across files.
#[derive(Debug, Default)]
pub struct CrateGraph {
    edges: BTreeMap<(String, String), Edge>,
}

/// Analyses one file: reports blocking-under-guard findings directly
/// and records acquisition-order edges into `graph`.
pub fn check_file(file: &SourceFile, graph: &mut CrateGraph, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    let mut depth = 0u32;
    let mut guards: Vec<Guard> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "{" => {
                    depth += 1;
                    for g in guards.iter_mut() {
                        if g.close == Close::NextBrace && g.pending_parens == 0 {
                            g.close = Close::BlockBelow(depth);
                        }
                    }
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| match g.close {
                        Close::BlockBelow(d) | Close::Semi(d) => depth >= d,
                        Close::NextBrace => true,
                    });
                }
                "(" | "[" => {
                    for g in guards.iter_mut() {
                        if g.close == Close::NextBrace {
                            g.pending_parens += 1;
                        }
                    }
                }
                ")" | "]" => {
                    for g in guards.iter_mut() {
                        if g.close == Close::NextBrace {
                            g.pending_parens -= 1;
                        }
                    }
                }
                ";" => {
                    guards.retain(|g| g.close != Close::Semi(depth));
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        // A function boundary clears anything the heuristic kept alive
        // (e.g. a tail-expression guard in a `fn lock()` helper).
        if tok.kind == TokenKind::Ident && tok.text == "fn" {
            guards.clear();
            i += 1;
            continue;
        }
        if file.is_test_line(tok.line) {
            i += 1;
            continue;
        }

        if let Some((node, consumed)) = acquisition(tokens, i) {
            // Record ordering edges against every live guard.
            for g in &guards {
                if g.node == node {
                    findings.push(
                        Finding::new(
                            LintId::L008,
                            &file.rel_path,
                            tok.line,
                            tok.col,
                            tok.len,
                            format!(
                                "lock `{node}` re-acquired while already held \
                                 (acquired at line {})",
                                g.line
                            ),
                        )
                        .with_help("std mutexes are not reentrant: this deadlocks at runtime"),
                    );
                } else {
                    graph
                        .edges
                        .entry((g.node.clone(), node.clone()))
                        .or_insert_with(|| Edge {
                            file: file.rel_path.clone(),
                            line: tok.line,
                            col: tok.col,
                            len: tok.len,
                        });
                }
            }
            let close = binding_context(tokens, i, depth);
            guards.push(Guard {
                node,
                line: tok.line,
                close,
                pending_parens: 0,
            });
            i += consumed;
            continue;
        }

        // Blocking call while any guard is live: `.name(args…)` or
        // `Path::name(args…)` with a non-empty argument list (an
        // empty-paren `.read()`/`.write()` is an RwLock acquisition,
        // handled above).
        if !guards.is_empty()
            && tok.kind == TokenKind::Ident
            && BLOCKING.contains(&tok.text.as_str())
            && (is_punct(tokens, i.wrapping_sub(1), '.')
                || is_punct(tokens, i.wrapping_sub(1), ':'))
            && is_punct(tokens, i + 1, '(')
            && !is_punct(tokens, i + 2, ')')
        {
            let held = guards
                .iter()
                .map(|g| format!("`{}` (line {})", g.node, g.line))
                .collect::<Vec<_>>()
                .join(", ");
            findings.push(
                Finding::new(
                    LintId::L008,
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    tok.len,
                    format!("blocking `{}` call while holding lock {held}", tok.text),
                )
                .with_help(
                    "a stalled peer now stalls every thread contending for the lock; \
                     drop the guard before the I/O, or waive with a justification",
                ),
            );
        }
        i += 1;
    }
}

/// Is token `i` the start of a lock acquisition (`recv.lock()`, or
/// `recv.read()`/`recv.write()` with empty parens for `RwLock`)?
/// Returns the lock node name and how many tokens the receiver + call
/// head spans from `i`.
fn acquisition(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    // `i` must be the first token of the receiver path: an ident not
    // preceded by `.` (otherwise we would re-match mid-path).
    if tokens[i].kind != TokenKind::Ident || is_punct(tokens, i.wrapping_sub(1), '.') {
        return None;
    }
    // Walk the dotted path: ident (`.` ident)* then `.lock()`.
    let mut segs = vec![tokens[i].text.as_str()];
    let mut j = i;
    loop {
        if !is_punct(tokens, j + 1, '.') {
            return None;
        }
        let next = tokens.get(j + 2)?;
        if next.kind != TokenKind::Ident {
            return None;
        }
        let is_call = is_punct(tokens, j + 3, '(') && is_punct(tokens, j + 4, ')');
        let method_ok = matches!(next.text.as_str(), "lock" | "read" | "write");
        if is_call && method_ok {
            let node = match segs.as_slice() {
                ["self"] => "self".to_owned(),
                _ => segs
                    .iter()
                    .filter(|s| **s != "self")
                    .copied()
                    .collect::<Vec<_>>()
                    .join("."),
            };
            return Some((node, j + 5 - i));
        }
        if next.text == "lock" || next.text == "read" || next.text == "write" {
            // `.lock` not followed by `()` — not an acquisition.
            return None;
        }
        segs.push(next.text.as_str());
        j += 2;
    }
}

/// Classifies how the guard produced at token `i` (receiver start) is
/// bound, by looking backwards.
fn binding_context(tokens: &[Token], i: usize, depth: u32) -> Close {
    let before = i.wrapping_sub(1);
    if is_ident(tokens, before, "match") {
        return Close::NextBrace;
    }
    if is_punct(tokens, before, '=') && !is_punct(tokens, before.wrapping_sub(1), '=') {
        // Scan back to the statement start looking for let/if/while.
        let mut has_let = false;
        let mut has_cond = false;
        let mut k = before;
        while k > 0 {
            k -= 1;
            let t = &tokens[k];
            if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
                break;
            }
            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    "let" => has_let = true,
                    "if" | "while" => has_cond = true,
                    _ => {}
                }
            }
        }
        if has_let && has_cond {
            return Close::NextBrace;
        }
        if has_let {
            return Close::BlockBelow(depth);
        }
        return Close::Semi(depth);
    }
    Close::Semi(depth)
}

/// After every file of a crate has been analysed, reports lock-order
/// cycles found in the merged graph (one finding per distinct cycle,
/// canonicalised by rotation).
pub fn check_crate_graph(crate_name: &str, graph: &CrateGraph, findings: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in graph.edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut path: Vec<&str> = vec![start];
        collect_cycles(start, &adj, &mut path, &mut cycles);
    }
    for canon in cycles {
        let display = {
            let mut closed = canon.clone();
            closed.push(canon[0].clone());
            closed.join("` → `")
        };
        // The first edge of the cycle exists by construction.
        let site = graph.edges.get(&(
            canon[0].clone(),
            canon.get(1).cloned().unwrap_or_else(|| canon[0].clone()),
        ));
        let (file, line, col, len) = match site {
            Some(e) => (e.file.as_str(), e.line, e.col, e.len),
            None => ("", 1, 1, 1),
        };
        findings.push(
            Finding::new(
                LintId::L008,
                file,
                line,
                col,
                len,
                format!(
                    "lock-order cycle in crate `{crate_name}`: `{display}` \
                     (potential deadlock)"
                ),
            )
            .with_help(
                "two threads taking these locks in opposite orders deadlock; \
                 acquire them in one global order",
            ),
        );
    }
}

/// Depth-first search collecting every elementary cycle reachable from
/// the current path, canonicalised so the smallest node leads.
fn collect_cycles<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    cycles: &mut BTreeSet<Vec<String>>,
) {
    if path.len() > 32 {
        return; // Degenerate graph; the cycles found so far suffice.
    }
    let Some(nexts) = adj.get(node) else {
        return;
    };
    for next in nexts {
        if let Some(pos) = path.iter().position(|n| n == next) {
            let cycle = &path[pos..];
            let min = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map(|(idx, _)| idx)
                .unwrap_or(0);
            let canon: Vec<String> = cycle[min..]
                .iter()
                .chain(&cycle[..min])
                .map(|s| (*s).to_owned())
                .collect();
            cycles.insert(canon);
            continue;
        }
        path.push(next);
        collect_cycles(next, adj, path, cycles);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Vec<Finding>, CrateGraph) {
        let file = SourceFile::parse("crates/pipe/src/lib.rs", "pipe", src);
        let mut graph = CrateGraph::default();
        let mut findings = Vec::new();
        check_file(&file, &mut graph, &mut findings);
        (findings, graph)
    }

    #[test]
    fn ordered_nesting_records_an_edge_without_findings() {
        let (findings, graph) = run(
            "fn f(&self) {\n    let a = self.alpha.lock().unwrap();\n    \
             let b = self.beta.lock().unwrap();\n    drop(b); drop(a);\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert!(graph
            .edges
            .contains_key(&("alpha".to_owned(), "beta".to_owned())));
    }

    #[test]
    fn opposite_orders_across_functions_form_a_cycle() {
        let (findings, graph) = run(
            "fn f(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n\
             fn g(&self) { let b = self.beta.lock().unwrap(); let a = self.alpha.lock().unwrap(); }\n",
        );
        assert!(findings.is_empty());
        let mut cycle_findings = Vec::new();
        check_crate_graph("pipe", &graph, &mut cycle_findings);
        assert_eq!(cycle_findings.len(), 1, "{cycle_findings:?}");
        assert!(cycle_findings[0].message.contains("lock-order cycle"));
        assert!(cycle_findings[0]
            .message
            .contains("`alpha` → `beta` → `alpha`"));
    }

    #[test]
    fn blocking_write_under_guard_is_flagged() {
        let (findings, _) = run(
            "fn f(&self, s: &mut TcpStream) {\n    let g = self.state.lock().unwrap();\n    \
             s.write_all(&g.bytes).unwrap();\n}\n",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("blocking `write_all`"));
        assert!(findings[0].message.contains("`state`"));
    }

    #[test]
    fn match_guard_dies_at_end_of_match_block() {
        // The proxy pattern: decide under the lock, write after it.
        let (findings, _) = run(
            "fn f(&self, s: &mut TcpStream) {\n    let action = match self.plan.lock() {\n        \
             Ok(mut plan) => plan.decide(),\n        Err(p) => p.into_inner().decide(),\n    };\n    \
             s.write_all(&encode(action)).unwrap();\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn if_let_guard_dies_with_its_block() {
        let (findings, _) = run(
            "fn f(&self, s: &mut TcpStream) {\n    if let Ok(mut idle) = self.idle.lock() {\n        \
             idle.pop();\n    }\n    s.write_all(b\"x\").unwrap();\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let (findings, _) = run(
            "fn f(&self, s: &mut TcpStream) {\n    self.state.lock().unwrap().armed = true;\n    \
             s.write_all(b\"x\").unwrap();\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn reacquiring_the_same_lock_is_a_deadlock_finding() {
        let (findings, _) = run(
            "fn f(&self) {\n    let a = self.state.lock().unwrap();\n    \
             let b = self.state.lock().unwrap();\n}\n",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("re-acquired"));
    }

    #[test]
    fn test_code_is_skipped() {
        let (findings, graph) = run(
            "#[cfg(test)]\nmod tests {\n    fn t(&self, s: &mut TcpStream) {\n        \
             let g = self.state.lock().unwrap();\n        s.write_all(b\"x\").unwrap();\n    }\n}\n",
        );
        assert!(findings.is_empty());
        assert!(graph.edges.is_empty());
    }

    #[test]
    fn rwlock_read_write_are_acquisitions_not_blocking_io() {
        let (findings, graph) = run(
            "fn f(&self) {\n    let r = self.table.read().unwrap();\n    \
             let w = self.journal.lock().unwrap();\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert!(graph
            .edges
            .contains_key(&("table".to_owned(), "journal".to_owned())));
    }
}
