//! L003 — panic paths: no `unwrap`/`expect`/`panic!`/`unreachable!` in
//! non-test pipeline code.
//!
//! The paper's deployment lesson: a sensing pipeline ingesting from
//! thousands of heterogeneous devices sees every malformed input
//! eventually, and a panic in the broker or ingest path takes the whole
//! middleware down rather than quarantining one observation. Pipeline
//! crates return errors (`BrokerError`, `GoFlowError`, …) or degrade
//! gracefully; genuinely unreachable states carry a waiver explaining
//! the invariant that protects them.

use crate::config::Config;
use crate::findings::{Finding, LintId};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// Runs L003 over one file.
pub fn check(file: &SourceFile, config: &Config, findings: &mut Vec<Finding>) {
    if !config.pipeline.contains(&file.crate_name) {
        return;
    }
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        let token = &tokens[i];
        if token.kind != TokenKind::Ident || file.is_test_line(token.line) {
            continue;
        }
        let what = match token.text.as_str() {
            // `.unwrap()` / `.expect(` — method position only, so local
            // functions named e.g. `unwrap_or_shed` never match.
            "unwrap" | "expect"
                if super::is_punct(tokens, i.wrapping_sub(1), '.')
                    && super::is_punct(tokens, i + 1, '(') =>
            {
                format!("`.{}()` can panic", token.text)
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if super::is_punct(tokens, i + 1, '!') =>
            {
                format!("`{}!` is a panic path", token.text)
            }
            _ => continue,
        };
        findings.push(
            Finding::new(
                LintId::L003,
                &file.rel_path,
                token.line,
                token.col,
                token.len,
                format!(
                    "{what} in non-test pipeline code (crate `{}`)",
                    file.crate_name
                ),
            )
            .with_help(
                "return an error (`?`, `ok_or`, `let … else`), recover explicitly, or \
                 waive with the protecting invariant: // mps-lint: allow(L003) -- <why>",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/pipe/src/lib.rs", "pipe", src);
        let config = Config::parse("sim_path = [\"pipe\"]\npipeline = [\"pipe\"]").unwrap();
        let mut findings = Vec::new();
        check(&file, &config, &mut findings);
        findings
    }

    #[test]
    fn flags_unwrap_expect_panic_unreachable() {
        let findings =
            run("fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"boom\"); unreachable!() }");
        assert_eq!(findings.len(), 4);
        assert!(findings.iter().all(|f| f.lint == LintId::L003));
    }

    #[test]
    fn ignores_unwrap_or_and_friends() {
        let findings = run("fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); x.unwrap_or_default(); x.expect_err(\"e\"); }");
        assert!(findings.is_empty());
    }

    #[test]
    fn ignores_non_method_position() {
        // A standalone helper named `unwrap` (no receiver dot) is fine.
        let findings = run("fn unwrap() {} fn g() { unwrap(); }");
        assert!(findings.is_empty());
    }

    #[test]
    fn skips_test_mod() {
        let findings = run("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }");
        assert!(findings.is_empty());
    }

    #[test]
    fn skips_prose_in_comments_and_strings() {
        let findings = run("/// call `unwrap()` — kidding\nfn f() { let s = \"panic!\"; }");
        assert!(findings.is_empty());
    }
}
