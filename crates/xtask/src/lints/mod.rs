//! The lint passes.
//!
//! Each lint has a stable ID, walks the token stream of already-lexed
//! [`SourceFile`](crate::scan::SourceFile)s, and reports span-accurate
//! [`Finding`](crate::findings::Finding)s. All lints skip test code
//! (see `scan` for what counts as test code); inline waivers are
//! applied afterwards by [`crate::waivers`].

pub mod l001_determinism;
pub mod l002_iteration_order;
pub mod l003_panic_path;
pub mod l004_metric_hygiene;
pub mod l005_header_keys;
pub mod l006_spec_conformance;
pub mod l007_wire_literals;
pub mod l008_lock_discipline;

use crate::lexer::{Token, TokenKind};

/// Is token `i` the identifier `name`?
pub(crate) fn is_ident(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
}

/// Is token `i` the punctuation `p`?
pub(crate) fn is_punct(tokens: &[Token], i: usize, p: char) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(p))
}

/// Matches a path-like token sequence starting at `i`, where `"::"` in
/// `segments` consumes two consecutive `:` tokens. Returns the number
/// of tokens consumed.
pub(crate) fn match_path(tokens: &[Token], i: usize, segments: &[&str]) -> Option<usize> {
    let mut pos = i;
    for segment in segments {
        if *segment == "::" {
            if !(is_punct(tokens, pos, ':') && is_punct(tokens, pos + 1, ':')) {
                return None;
            }
            pos += 2;
        } else {
            if !is_ident(tokens, pos, segment) {
                return None;
            }
            pos += 1;
        }
    }
    Some(pos - i)
}

/// Levenshtein distance, used for near-duplicate metric names.
pub(crate) fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn match_path_consumes_double_colon() {
        let toks = lex("Instant::now()").tokens;
        assert_eq!(match_path(&toks, 0, &["Instant", "::", "now"]), Some(4));
        assert_eq!(match_path(&toks, 0, &["SystemTime", "::", "now"]), None);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", "abd"), 1);
        assert_eq!(levenshtein("abc", "ab"), 1);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }
}
