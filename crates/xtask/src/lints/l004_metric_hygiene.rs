//! L004 — metric hygiene: naming convention, literal names, and
//! near-duplicate detection for every series registered with the
//! telemetry `Registry`.
//!
//! The workspace convention is `<crate>_<subsystem>_<name>[_<unit>]`:
//! counters end in `_total`, histograms name their unit (`_ms`,
//! `_seconds`, …), and the leading segment is the registering crate.
//! The paper's Figures 9–21 all hinge on being able to line series up
//! across layers months later — which dies the moment
//! `goflow_ingest_late_total` and `goflow_ingest_quarantined_total`
//! quietly coexist meaning the same thing. Extracted names also feed
//! the generated `docs/METRICS.md` inventory (staleness-gated in CI).

use crate::config::Config;
use crate::findings::{Finding, LintId};
use crate::lexer::{Token, TokenKind};
use crate::scan::SourceFile;

/// Histogram name suffixes accepted as units.
const UNITS: &[&str] = &["ms", "seconds", "us", "ns", "bytes", "ratio"];

/// Registration methods on the telemetry `Registry`.
const METHODS: &[(&str, &str)] = &[
    ("counter", "counter"),
    ("counter_labeled", "counter"),
    ("gauge", "gauge"),
    ("gauge_labeled", "gauge"),
    ("histogram", "histogram"),
    ("histogram_labeled", "histogram"),
];

/// One extracted metric registration site.
#[derive(Debug, Clone)]
pub struct MetricSite {
    /// The metric name literal.
    pub name: String,
    /// `counter`, `gauge` or `histogram`.
    pub kind: &'static str,
    /// The help text, when it was a literal.
    pub help: Option<String>,
    /// Literal label keys (for `_labeled` variants).
    pub labels: Vec<String>,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the name literal.
    pub line: u32,
    /// 1-based column of the name literal.
    pub col: u32,
    /// Caret length (the literal's source width).
    pub len: u32,
}

/// Extracts metric registrations from one file, reporting non-literal
/// names and per-site naming violations.
pub fn collect(
    file: &SourceFile,
    config: &Config,
    sites: &mut Vec<MetricSite>,
    findings: &mut Vec<Finding>,
) {
    if !config.metrics.contains(&file.crate_name) {
        return;
    }
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        let token = &tokens[i];
        if token.kind != TokenKind::Ident || file.is_test_line(token.line) {
            continue;
        }
        let Some((_, kind)) = METHODS.iter().find(|(m, _)| *m == token.text) else {
            continue;
        };
        // Method position with an open paren: `.counter(…`.
        if !(super::is_punct(tokens, i.wrapping_sub(1), '.') && super::is_punct(tokens, i + 1, '('))
        {
            continue;
        }
        let labeled = token.text.ends_with("_labeled");
        let args = split_args(tokens, i + 1);
        let Some(name_arg) = args.first() else {
            continue;
        };
        let name_token = match name_arg {
            [single] if single.kind == TokenKind::Str => single,
            _ => {
                let anchor = name_arg.first().unwrap_or(token);
                findings.push(
                    Finding::new(
                        LintId::L004,
                        &file.rel_path,
                        anchor.line,
                        anchor.col,
                        anchor.len,
                        "metric name must be a string literal so the inventory and \
                         naming rules can see it"
                            .to_owned(),
                    )
                    .with_help(
                        "inline the name (the Registry deduplicates by name, so \
                         call-site literals are cheap); or waive: \
                         // mps-lint: allow(L004) -- <why>",
                    ),
                );
                continue;
            }
        };
        let labels = if labeled {
            args.get(1).map(|arg| label_keys(arg)).unwrap_or_default()
        } else {
            Vec::new()
        };
        let help_idx = if labeled { 2 } else { 1 };
        let help = match args.get(help_idx) {
            Some([single]) if single.kind == TokenKind::Str => Some(single.text.clone()),
            _ => None,
        };
        let site = MetricSite {
            name: name_token.text.clone(),
            kind,
            help,
            labels,
            file: file.rel_path.clone(),
            line: name_token.line,
            col: name_token.col,
            len: name_token.len,
        };
        check_name(&site, &file.crate_name, findings);
        sites.push(site);
    }
}

/// Per-site naming-convention checks.
fn check_name(site: &MetricSite, crate_name: &str, findings: &mut Vec<Finding>) {
    let mut problems: Vec<String> = Vec::new();
    let name = &site.name;
    let valid_charset = !name.is_empty()
        && name.starts_with(|c: char| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    if !valid_charset {
        problems.push("name must match [a-z][a-z0-9_]*".to_owned());
    } else {
        let segments: Vec<&str> = name.split('_').collect();
        if segments.len() < 3 {
            problems.push(
                "name must have at least three segments: <crate>_<subsystem>_<name>".to_owned(),
            );
        }
        if segments.first() != Some(&crate_name) {
            problems.push(format!(
                "name must be prefixed with the registering crate (`{crate_name}_…`)"
            ));
        }
        let last = segments.last().copied().unwrap_or_default();
        match site.kind {
            "counter" if last != "total" => {
                problems.push("counters must end in `_total`".to_owned());
            }
            "histogram" if !UNITS.contains(&last) => {
                problems.push(format!(
                    "histograms must end in a unit ({})",
                    UNITS.join(", ")
                ));
            }
            "gauge" if last == "total" => {
                problems.push("gauges must not claim the counter suffix `_total`".to_owned());
            }
            _ => {}
        }
    }
    for key in &site.labels {
        let ok = key.starts_with(|c: char| c.is_ascii_lowercase())
            && key
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !ok {
            problems.push(format!("label key `{key}` must match [a-z][a-z0-9_]*"));
        }
    }
    for problem in problems {
        findings.push(
            Finding::new(
                LintId::L004,
                &site.file,
                site.line,
                site.col,
                site.len,
                format!("metric `{name}`: {problem}"),
            )
            .with_help(
                "follow `<crate>_<subsystem>_<name>[_<unit>|_total]` \
                 (see docs/METRICS.md for the live inventory)",
            ),
        );
    }
}

/// Cross-site checks: kind conflicts and near-duplicate names.
pub fn check_cross(sites: &[MetricSite], findings: &mut Vec<Finding>) {
    // Kind conflicts: one name, two kinds.
    let mut by_name: std::collections::BTreeMap<&str, &MetricSite> =
        std::collections::BTreeMap::new();
    for site in sites {
        match by_name.get(site.name.as_str()) {
            None => {
                by_name.insert(&site.name, site);
            }
            Some(first) if first.kind != site.kind => {
                findings.push(
                    Finding::new(
                        LintId::L004,
                        &site.file,
                        site.line,
                        site.col,
                        site.len,
                        format!(
                            "metric `{}` registered as {} here but as {} at {}:{}",
                            site.name, site.kind, first.kind, first.file, first.line
                        ),
                    )
                    .with_help("one metric name must keep one kind everywhere"),
                );
            }
            Some(_) => {}
        }
    }
    // Near-duplicates: same kind, distinct names that differ by one
    // edit or only by their final segment.
    let mut names: Vec<&MetricSite> = by_name.values().copied().collect();
    names.sort_by_key(|s| s.name.as_str());
    for (i, a) in names.iter().enumerate() {
        for b in names.iter().skip(i + 1) {
            if a.kind != b.kind || a.name == b.name {
                continue;
            }
            let stem = |n: &str| n.rsplit_once('_').map(|(s, _)| s.to_owned());
            let near = super::levenshtein(&a.name, &b.name) <= 1
                || (stem(&a.name).is_some() && stem(&a.name) == stem(&b.name));
            if near {
                findings.push(
                    Finding::new(
                        LintId::L004,
                        &b.file,
                        b.line,
                        b.col,
                        b.len,
                        format!(
                            "metric `{}` is a near-duplicate of `{}` ({}:{}) — two names \
                             for one series fragment dashboards",
                            b.name, a.name, a.file, a.line
                        ),
                    )
                    .with_help(
                        "converge on one name (prefer labels over name suffixes for \
                         variants); or waive: // mps-lint: allow(L004) -- <why>",
                    ),
                );
            }
        }
    }
}

/// Splits the argument tokens of a call, given the index of the opening
/// `(`. Returns top-level comma-separated argument slices.
fn split_args(tokens: &[Token], open: usize) -> Vec<&[Token]> {
    let mut args = Vec::new();
    let mut depth = 0usize;
    let mut start = open + 1;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if i > start {
                        args.push(&tokens[start..i]);
                    }
                    break;
                }
            }
            "," if depth == 1 => {
                args.push(&tokens[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    args
}

/// Extracts literal label keys from `&[("key", value), …]` tokens.
fn label_keys(arg: &[Token]) -> Vec<String> {
    let mut keys = Vec::new();
    let mut i = 0;
    while i < arg.len() {
        if arg[i].text == "(" {
            if let Some(next) = arg.get(i + 1) {
                if next.kind == TokenKind::Str {
                    keys.push(next.text.clone());
                }
            }
        }
        i += 1;
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Vec<MetricSite>, Vec<Finding>) {
        let file = SourceFile::parse("crates/broker/src/metrics.rs", "broker", src);
        let config = Config::parse("sim_path = [\"broker\"]\nmetrics = [\"broker\"]").unwrap();
        let mut sites = Vec::new();
        let mut findings = Vec::new();
        collect(&file, &config, &mut sites, &mut findings);
        (sites, findings)
    }

    #[test]
    fn extracts_name_kind_help_and_labels() {
        let (sites, findings) = run(r#"fn f(r: &Registry) {
                r.counter("broker_core_published_total", "Messages published");
                r.counter_labeled("broker_core_dropped_total", &[("reason", "full")], "Dropped");
                r.histogram("broker_core_route_seconds", "Routing time", &[0.1]);
            }"#);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].kind, "counter");
        assert_eq!(sites[0].help.as_deref(), Some("Messages published"));
        assert_eq!(sites[1].labels, vec!["reason"]);
        assert_eq!(sites[2].kind, "histogram");
    }

    #[test]
    fn flags_bad_prefix_suffix_and_charset() {
        let (_, findings) = run(r#"fn f(r: &Registry) {
                r.counter("goflow_core_published_total", "wrong crate");
                r.counter("broker_core_published", "no _total");
                r.histogram("broker_core_route", "no unit", &[0.1]);
                r.gauge("broker_core_depth_total", "gauge with _total");
                r.counter("Broker_Bad-Name", "bad charset");
                r.counter("broker_short", "two segments");
            }"#);
        let messages: Vec<_> = findings.iter().map(|f| f.message.clone()).collect();
        assert!(messages
            .iter()
            .any(|m| m.contains("prefixed with the registering crate")));
        assert!(messages.iter().any(|m| m.contains("end in `_total`")));
        assert!(messages.iter().any(|m| m.contains("end in a unit")));
        assert!(messages.iter().any(|m| m.contains("must not claim")));
        assert!(messages.iter().any(|m| m.contains("[a-z][a-z0-9_]*")));
        assert!(messages.iter().any(|m| m.contains("three segments")));
    }

    #[test]
    fn flags_non_literal_names() {
        let (sites, findings) = run("fn f(r: &Registry, n: &str) { r.counter(n, \"help\"); }");
        assert!(sites.is_empty());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("string literal"));
    }

    #[test]
    fn near_duplicates_and_kind_conflicts() {
        let (sites, mut findings) = run(r#"fn f(r: &Registry) {
                r.counter("broker_core_dropped_total", "a");
                r.counter("broker_core_droped_total", "typo twin");
                r.gauge("broker_core_dropped_total", "kind conflict");
            }"#);
        check_cross(&sites, &mut findings);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("near-duplicate")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("registered as gauge")));
    }

    #[test]
    fn count_plus_duration_stems_are_allowed() {
        let (sites, mut findings) = run(r#"fn f(r: &Registry) {
                r.counter("broker_core_find_total", "count");
                r.histogram("broker_core_find_seconds", "duration", &[0.1]);
            }"#);
        check_cross(&sites, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let (sites, findings) =
            run("#[cfg(test)]\nmod tests { fn t(r: &Registry) { r.counter(\"x\", \"y\"); } }");
        assert!(sites.is_empty());
        assert!(findings.is_empty());
    }
}
