//! L006 — spec conformance: the wire protocol the code speaks must be
//! the one the spec documents.
//!
//! The normative tables in `docs/WIRE_PROTOCOL.md` (see
//! `mps-lint.toml` `protocol_spec`) and the constants declared in the
//! `wire_api` modules are two copies of the same facts — frame-type
//! bytes, handshake statuses, opcodes, error codes. PRs 7–8 made the
//! spec third-party-implementable; this pass makes divergence a CI
//! failure instead of a silent protocol fork:
//!
//! * a spec row with no declared constant, and a constant with no spec
//!   row, are both findings;
//! * a name whose value differs between spec and code is a finding
//!   anchored at the *value token* in the code;
//! * value collisions within a band, and values outside their band's
//!   reserved layout (service opcodes `1..=199`, admin `240..=255`,
//!   errors `16..`, handshake statuses `0..=15`), are findings;
//! * every opcode must have a dispatch arm (`NAME =>`) in non-test
//!   code and be referenced from at least one test in its crate;
//! * client helpers with a fixed reply shape (`call_unit` → `empty`,
//!   `call_u64` → `u64 …`, `call_bool` → `bool`) must match the spec's
//!   success-reply column.
//!
//! The merged spec+code inventory feeds the generated
//! `docs/OPCODES.md` (see [`crate::opcodes_doc`]), staleness-gated the
//! same way L004 gates `docs/METRICS.md`. The pass is enabled by
//! setting `protocol_spec` in `mps-lint.toml`.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::config::Config;
use crate::findings::{Finding, LintId};
use crate::lexer::{Token, TokenKind};
use crate::lints::{is_ident, is_punct};
use crate::scan::SourceFile;
use crate::spec::{self, SpecRow};

/// One declared wire constant extracted from a `wire_api` file.
#[derive(Debug, Clone)]
pub struct CodeConst {
    /// Band key (`frame`, `handshake`, `<role> op`, `<role> err`).
    pub band: String,
    /// The constant (or enum-variant) name.
    pub name: String,
    /// The declared numeric value.
    pub value: i64,
    /// Workspace-relative path of the declaring file.
    pub file: String,
    /// Crate short name of the declaring file.
    pub crate_name: String,
    /// Span of the name.
    pub line: u32,
    /// Column of the name.
    pub col: u32,
    /// Caret width of the name.
    pub len: u32,
    /// Span of the value token (where mismatches are anchored).
    pub value_line: u32,
    /// Column of the value token.
    pub value_col: u32,
    /// Caret width of the value token.
    pub value_len: u32,
}

/// One row of the merged spec+code inventory (`docs/OPCODES.md`).
#[derive(Debug, Clone)]
pub struct WireRow {
    /// Position of the band in the rendered doc.
    pub band_order: usize,
    /// Human band title (`Broker opcodes`, `Frame types`, …).
    pub band_label: String,
    /// The wire value (code wins when spec and code disagree).
    pub value: i64,
    /// Constant name.
    pub name: String,
    /// Request-body shape from the spec (`—` when not applicable).
    pub request: String,
    /// Success-reply shape from the spec (`—` when not applicable).
    pub reply: String,
    /// `file:line` of the declaration (`—` when spec-only).
    pub declared_at: String,
    /// Dispatch-arm coverage (`None` for non-opcode bands).
    pub dispatch: Option<bool>,
    /// Test coverage (`None` for non-opcode bands).
    pub tested: Option<bool>,
}

/// Parses a numeric literal's value (decimal/hex/binary/octal, with
/// `_` separators and type suffixes).
fn parse_num(raw: &str) -> Option<i64> {
    let s: String = raw.chars().filter(|c| *c != '_').collect();
    let lower = s.to_ascii_lowercase();
    let (digits, radix) = if let Some(h) = lower.strip_prefix("0x") {
        (h, 16)
    } else if let Some(b) = lower.strip_prefix("0b") {
        (b, 2)
    } else if let Some(o) = lower.strip_prefix("0o") {
        (o, 8)
    } else {
        (lower.as_str(), 10)
    };
    let digits: String = digits.chars().take_while(|c| c.is_digit(radix)).collect();
    i64::from_str_radix(&digits, radix).ok()
}

/// Extracts the wire constants a `wire_api` file declares for `role`.
fn extract(role: &str, file: &SourceFile, out: &mut Vec<CodeConst>) {
    if role == "frame" {
        extract_frame_arms(file, out);
        return;
    }
    let tokens = &file.tokens;
    let mut depth = 0u32;
    // Innermost named module and the brace depth of its body.
    let mut mods: Vec<(String, u32)> = Vec::new();
    let mut pending_mod: Option<String> = None;
    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "{" => {
                    depth += 1;
                    if let Some(name) = pending_mod.take() {
                        mods.push((name, depth));
                    }
                }
                "}" => {
                    if mods.last().is_some_and(|(_, d)| *d == depth) {
                        mods.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if is_ident(tokens, i, "mod")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            && is_punct(tokens, i + 2, '{')
        {
            pending_mod = Some(tokens[i + 1].text.clone());
            i += 1;
            continue;
        }
        if is_ident(tokens, i, "const") && !file.is_test_line(tok.line) {
            if let Some(decl) = read_const(tokens, i) {
                let band = match mods.last().map(|(n, _)| n.as_str()) {
                    Some("op") => Some(format!("{role} op")),
                    Some("err") => Some(format!("{role} err")),
                    None if role == "handshake" && decl.0.text.starts_with("HELLO_") => {
                        Some("handshake".to_owned())
                    }
                    None if role != "handshake" && decl.0.text.starts_with("OP_") => {
                        Some(format!("{role} op"))
                    }
                    _ => None,
                };
                if let Some(band) = band {
                    out.push(make_const(band, file, decl.0, decl.1, decl.2));
                }
            }
        }
        i += 1;
    }
}

/// Reads `const NAME: Ty = <num>` starting at the `const` keyword;
/// returns (name token, value token, value).
fn read_const<'a>(tokens: &'a [Token], i: usize) -> Option<(&'a Token, &'a Token, i64)> {
    let name = tokens.get(i + 1)?;
    if name.kind != TokenKind::Ident || name.text == "fn" {
        return None;
    }
    // Scan a short window for `= <num>` (the type is a plain path).
    for j in i + 2..(i + 12).min(tokens.len().saturating_sub(1)) {
        if is_punct(tokens, j, '=') && !is_punct(tokens, j + 1, '=') {
            let value_tok = tokens.get(j + 1)?;
            if value_tok.kind != TokenKind::Num {
                return None;
            }
            return Some((name, value_tok, parse_num(&value_tok.text)?));
        }
        if is_punct(tokens, j, ';') {
            return None;
        }
    }
    None
}

/// Extracts `Enum::Variant => <num>` match arms (the `as_byte`
/// direction of a frame-type enum).
fn extract_frame_arms(file: &SourceFile, out: &mut Vec<CodeConst>) {
    let tokens = &file.tokens;
    let mut seen = BTreeSet::new();
    for i in 0..tokens.len() {
        let matched = tokens[i].kind == TokenKind::Ident
            && is_punct(tokens, i + 1, ':')
            && is_punct(tokens, i + 2, ':')
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            && is_punct(tokens, i + 4, '=')
            && is_punct(tokens, i + 5, '>')
            && tokens.get(i + 6).is_some_and(|t| t.kind == TokenKind::Num);
        if !matched || file.is_test_line(tokens[i].line) {
            continue;
        }
        let name = &tokens[i + 3];
        let value_tok = &tokens[i + 6];
        let Some(value) = parse_num(&value_tok.text) else {
            continue;
        };
        if seen.insert(name.text.clone()) {
            out.push(make_const("frame".to_owned(), file, name, value_tok, value));
        }
    }
}

fn make_const(
    band: String,
    file: &SourceFile,
    name: &Token,
    value_tok: &Token,
    value: i64,
) -> CodeConst {
    CodeConst {
        band,
        name: name.text.clone(),
        value,
        file: file.rel_path.clone(),
        crate_name: file.crate_name.clone(),
        line: name.line,
        col: name.col,
        len: name.len,
        value_line: value_tok.line,
        value_col: value_tok.col,
        value_len: value_tok.len,
    }
}

/// The inclusive value range a band's constants must stay inside (the
/// §11 reserved layout: service opcodes `1..=199`, `200..=239`
/// reserved, `240..=255` admin, error codes `16..`, handshake statuses
/// `0..=15`).
fn band_range(band: &str) -> (i64, i64) {
    match band {
        "frame" => (1, 255),
        "handshake" => (0, 15),
        "admin op" => (240, 255),
        b if b.ends_with(" op") => (1, 199),
        b if b.ends_with(" err") => (16, 255),
        _ => (0, 255),
    }
}

/// Runs the whole conformance pass. Returns the merged inventory rows
/// for `docs/OPCODES.md` (empty when `protocol_spec` is unset).
pub fn check(
    config: &Config,
    files: &[&SourceFile],
    root: &Path,
    findings: &mut Vec<Finding>,
) -> Vec<WireRow> {
    if config.protocol_spec.is_empty() {
        return Vec::new();
    }
    let spec_path = &config.protocol_spec;
    let doc = match std::fs::read_to_string(root.join(spec_path)) {
        Ok(doc) => doc,
        Err(e) => {
            findings.push(Finding::new(
                LintId::L006,
                spec_path,
                1,
                1,
                1,
                format!("cannot read protocol spec {spec_path}: {e}"),
            ));
            return Vec::new();
        }
    };

    // Ordered service roles (everything except the two special bands).
    let mut roles: Vec<String> = Vec::new();
    for (role, _) in &config.wire_api {
        if role != "frame" && role != "handshake" && !roles.contains(role) {
            roles.push(role.clone());
        }
    }

    let (spec_rows, problems) = spec::parse(&doc, &roles);
    for p in problems {
        findings.push(
            Finding::new(LintId::L006, spec_path, p.line, 1, 0, p.message)
                .with_help("fix the table row so the conformance pass can read it"),
        );
    }

    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), *f)).collect();
    let mut consts: Vec<CodeConst> = Vec::new();
    for (role, path) in &config.wire_api {
        match by_path.get(path.as_str()) {
            Some(file) => extract(role, file, &mut consts),
            None => findings.push(
                Finding::new(
                    LintId::L006,
                    path,
                    1,
                    1,
                    1,
                    format!("wire_api file `{path}` (role `{role}`) was not found in the scan"),
                )
                .with_help("fix the path in mps-lint.toml `wire_api`"),
            ),
        }
    }

    cross_check(config, files, spec_path, &spec_rows, &consts, findings)
}

/// All cross-checks plus inventory assembly, split out for fixtures.
fn cross_check(
    config: &Config,
    files: &[&SourceFile],
    spec_path: &str,
    spec_rows: &[SpecRow],
    consts: &[CodeConst],
    findings: &mut Vec<Finding>,
) -> Vec<WireRow> {
    // Band → name → row/const maps.
    let mut spec_by_band: BTreeMap<&str, BTreeMap<&str, &SpecRow>> = BTreeMap::new();
    for row in spec_rows {
        spec_by_band
            .entry(&row.band)
            .or_default()
            .insert(&row.name, row);
    }
    let mut code_by_band: BTreeMap<&str, Vec<&CodeConst>> = BTreeMap::new();
    for c in consts {
        code_by_band.entry(&c.band).or_default().push(c);
    }

    // Name ↔ value conformance, ranges, and within-band collisions.
    for (band, band_consts) in &code_by_band {
        let spec_names = spec_by_band.get(band);
        let mut by_value: BTreeMap<i64, &str> = BTreeMap::new();
        for c in band_consts {
            match spec_names.and_then(|m| m.get(c.name.as_str())) {
                None => findings.push(
                    Finding::new(
                        LintId::L006,
                        &c.file,
                        c.line,
                        c.col,
                        c.len,
                        format!(
                            "`{}` (value {}) has no row in the `{band}` table of {spec_path}",
                            c.name, c.value
                        ),
                    )
                    .with_help(format!(
                        "the spec is normative: add a `{band}` row for it to {spec_path} \
                         (or delete the constant), then regenerate {}",
                        config.opcodes_doc
                    )),
                ),
                Some(row) if row.value != c.value => findings.push(
                    Finding::new(
                        LintId::L006,
                        &c.file,
                        c.value_line,
                        c.value_col,
                        c.value_len,
                        format!(
                            "`{}` is {} on the wire but {spec_path}:{} says {}",
                            c.name, c.value, row.line, row.value
                        ),
                    )
                    .with_help(
                        "the code and the normative spec disagree — a third-party \
                         implementation built from the spec cannot interoperate; fix \
                         whichever side is wrong",
                    ),
                ),
                Some(_) => {}
            }
            let (lo, hi) = band_range(band);
            if c.value < lo || c.value > hi {
                findings.push(
                    Finding::new(
                        LintId::L006,
                        &c.file,
                        c.value_line,
                        c.value_col,
                        c.value_len,
                        format!(
                            "value {} of `{}` is outside the `{band}` range {lo}..={hi}",
                            c.value, c.name
                        ),
                    )
                    .with_help(
                        "see the reserved-range layout (service opcodes 1..=199, \
                         200..=239 reserved, 240..=255 admin, error codes 16..)",
                    ),
                );
            }
            if let Some(prev) = by_value.insert(c.value, &c.name) {
                if prev != c.name {
                    findings.push(
                        Finding::new(
                            LintId::L006,
                            &c.file,
                            c.value_line,
                            c.value_col,
                            c.value_len,
                            format!(
                                "value {} of `{}` collides with `{prev}` in band `{band}`",
                                c.value, c.name
                            ),
                        )
                        .with_help("every value in a band must be unique on the wire"),
                    );
                }
            }
        }
    }

    // Spec rows with no declared constant.
    for row in spec_rows {
        let declared = code_by_band
            .get(row.band.as_str())
            .is_some_and(|v| v.iter().any(|c| c.name == row.name));
        if !declared {
            findings.push(
                Finding::new(
                    LintId::L006,
                    spec_path,
                    row.line,
                    row.col,
                    row.len,
                    format!(
                        "spec row `{}` (value {}, band `{}`) has no declared constant",
                        row.display_name, row.value, row.band
                    ),
                )
                .with_help("declare it in the band's wire_api module or remove the row"),
            );
        }
    }

    // Dispatch-arm, test-coverage, and reply-shape checks (opcodes only).
    let op_consts: Vec<&CodeConst> = consts.iter().filter(|c| c.band.ends_with(" op")).collect();
    let op_crates: BTreeSet<&str> = op_consts.iter().map(|c| c.crate_name.as_str()).collect();
    let op_names: BTreeSet<&str> = op_consts.iter().map(|c| c.name.as_str()).collect();
    let mut dispatched: BTreeSet<(&str, &str)> = BTreeSet::new();
    let mut tested: BTreeSet<(&str, &str)> = BTreeSet::new();
    let mut spec_ops: BTreeMap<&str, Vec<&SpecRow>> = BTreeMap::new();
    for row in spec_rows.iter().filter(|r| r.band.ends_with(" op")) {
        spec_ops.entry(&row.name).or_default().push(row);
    }
    for file in files {
        if !op_crates.contains(file.crate_name.as_str()) {
            continue;
        }
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            let tok = &tokens[i];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            if op_names.contains(tok.text.as_str()) {
                let key = (file.crate_name.as_str(), tok.text.as_str());
                if file.is_test_line(tok.line) {
                    tested.insert(key);
                } else if (is_punct(tokens, i + 1, '=') && is_punct(tokens, i + 2, '>'))
                    || is_punct(tokens, i + 1, '|')
                    || is_ident(tokens, i + 1, "if")
                {
                    // `NAME =>`, `NAME | OTHER =>`, `NAME if guard =>`
                    dispatched.insert(key);
                }
            }
            // Fixed-reply client helpers: check the spec's reply shape.
            let expected = match tok.text.as_str() {
                "call_unit" => Some("empty"),
                "call_u64" => Some("u64"),
                "call_bool" => Some("bool"),
                _ => None,
            };
            if let Some(expected) = expected {
                if is_punct(tokens, i.wrapping_sub(1), '.')
                    && is_punct(tokens, i + 1, '(')
                    && !file.is_test_line(tok.line)
                {
                    if let Some(name) = first_arg_last_ident(tokens, i + 2) {
                        for row in spec_ops.get(name.as_str()).into_iter().flatten() {
                            let reply = row.reply.as_str();
                            let ok = if expected == "empty" {
                                reply == "empty"
                            } else {
                                reply.starts_with(expected)
                            };
                            if !ok {
                                findings.push(
                                    Finding::new(
                                        LintId::L006,
                                        &file.rel_path,
                                        tok.line,
                                        tok.col,
                                        tok.len,
                                        format!(
                                            "`{name}` is invoked via `{}` but the spec \
                                             success reply is `{reply}`",
                                            tok.text
                                        ),
                                    )
                                    .with_help(format!(
                                        "{spec_path}:{} declares the reply shape; use the \
                                         matching call helper or fix the spec",
                                        row.line
                                    )),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    for c in &op_consts {
        let key = (c.crate_name.as_str(), c.name.as_str());
        if !dispatched.contains(&key) {
            findings.push(
                Finding::new(
                    LintId::L006,
                    &c.file,
                    c.line,
                    c.col,
                    c.len,
                    format!(
                        "opcode `{}` has no dispatch arm in crate `{}`",
                        c.name, c.crate_name
                    ),
                )
                .with_help("add a `NAME => …` match arm in the server dispatch"),
            );
        }
        if !tested.contains(&key) {
            findings.push(
                Finding::new(
                    LintId::L006,
                    &c.file,
                    c.line,
                    c.col,
                    c.len,
                    format!(
                        "opcode `{}` is not referenced by any test in crate `{}`",
                        c.name, c.crate_name
                    ),
                )
                .with_help("cover it with a codec round-trip or dispatch test"),
            );
        }
    }

    assemble_rows(config, spec_rows, consts, &dispatched, &tested)
}

/// Last identifier of the first call argument starting at `open + 1`
/// (`op::PUBLISH, body` → `PUBLISH`); `open` is the index of `(`.
fn first_arg_last_ident(tokens: &[Token], open: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut last = None;
    for tok in tokens.iter().skip(open + 1) {
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" if depth == 0 => break,
                ")" | "]" => depth -= 1,
                "," if depth == 0 => break,
                _ => {}
            }
        } else if tok.kind == TokenKind::Ident && depth == 0 {
            last = Some(tok.text.clone());
        }
    }
    last
}

/// Merges spec and code into the ordered inventory for OPCODES.md.
fn assemble_rows(
    config: &Config,
    spec_rows: &[SpecRow],
    consts: &[CodeConst],
    dispatched: &BTreeSet<(&str, &str)>,
    tested: &BTreeSet<(&str, &str)>,
) -> Vec<WireRow> {
    // Band order follows the config's wire_api entry order.
    let mut bands: Vec<String> = Vec::new();
    for (role, _) in &config.wire_api {
        let keys: Vec<String> = match role.as_str() {
            "frame" => vec!["frame".to_owned()],
            "handshake" => vec!["handshake".to_owned()],
            r => vec![format!("{r} op"), format!("{r} err")],
        };
        for key in keys {
            if !bands.contains(&key) {
                bands.push(key);
            }
        }
    }
    // Bands that only appear in the spec still get rendered, last.
    for row in spec_rows {
        if !bands.contains(&row.band) {
            bands.push(row.band.clone());
        }
    }

    let mut out = Vec::new();
    for (order, band) in bands.iter().enumerate() {
        let label = band_label(band);
        // Union of names, keyed for dedup and ordering by (value, name).
        let mut merged: BTreeMap<(i64, String), WireRow> = BTreeMap::new();
        for c in consts.iter().filter(|c| &c.band == band) {
            let key = (c.crate_name.as_str(), c.name.as_str());
            let is_op = band.ends_with(" op");
            merged.insert(
                (c.value, c.name.clone()),
                WireRow {
                    band_order: order,
                    band_label: label.clone(),
                    value: c.value,
                    name: c.name.clone(),
                    request: "—".to_owned(),
                    reply: "—".to_owned(),
                    declared_at: format!("{}:{}", c.file, c.line),
                    dispatch: is_op.then(|| dispatched.contains(&key)),
                    tested: is_op.then(|| tested.contains(&key)),
                },
            );
        }
        for row in spec_rows.iter().filter(|r| &r.band == band) {
            let entry = merged
                .iter_mut()
                .find(|((_, name), _)| name == &row.name)
                .map(|(_, v)| v);
            match entry {
                Some(wire_row) => {
                    wire_row.request = dash_if_empty(&row.request);
                    wire_row.reply = dash_if_empty(&row.reply);
                }
                None => {
                    merged.insert(
                        (row.value, row.name.clone()),
                        WireRow {
                            band_order: order,
                            band_label: label.clone(),
                            value: row.value,
                            name: row.name.clone(),
                            request: dash_if_empty(&row.request),
                            reply: dash_if_empty(&row.reply),
                            declared_at: "—".to_owned(),
                            dispatch: None,
                            tested: None,
                        },
                    );
                }
            }
        }
        out.extend(merged.into_values());
    }
    out
}

fn dash_if_empty(s: &str) -> String {
    if s.is_empty() {
        "—".to_owned()
    } else {
        s.to_owned()
    }
}

/// Human band title.
fn band_label(band: &str) -> String {
    match band {
        "frame" => "Frame types".to_owned(),
        "handshake" => "Handshake statuses".to_owned(),
        b => {
            let (role, kind) = b.rsplit_once(' ').unwrap_or((b, ""));
            let mut title: String = role
                .chars()
                .enumerate()
                .map(|(i, c)| if i == 0 { c.to_ascii_uppercase() } else { c })
                .collect();
            title.push_str(match kind {
                "op" => " opcodes",
                "err" => " error codes",
                _ => "",
            });
            title
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn api_file(src: &str) -> SourceFile {
        SourceFile::parse("crates/wire/src/api.rs", "wire", src)
    }

    #[test]
    fn extracts_mod_op_and_mod_err_consts() {
        let file = api_file(
            "pub mod op {\n    pub const PING: u8 = 1;\n    pub const PONG: u8 = 2;\n}\n\
             pub mod err {\n    pub const BAD_PING: u8 = 16;\n}\n",
        );
        let mut consts = Vec::new();
        extract("widget", &file, &mut consts);
        assert_eq!(consts.len(), 3);
        assert_eq!(consts[0].band, "widget op");
        assert_eq!(consts[0].name, "PING");
        assert_eq!(consts[0].value, 1);
        assert_eq!(consts[2].band, "widget err");
        assert_eq!(consts[2].value, 16);
    }

    #[test]
    fn extracts_top_level_op_consts_and_hello_statuses() {
        let admin = api_file("pub const OP_PING: u8 = 250;\npub const UNRELATED: u8 = 9;\n");
        let mut consts = Vec::new();
        extract("admin", &admin, &mut consts);
        assert_eq!(consts.len(), 1);
        assert_eq!(consts[0].band, "admin op");
        assert_eq!(consts[0].value, 250);

        let hs = api_file("pub const HELLO_OK: u8 = 0;\npub const MAX: usize = 4096;\n");
        let mut consts = Vec::new();
        extract("handshake", &hs, &mut consts);
        assert_eq!(consts.len(), 1);
        assert_eq!(consts[0].band, "handshake");
        assert_eq!(consts[0].name, "HELLO_OK");
    }

    #[test]
    fn extracts_frame_enum_arms_once() {
        let file = api_file(
            "impl FrameType {\n    pub fn as_byte(self) -> u8 {\n        match self {\n\
             FrameType::Hello => 1,\n            FrameType::Request => 3,\n        }\n    }\n\
             \n    pub fn from_byte(b: u8) -> Option<Self> {\n        match b {\n\
             1 => Some(FrameType::Hello),\n            _ => None,\n        }\n    }\n}\n",
        );
        let mut consts = Vec::new();
        extract("frame", &file, &mut consts);
        assert_eq!(consts.len(), 2);
        assert_eq!(consts[0].band, "frame");
        assert_eq!(consts[0].name, "Hello");
        assert_eq!(consts[0].value, 1);
        assert_eq!(consts[1].name, "Request");
    }

    #[test]
    fn value_suffixes_and_radixes_parse() {
        assert_eq!(parse_num("250"), Some(250));
        assert_eq!(parse_num("250u8"), Some(250));
        assert_eq!(parse_num("0xFF"), Some(255));
        assert_eq!(parse_num("0b1010"), Some(10));
        assert_eq!(parse_num("1_000"), Some(1000));
    }

    #[test]
    fn consts_in_test_mods_are_not_wire_declarations() {
        let file = api_file(
            "pub mod op {\n    pub const PING: u8 = 1;\n}\n\
             #[cfg(test)]\nmod tests {\n    pub const FAKE: u8 = 9;\n    use super::op;\n}\n",
        );
        let mut consts = Vec::new();
        extract("widget", &file, &mut consts);
        assert_eq!(consts.len(), 1);
        assert_eq!(consts[0].name, "PING");
    }
}
