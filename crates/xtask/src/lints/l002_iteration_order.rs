//! L002 — iteration order: no `HashMap`/`HashSet` in sim-path code.
//!
//! `HashMap` iteration order is randomized per process. Anywhere that
//! order can leak into a message sequence, a stored document, or a
//! rendered exhibit, two replays of the same seed produce different
//! byte streams — the silent-heterogeneity failure mode the paper's
//! offline analysis kept catching. Sim-path crates use `BTreeMap`/
//! `BTreeSet` (deterministic order, and `Ord` keys are already the
//! norm here) or drain hash containers through an explicit sort.
//!
//! The lint intentionally flags *any* mention of the hash containers in
//! sim-path non-test code rather than trying to prove a leak: the
//! burden of proof sits with the waiver, which must explain why order
//! cannot escape.

use crate::config::Config;
use crate::findings::{Finding, LintId};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// Runs L002 over one file.
pub fn check(file: &SourceFile, config: &Config, findings: &mut Vec<Finding>) {
    if !config.sim_path.contains(&file.crate_name) {
        return;
    }
    for token in &file.tokens {
        if token.kind != TokenKind::Ident {
            continue;
        }
        let replacement = match token.text.as_str() {
            "HashMap" => "BTreeMap",
            "HashSet" => "BTreeSet",
            _ => continue,
        };
        if file.is_test_line(token.line) {
            continue;
        }
        findings.push(
            Finding::new(
                LintId::L002,
                &file.rel_path,
                token.line,
                token.col,
                token.len,
                format!(
                    "`{}` in sim-path crate `{}`: iteration order can leak into \
                     message sequences or stored output",
                    token.text, file.crate_name
                ),
            )
            .with_help(format!(
                "use `{replacement}` (deterministic order), drain through an explicit \
                 sort, or waive with proof order cannot escape: \
                 // mps-lint: allow(L002) -- <why>"
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/simpath/src/lib.rs", "simpath", src);
        let config = Config::parse("sim_path = [\"simpath\"]").unwrap();
        let mut findings = Vec::new();
        check(&file, &config, &mut findings);
        findings
    }

    #[test]
    fn flags_hashmap_and_hashset_mentions() {
        let findings =
            run("use std::collections::{HashMap, HashSet};\nstruct S { m: HashMap<u32, u32> }\n");
        assert_eq!(findings.len(), 3);
        assert!(findings[0].message.contains("HashMap"));
        assert!(findings[1].message.contains("HashSet"));
    }

    #[test]
    fn suggests_btree_equivalents() {
        let findings = run("type T = HashSet<u8>;");
        assert!(findings[0].help.as_deref().unwrap().contains("BTreeSet"));
    }

    #[test]
    fn skips_tests_and_other_crates() {
        let findings = run("#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n");
        assert!(findings.is_empty());
        let file = SourceFile::parse(
            "crates/tooling/src/lib.rs",
            "tooling",
            "use std::collections::HashMap;",
        );
        let config = Config::parse("sim_path = [\"simpath\"]").unwrap();
        let mut findings = Vec::new();
        check(&file, &config, &mut findings);
        assert!(findings.is_empty());
    }
}
