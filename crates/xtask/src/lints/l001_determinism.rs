//! L001 — determinism: no wall clock or ambient RNG in sim-path code.
//!
//! The repo's conservation proofs (`arrived + dropped + blackholed ==
//! sent + duplicated`, one-terminal-per-trace) are only meaningful if a
//! seeded scenario replays identically. A single `Instant::now()` or
//! `thread_rng()` on the sim path silently breaks that: two runs of the
//! same seed diverge and the offline analysis loses its ground truth.
//! Sim-path code must take time from the sim clock and randomness from
//! the splittable seeded RNG in `mps-simcore`.

use crate::config::Config;
use crate::findings::{Finding, LintId};
use crate::scan::SourceFile;

const BANNED_PATHS: &[(&[&str], &str)] = &[
    (
        &["SystemTime", "::", "now"],
        "wall-clock read (`SystemTime::now`)",
    ),
    (
        &["Instant", "::", "now"],
        "wall-clock read (`Instant::now`)",
    ),
    (
        &["rand", "::", "thread_rng"],
        "ambient RNG (`rand::thread_rng`)",
    ),
    (&["thread_rng"], "ambient RNG (`thread_rng`)"),
    (
        &["rand", "::", "random"],
        "ambient RNG (argless `rand::random`)",
    ),
];

/// Runs L001 over one file.
pub fn check(file: &SourceFile, config: &Config, findings: &mut Vec<Finding>) {
    if !config.sim_path.contains(&file.crate_name) {
        return;
    }
    let tokens = &file.tokens;
    let mut i = 0;
    while i < tokens.len() {
        if file.is_test_line(tokens[i].line) {
            i += 1;
            continue;
        }
        let mut matched = None;
        for (path, what) in BANNED_PATHS {
            // Require a path *start*: not preceded by `::` (so
            // `rand::thread_rng` doesn't double-report via the bare
            // `thread_rng` pattern).
            let preceded_by_path = i >= 2
                && super::is_punct(tokens, i - 1, ':')
                && super::is_punct(tokens, i - 2, ':');
            if preceded_by_path && path.len() == 1 {
                continue;
            }
            if let Some(consumed) = super::match_path(tokens, i, path) {
                matched = Some((consumed, *what));
                break;
            }
        }
        if let Some((consumed, what)) = matched {
            let start = &tokens[i];
            let end = &tokens[i + consumed - 1];
            let len = if end.line == start.line {
                end.col + end.len - start.col
            } else {
                start.len
            };
            findings.push(
                Finding::new(
                    LintId::L001,
                    &file.rel_path,
                    start.line,
                    start.col,
                    len,
                    format!(
                        "{what} in sim-path crate `{}` breaks replay determinism",
                        file.crate_name
                    ),
                )
                .with_help(
                    "take time from the sim clock (SimTime) and randomness from the \
                     seeded splittable RNG in mps-simcore; or waive: \
                     // mps-lint: allow(L001) -- <why>",
                ),
            );
            i += consumed;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/simpath/src/lib.rs", "simpath", src);
        let config = Config::parse("sim_path = [\"simpath\"]").unwrap();
        let mut findings = Vec::new();
        check(&file, &config, &mut findings);
        findings
    }

    #[test]
    fn flags_instant_and_systemtime() {
        let findings =
            run("fn f() { let a = Instant::now(); let b = std::time::SystemTime::now(); }");
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].lint, LintId::L001);
    }

    #[test]
    fn flags_thread_rng_once() {
        let findings = run("fn f() { let r = rand::thread_rng(); }");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn skips_test_code_and_strings() {
        let findings = run(
            "fn f() { let s = \"Instant::now\"; }\n#[cfg(test)]\nmod tests { fn t() { let x = Instant::now(); } }\n",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn skips_non_sim_path_crates() {
        let file = SourceFile::parse(
            "crates/other/src/lib.rs",
            "other",
            "fn f() { Instant::now(); }",
        );
        let config = Config::parse("sim_path = [\"simpath\"]").unwrap();
        let mut findings = Vec::new();
        check(&file, &config, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn span_covers_the_whole_path() {
        let findings = run("fn f() { let t = Instant::now(); }");
        assert_eq!(findings[0].col, 18);
        assert_eq!(findings[0].len, "Instant::now".len() as u32);
    }
}
