//! L005 — header keys: message-header names come from shared constants.
//!
//! The broker's messages carry extension headers (`x-trace`,
//! `x-trace-sent-ms`, …) that multiple crates must agree on
//! byte-for-byte — a typo on one side silently drops trace propagation,
//! which is exactly the cross-layer blindness the tracing PR exists to
//! remove. Header-key string literals are therefore only allowed in the
//! shared constants module (`mps-types`, see `mps-lint.toml`
//! `headers_home`); everyone else imports the constant.

use crate::config::Config;
use crate::findings::{Finding, LintId};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// Does `s` look like an extension header key (`x-` + kebab-case)?
fn is_header_key(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("x-") else {
        return false;
    };
    !rest.is_empty()
        && rest.starts_with(|c: char| c.is_ascii_lowercase() || c.is_ascii_digit())
        && rest
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Runs L005 over one file.
pub fn check(file: &SourceFile, config: &Config, findings: &mut Vec<Finding>) {
    if file.rel_path == config.headers_home {
        return;
    }
    for token in &file.tokens {
        if token.kind != TokenKind::Str
            || !is_header_key(&token.text)
            || file.is_test_line(token.line)
        {
            continue;
        }
        findings.push(
            Finding::new(
                LintId::L005,
                &file.rel_path,
                token.line,
                token.col,
                token.len,
                format!(
                    "header key literal \"{}\" outside the shared constants module",
                    token.text
                ),
            )
            .with_help(format!(
                "import the constant from `{}` so both sides of the wire agree \
                 byte-for-byte; or waive: // mps-lint: allow(L005) -- <why>",
                config.headers_home
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::parse(path, "pipe", src);
        let config = Config::parse("sim_path = [\"pipe\"]").unwrap();
        let mut findings = Vec::new();
        check(&file, &config, &mut findings);
        findings
    }

    #[test]
    fn flags_header_literals_elsewhere() {
        let findings = run(
            "crates/pipe/src/lib.rs",
            "fn f(m: &mut Msg) { m.set_header(\"x-trace\", id); }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("x-trace"));
    }

    #[test]
    fn allows_the_constants_module() {
        let findings = run(
            "crates/types/src/headers.rs",
            "pub const TRACE_HEADER: &str = \"x-trace\";",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn ignores_non_header_strings_and_tests() {
        let findings = run(
            "crates/pipe/src/lib.rs",
            "fn f() { let a = \"x-ray vision\"; let b = \"prefix-x-\"; }\n#[cfg(test)]\nmod tests { fn t() { set(\"x-trace\"); } }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn header_key_shape() {
        assert!(is_header_key("x-trace"));
        assert!(is_header_key("x-trace-sent-ms"));
        assert!(!is_header_key("x-"));
        assert!(!is_header_key("x-Trace"));
        assert!(!is_header_key("x-ray vision"));
        assert!(!is_header_key("trace"));
    }
}
