//! Workspace discovery and per-file source model.
//!
//! The scanner walks `crates/*/src/**/*.rs` plus the umbrella crate's
//! `src/`, lexes every file once, and computes which lines are *test
//! code* so lints can skip them:
//!
//! * files whose path contains `/tests/`, `/benches/` or `/examples/`,
//!   or that are named `proptests.rs` (the workspace convention for
//!   `#[cfg(test)] mod proptests;` include files), are test code
//!   entirely;
//! * `#![cfg(test)]` as a leading inner attribute marks the whole file;
//! * `#[cfg(test)] mod … { … }` regions are test code, brace-matched
//!   on the token stream.

use crate::lexer::{self, Comment, Token, TokenKind};
use std::path::{Path, PathBuf};

/// One lexed workspace source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Short crate name (`broker` for `crates/broker/…`; empty for the
    /// umbrella `src/`).
    pub crate_name: String,
    /// Raw source lines, for span rendering.
    pub lines: Vec<String>,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// All comments.
    pub comments: Vec<Comment>,
    /// `test_lines[line - 1]` is true when the line is test code.
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Lexes `text` as the file at `rel_path`.
    pub fn parse(rel_path: &str, crate_name: &str, text: &str) -> Self {
        let lexed = lexer::lex(text);
        let lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let mut test_lines = vec![false; lines.len()];
        let whole_file_test = rel_path.contains("/tests/")
            || rel_path.contains("/benches/")
            || rel_path.starts_with("tests/")
            || rel_path.starts_with("benches/")
            || rel_path.starts_with("examples/")
            || rel_path.contains("/examples/")
            || rel_path.ends_with("proptests.rs")
            || has_inner_cfg_test(&lexed.tokens);
        if whole_file_test {
            test_lines.iter_mut().for_each(|l| *l = true);
        } else {
            for (start, end) in cfg_test_regions(&lexed.tokens) {
                for line in start..=end.min(lines.len() as u32) {
                    if let Some(slot) = test_lines.get_mut(line.saturating_sub(1) as usize) {
                        *slot = true;
                    }
                }
            }
        }
        Self {
            rel_path: rel_path.to_owned(),
            crate_name: crate_name.to_owned(),
            lines,
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_lines,
        }
    }

    /// Is this 1-based line inside test code?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The raw text of a 1-based line, for finding rendering.
    pub fn line_text(&self, line: u32) -> Option<&str> {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(String::as_str)
    }
}

/// Does the file start with `#![cfg(test)]` (possibly after other inner
/// attributes)?
fn has_inner_cfg_test(tokens: &[Token]) -> bool {
    let mut i = 0;
    while i + 1 < tokens.len() && tokens[i].text == "#" && tokens[i + 1].text == "!" {
        // Scan the `[ … ]` group.
        let Some(open) = tokens[i + 2..].first() else {
            return false;
        };
        if open.text != "[" {
            return false;
        }
        let mut depth = 0usize;
        let mut j = i + 2;
        let mut body = Vec::new();
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => body.push(tokens[j].text.as_str()),
            }
            j += 1;
        }
        if body.first() == Some(&"cfg") && body.contains(&"test") {
            return true;
        }
        i = j + 1;
    }
    false
}

/// Finds `(start_line, end_line)` for every `#[cfg(test)] mod … { … }`
/// region (also `#[cfg(all(test, …))]` etc. — any `cfg` attribute
/// mentioning `test`).
fn cfg_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens[i].kind != TokenKind::Punct {
            i += 1;
            continue;
        }
        // Outer attribute: `#[ … ]`.
        let Some(next) = tokens.get(i + 1) else { break };
        if next.text != "[" {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut body: Vec<&str> = Vec::new();
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                other => body.push(other),
            }
            j += 1;
        }
        let is_cfg_test = body.first() == Some(&"cfg") && body.contains(&"test");
        if !is_cfg_test {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name { … }` or a
        // `#[cfg(test)]`-gated item. Only `mod` bodies become regions;
        // a gated single item (e.g. `#[cfg(test)] fn helper()`) is
        // brace-matched the same way.
        let mut k = j + 1;
        while k + 1 < tokens.len() && tokens[k].text == "#" && tokens[k + 1].text == "[" {
            let mut d = 0usize;
            k += 1;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Find the opening `{` of the item (stop at `;` — e.g.
        // `#[cfg(test)] mod proptests;` has no body in this file).
        let mut open = None;
        let mut m = k;
        while m < tokens.len() {
            match tokens[m].text.as_str() {
                "{" => {
                    open = Some(m);
                    break;
                }
                ";" => break,
                _ => m += 1,
            }
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let mut brace_depth = 0usize;
        let mut end = open;
        while end < tokens.len() {
            match tokens[end].text.as_str() {
                "{" => brace_depth += 1,
                "}" => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let end_line = tokens.get(end).map_or(u32::MAX, |t| t.line);
        regions.push((start_line, end_line));
        i = end + 1;
    }
    regions
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Loads every workspace source file under `root` (`crates/*/src` and
/// the umbrella `src/`).
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        for file in rust_files(&crate_dir.join("src")) {
            out.push(load_file(root, &file, &crate_name)?);
        }
    }
    for file in rust_files(&root.join("src")) {
        out.push(load_file(root, &file, "")?);
    }
    Ok(out)
}

fn load_file(root: &Path, file: &Path, crate_name: &str) -> std::io::Result<SourceFile> {
    let text = std::fs::read_to_string(file)?;
    let rel = file
        .strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(SourceFile::parse(&rel, crate_name, &text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn proptests_and_test_dirs_are_whole_file_test() {
        for path in [
            "crates/x/src/proptests.rs",
            "crates/x/tests/integration.rs",
            "crates/x/benches/speed.rs",
            "examples/demo.rs",
        ] {
            let f = SourceFile::parse(path, "x", "fn f() { x.unwrap(); }\n");
            assert!(f.is_test_line(1), "{path} should be test code");
        }
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "x",
            "#![cfg(test)]\nfn f() { x.unwrap(); }\n",
        );
        assert!(f.is_test_line(2));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod tests { }\nfn live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn non_test_cfg_is_not_marked() {
        let src = "#[cfg(feature = \"extra\")]\nmod extra { fn f() {} }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn nested_braces_inside_test_mod() {
        let src = "#[cfg(test)]\nmod tests {\n    fn a() { if x { y() } }\n    fn b() {}\n}\nfn live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }
}
