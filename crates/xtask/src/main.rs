//! CLI entry point: `cargo run -p xtask -- <lint|wal-inspect|obs> [options]`.

// A CLI's job is to print.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo run -p xtask -- lint [options]
       cargo run -p xtask -- wal-inspect <log-dir>
       cargo run -p xtask --features obs -- obs <name=host:port>... [options]

lint: runs mps-lint, the workspace invariant checker (L001–L008).

options:
  --write-metrics-doc   regenerate docs/METRICS.md instead of gating on it
  --write-opcodes-doc   regenerate docs/OPCODES.md instead of gating on it
  --report <path>       also write the full report to <path>
  --root <path>         workspace root (default: current directory)
  -h, --help            this message

wal-inspect: dumps and validates an mps-wal log directory without
modifying it (torn tails are reported, not truncated).

obs: scrapes the admin opcodes of every listed daemon and prints the
fleet dashboard (merged metrics, stitched traces, loss attribution,
slow RPCs, SLO burn). Needs the non-default `obs` cargo feature.

obs options:
  --slo-p99-ms <ms>     declared server RPC p99 budget (default 50)
  --drain               clear each instance's flight recorder after export
  --merged-metrics <p>  also write the instance-labelled merged scrape to <p>
  --spans <path>        also write the merged span export (JSONL) to <p>

exit status: 0 clean/healthy, 1 findings/unhealthy, 2 usage or config error
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if command == "-h" || command == "--help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if command == "wal-inspect" {
        return wal_inspect(args.collect());
    }
    if command == "obs" {
        return obs(args.collect());
    }
    if command != "lint" {
        eprintln!("unknown command `{command}`\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut write_metrics_doc = false;
    let mut write_opcodes_doc = false;
    let mut report_path: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-metrics-doc" => write_metrics_doc = true,
            "--write-opcodes-doc" => write_opcodes_doc = true,
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--report needs a path\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let outcome = match xtask::run_lint(&root, write_metrics_doc, write_opcodes_doc) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("mps-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", outcome.report);
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &outcome.report) {
            eprintln!("mps-lint: cannot write report to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if outcome.error_count > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `obs <name=addr>...`: scrape the fleet and print the ops dashboard.
#[cfg(feature = "obs")]
fn obs(args: Vec<String>) -> ExitCode {
    use mps_net::client::ClientConfig;
    use mps_net::fleet::{Endpoint, FleetSnapshot};

    let mut endpoints: Vec<Endpoint> = Vec::new();
    let mut slo_p99_ms = 50.0f64;
    let mut drain = false;
    let mut merged_metrics_path: Option<PathBuf> = None;
    let mut spans_path: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--drain" => drain = true,
            "--slo-p99-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => slo_p99_ms = ms,
                None => {
                    eprintln!("--slo-p99-ms needs a number\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--merged-metrics" => match it.next() {
                Some(p) => merged_metrics_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--merged-metrics needs a path\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--spans" => match it.next() {
                Some(p) => spans_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--spans needs a path\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            spec => match Endpoint::parse(spec) {
                Ok(endpoint) => endpoints.push(endpoint),
                Err(e) => {
                    eprintln!("{e}\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
        }
    }
    if endpoints.is_empty() {
        eprintln!("obs needs at least one name=host:port endpoint\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let snapshot = FleetSnapshot::scrape(&endpoints, &ClientConfig::default(), drain);
    print!("{}", snapshot.render_dashboard(slo_p99_ms));
    if let Some(path) = merged_metrics_path {
        if let Err(e) = std::fs::write(&path, snapshot.merged_metrics()) {
            eprintln!(
                "obs: cannot write merged metrics to {}: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }
    if let Some(path) = spans_path {
        let mut jsonl = String::new();
        for span in snapshot.merged_spans() {
            jsonl.push_str(&span.to_jsonl());
            jsonl.push('\n');
        }
        if let Err(e) = std::fs::write(&path, jsonl) {
            eprintln!("obs: cannot write spans to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let healthy = snapshot
        .instances
        .iter()
        .all(|i| i.error.is_none() && i.ready());
    if healthy {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Without the `obs` cargo feature the command only explains how to get
/// it — the default build must stay buildable from the lint-path crates
/// alone.
#[cfg(not(feature = "obs"))]
fn obs(_args: Vec<String>) -> ExitCode {
    eprintln!(
        "the `obs` dashboard is feature-gated; rebuild with:\n\
         \n    cargo run -p xtask --features obs -- obs <name=host:port>...\n"
    );
    ExitCode::from(2)
}

/// `wal-inspect <log-dir>`: read-only dump + health verdict of a log.
fn wal_inspect(args: Vec<String>) -> ExitCode {
    let path = match args.as_slice() {
        [p] if p != "-h" && p != "--help" => PathBuf::from(p),
        [p] if p == "-h" || p == "--help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => {
            eprintln!("wal-inspect needs exactly one log directory\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = match mps_wal::inspect(&path) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("wal-inspect: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    println!("log directory: {}", path.display());
    for seg in &report.segments {
        println!(
            "segment {} start-lsn {} records {} bytes {} ({} valid){}",
            seg.path.display(),
            seg.start_lsn,
            seg.records,
            seg.bytes,
            seg.valid_bytes,
            if seg.torn { " TORN" } else { "" },
        );
    }
    for snap in &report.snapshots {
        println!(
            "snapshot {} covers-lsn {} bytes {}{}",
            snap.path.display(),
            snap.lsn,
            snap.bytes,
            if snap.valid { "" } else { " INVALID" },
        );
    }
    for tmp in &report.orphan_tmp {
        println!("orphan temp file {}", tmp.display());
    }
    println!(
        "total {} valid records across {} segment(s), {} snapshot(s)",
        report.total_records(),
        report.segments.len(),
        report.snapshots.len(),
    );
    if report.healthy() {
        println!("verdict: healthy (a torn tail, if any, is recoverable)");
        ExitCode::SUCCESS
    } else {
        println!("verdict: UNHEALTHY (torn mid-log segment or invalid snapshot)");
        ExitCode::FAILURE
    }
}
