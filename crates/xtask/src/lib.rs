//! `mps-lint` — the workspace invariant checker.
//!
//! Run as `cargo run -p xtask -- lint`. The tool lexes every workspace
//! source file (a small hand-rolled lexer; no external dependencies)
//! and enforces eight invariants the compiler cannot see but the paper's
//! methodology depends on:
//!
//! * **L001 determinism** — no wall clock / ambient RNG in sim-path
//!   crates;
//! * **L002 iteration order** — no `HashMap`/`HashSet` in sim-path
//!   crates;
//! * **L003 panic paths** — no `unwrap`/`expect`/`panic!` in non-test
//!   pipeline code;
//! * **L004 metric hygiene** — literal, convention-conforming metric
//!   names, no near-duplicates, and a fresh generated `docs/METRICS.md`;
//! * **L005 header keys** — message-header literals only in the shared
//!   constants module;
//! * **L006 spec conformance** — the normative wire-protocol tables
//!   and the declared constants must agree (and `docs/OPCODES.md` must
//!   be fresh);
//! * **L007 wire-constant confinement** — raw opcode literals only in
//!   the declaring api modules;
//! * **L008 lock discipline** — no lock-order cycles, no blocking I/O
//!   under a live guard.
//!
//! Violations are waived inline with
//! `// mps-lint: allow(<id>) -- <justification>`; unjustified (W001)
//! and unused (W002) waivers are themselves findings. See
//! `docs/STATIC_ANALYSIS.md` for the rationale and workflow.

pub mod config;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod metrics_doc;
pub mod opcodes_doc;
pub mod scan;
pub mod spec;
pub mod waivers;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use config::Config;
use findings::Finding;

/// The result of one lint run.
#[derive(Debug)]
pub struct LintOutcome {
    /// Every finding, waived ones included, sorted by location.
    pub findings: Vec<Finding>,
    /// The full rustc-style report.
    pub report: String,
    /// The rendered metric inventory (`docs/METRICS.md` content).
    pub metrics_doc: String,
    /// The rendered wire-constant inventory (`docs/OPCODES.md`
    /// content; empty when L006 is disabled).
    pub opcodes_doc: String,
    /// Unwaived findings — nonzero means the run failed.
    pub error_count: usize,
}

/// Runs every lint over the workspace at `root`.
///
/// With `write_metrics_doc` / `write_opcodes_doc` the corresponding
/// generated inventory is written to disk (and its staleness check
/// trivially passes); without them a stale or missing inventory is a
/// finding.
pub fn run_lint(
    root: &Path,
    write_metrics_doc: bool,
    write_opcodes_doc: bool,
) -> Result<LintOutcome, String> {
    let config = Config::load(&root.join("mps-lint.toml")).map_err(|e| e.to_string())?;
    let files = scan::load_workspace(root)
        .map_err(|e| format!("cannot scan workspace at {}: {e}", root.display()))?;
    Ok(run_lint_on(
        &config,
        &files,
        root,
        write_metrics_doc,
        write_opcodes_doc,
    ))
}

/// Runs every lint over already-loaded files. Split out so fixture
/// tests can lint an in-memory workspace.
pub fn run_lint_on(
    config: &Config,
    files: &[scan::SourceFile],
    root: &Path,
    write_metrics_doc: bool,
    write_opcodes_doc: bool,
) -> LintOutcome {
    let files: Vec<&scan::SourceFile> = files
        .iter()
        .filter(|f| !config.exclude.contains(&f.crate_name))
        .collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut all_waivers = Vec::new();
    let mut sites = Vec::new();

    let mut lock_graphs: BTreeMap<&str, lints::l008_lock_discipline::CrateGraph> = BTreeMap::new();
    for file in &files {
        lints::l001_determinism::check(file, config, &mut findings);
        lints::l002_iteration_order::check(file, config, &mut findings);
        lints::l003_panic_path::check(file, config, &mut findings);
        lints::l004_metric_hygiene::collect(file, config, &mut sites, &mut findings);
        lints::l005_header_keys::check(file, config, &mut findings);
        lints::l007_wire_literals::check(file, config, &mut findings);
        if config.lock_discipline.contains(&file.crate_name) {
            let graph = lock_graphs.entry(file.crate_name.as_str()).or_default();
            lints::l008_lock_discipline::check_file(file, graph, &mut findings);
        }
        let (waivers, waiver_findings) = waivers::parse_waivers(&file.rel_path, &file.comments);
        all_waivers.extend(waivers);
        findings.extend(waiver_findings);
    }

    lints::l004_metric_hygiene::check_cross(&sites, &mut findings);
    for (crate_name, graph) in &lock_graphs {
        lints::l008_lock_discipline::check_crate_graph(crate_name, graph, &mut findings);
    }
    let wire_rows = lints::l006_spec_conformance::check(config, &files, root, &mut findings);

    // Metric inventory: regenerate, then either write it or gate on
    // the checked-in copy being current.
    let rendered_doc = metrics_doc::render(&sites);
    let doc_path = root.join(&config.metrics_doc);
    if write_metrics_doc {
        if let Some(parent) = doc_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&doc_path, &rendered_doc) {
            findings.push(Finding::new(
                findings::LintId::L004,
                &config.metrics_doc,
                1,
                1,
                1,
                format!("cannot write {}: {e}", config.metrics_doc),
            ));
        }
    } else {
        let checked_in = std::fs::read_to_string(&doc_path).ok();
        metrics_doc::check_stale(
            &rendered_doc,
            checked_in.as_deref(),
            &config.metrics_doc,
            &mut findings,
        );
    }

    // Wire-constant inventory: same write-or-gate cycle as the metric
    // inventory, but only when L006 is enabled (a spec is configured).
    let rendered_opcodes = if config.protocol_spec.is_empty() {
        String::new()
    } else {
        let rendered = opcodes_doc::render(&wire_rows, &config.protocol_spec);
        let doc_path = root.join(&config.opcodes_doc);
        if write_opcodes_doc {
            if let Some(parent) = doc_path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = std::fs::write(&doc_path, &rendered) {
                findings.push(Finding::new(
                    findings::LintId::L006,
                    &config.opcodes_doc,
                    1,
                    1,
                    1,
                    format!("cannot write {}: {e}", config.opcodes_doc),
                ));
            }
        } else {
            let checked_in = std::fs::read_to_string(&doc_path).ok();
            opcodes_doc::check_stale(
                &rendered,
                checked_in.as_deref(),
                &config.opcodes_doc,
                &mut findings,
            );
        }
        rendered
    };

    waivers::apply_waivers(&mut findings, &mut all_waivers);
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));

    let by_path: BTreeMap<&str, &scan::SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), *f)).collect();
    let mut report = String::new();
    for finding in &findings {
        let line = by_path
            .get(finding.file.as_str())
            .and_then(|f| f.line_text(finding.line));
        let _ = writeln!(report, "{}", finding.render(line));
    }
    let error_count = findings.iter().filter(|f| !f.waived).count();
    let waived_count = findings.len() - error_count;
    let _ = writeln!(
        report,
        "mps-lint: {} file(s) scanned, {error_count} error(s), {waived_count} waived",
        files.len()
    );

    LintOutcome {
        findings,
        report,
        metrics_doc: rendered_doc,
        opcodes_doc: rendered_opcodes,
        error_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan::SourceFile;

    fn config() -> Config {
        Config::parse(
            r#"
sim_path = ["pipe"]
pipeline = ["pipe"]
metrics = ["pipe"]
"#,
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_waiver_lifecycle() {
        let files = vec![SourceFile::parse(
            "crates/pipe/src/lib.rs",
            "pipe",
            "fn f() {\n    // mps-lint: allow(L003) -- invariant: queue is non-empty here\n    x.unwrap();\n    y.unwrap();\n}\n",
        )];
        let outcome = run_lint_on(&config(), &files, Path::new("/nonexistent"), false, false);
        // Line 3 waived; line 4 not. (The missing metrics doc also
        // reports, under L004 — filtered out here.)
        let l003: Vec<_> = outcome
            .findings
            .iter()
            .filter(|f| f.lint == findings::LintId::L003)
            .collect();
        assert_eq!(l003.len(), 2);
        assert!(l003[0].waived);
        assert!(!l003[1].waived);
    }

    #[test]
    fn report_is_rustc_shaped() {
        let files = vec![SourceFile::parse(
            "crates/pipe/src/lib.rs",
            "pipe",
            "fn f() { let t = Instant::now(); }\n",
        )];
        let outcome = run_lint_on(&config(), &files, Path::new("/nonexistent"), false, false);
        assert!(outcome.report.contains("error[L001]"));
        assert!(outcome.report.contains("--> crates/pipe/src/lib.rs:1:18"));
        assert!(outcome.report.contains("^^^^^^^^^^^^"));
        assert!(outcome.error_count >= 1);
    }
}
