//! Findings and their rustc-style rendering.

use std::fmt::Write as _;

/// Stable identifiers for every rule the tool can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    /// Nondeterminism: wall clock or ambient RNG in a sim-path crate.
    L001,
    /// Iteration-order leak: `HashMap`/`HashSet` in a sim-path crate.
    L002,
    /// Panic path: `unwrap`/`expect`/`panic!`/`unreachable!` in
    /// non-test pipeline code.
    L003,
    /// Metric hygiene: naming convention, literal names, near-duplicate
    /// detection, and the generated inventory.
    L004,
    /// Ad-hoc message-header key literal outside the canonical
    /// constants module.
    L005,
    /// Spec↔code conformance: the normative wire-protocol tables and
    /// the declared constants must agree (names, values, reply shapes,
    /// dispatch arms, test coverage, the generated inventory).
    L006,
    /// Wire-constant confinement: raw opcode/frame-type integer
    /// literals in call, comparison, or field-init position instead of
    /// a named constant.
    L007,
    /// Lock discipline: lock-order cycles and blocking I/O performed
    /// while a guard is live.
    L008,
    /// A waiver comment without a written justification.
    W001,
    /// A waiver comment that matched no finding.
    W002,
}

impl LintId {
    /// The stable ID string (`L001`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            LintId::L001 => "L001",
            LintId::L002 => "L002",
            LintId::L003 => "L003",
            LintId::L004 => "L004",
            LintId::L005 => "L005",
            LintId::L006 => "L006",
            LintId::L007 => "L007",
            LintId::L008 => "L008",
            LintId::W001 => "W001",
            LintId::W002 => "W002",
        }
    }

    /// Parses an ID as written in a waiver (`allow(L003)`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "L001" => Some(LintId::L001),
            "L002" => Some(LintId::L002),
            "L003" => Some(LintId::L003),
            "L004" => Some(LintId::L004),
            "L005" => Some(LintId::L005),
            "L006" => Some(LintId::L006),
            "L007" => Some(LintId::L007),
            "L008" => Some(LintId::L008),
            "W001" => Some(LintId::W001),
            "W002" => Some(LintId::W002),
            _ => None,
        }
    }
}

impl std::fmt::Display for LintId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported violation, anchored to a source span.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub lint: LintId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Caret width in characters (0 renders a single caret).
    pub len: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (rendered as a `help:` note).
    pub help: Option<String>,
    /// Set when an inline waiver covers this finding.
    pub waived: bool,
    /// The waiver justification, when waived.
    pub justification: Option<String>,
}

impl Finding {
    /// A finding with no help text yet.
    pub fn new(lint: LintId, file: &str, line: u32, col: u32, len: u32, message: String) -> Self {
        Self {
            lint,
            file: file.to_owned(),
            line,
            col,
            len,
            message,
            help: None,
            waived: false,
            justification: None,
        }
    }

    /// Attaches a `help:` note.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Renders this finding rustc-style, quoting `source_line` when
    /// available.
    pub fn render(&self, source_line: Option<&str>) -> String {
        let mut out = String::new();
        let severity = if self.waived { "waived" } else { "error" };
        let _ = writeln!(out, "{severity}[{}]: {}", self.lint, self.message);
        let _ = writeln!(out, "  --> {}:{}:{}", self.file, self.line, self.col);
        if let Some(text) = source_line {
            let gutter = self.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, "{pad} |");
            let _ = writeln!(out, "{gutter} | {text}");
            let caret_pad = " ".repeat(self.col.saturating_sub(1) as usize);
            let carets = "^".repeat(self.len.max(1) as usize);
            let _ = writeln!(out, "{pad} | {caret_pad}{carets}");
        }
        if let Some(help) = &self.help {
            let _ = writeln!(out, "   = help: {help}");
        }
        if let Some(justification) = &self.justification {
            let _ = writeln!(out, "   = waived: {justification}");
        }
        out
    }

    /// The compact one-line form used in fixture snapshots:
    /// `L003 crates/pipe/src/lib.rs:4:19`.
    pub fn compact(&self) -> String {
        format!("{} {}:{}:{}", self.lint, self.file, self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_span_and_caret() {
        let f = Finding::new(
            LintId::L001,
            "crates/x/src/lib.rs",
            3,
            9,
            12,
            "wall-clock read".to_owned(),
        )
        .with_help("use the sim clock");
        let rendered = f.render(Some("let t = Instant::now();"));
        assert!(rendered.contains("error[L001]: wall-clock read"));
        assert!(rendered.contains("--> crates/x/src/lib.rs:3:9"));
        assert!(rendered.contains("^^^^^^^^^^^^"));
        assert!(rendered.contains("help: use the sim clock"));
    }

    #[test]
    fn waived_findings_render_as_waived() {
        let mut f = Finding::new(LintId::L003, "a.rs", 1, 1, 6, "panic path".to_owned());
        f.waived = true;
        f.justification = Some("constructor invariant".to_owned());
        let rendered = f.render(None);
        assert!(rendered.starts_with("waived[L003]"));
        assert!(rendered.contains("waived: constructor invariant"));
    }

    #[test]
    fn ids_round_trip() {
        for id in [
            LintId::L001,
            LintId::L002,
            LintId::L003,
            LintId::L004,
            LintId::L005,
            LintId::L006,
            LintId::L007,
            LintId::L008,
            LintId::W001,
            LintId::W002,
        ] {
            assert_eq!(LintId::parse(id.as_str()), Some(id));
        }
        assert_eq!(LintId::parse("L999"), None);
    }
}
