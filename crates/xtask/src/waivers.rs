//! Inline waivers: `// mps-lint: allow(<id>[, <id>…]) -- <justification>`.
//!
//! A waiver covers findings on **its own line and the line directly
//! below it** (so it can sit at the end of the offending line or on the
//! line above). Every waiver must carry a justification after ` -- `;
//! a bare waiver is itself a finding (W001), and a waiver that matches
//! no finding is reported as unused (W002) so stale waivers cannot
//! accumulate.

use crate::findings::{Finding, LintId};
use crate::lexer::Comment;

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Workspace-relative path of the file the waiver sits in.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The lint IDs being waived.
    pub ids: Vec<LintId>,
    /// The written justification (empty string when missing).
    pub justification: String,
    /// Set when any finding was suppressed by this waiver.
    pub used: bool,
}

/// Extracts waivers from a file's comments. Malformed waivers (an
/// `mps-lint:` marker that doesn't parse) are reported as W001 findings
/// immediately.
pub fn parse_waivers(file: &str, comments: &[Comment]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for comment in comments {
        let Some(pos) = comment.text.find("mps-lint:") else {
            continue;
        };
        let rest = comment.text[pos + "mps-lint:".len()..].trim();
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            findings.push(
                Finding::new(
                    LintId::W001,
                    file,
                    comment.line,
                    1,
                    0,
                    format!("malformed waiver `{}`", comment.text),
                )
                .with_help("write `// mps-lint: allow(L00X) -- <justification>`"),
            );
            continue;
        };
        let (id_list, tail) = args;
        let mut ids = Vec::new();
        let mut bad_id = None;
        for raw_id in id_list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match LintId::parse(raw_id) {
                Some(id) => ids.push(id),
                None => bad_id = Some(raw_id.to_owned()),
            }
        }
        if let Some(bad) = bad_id {
            findings.push(
                Finding::new(
                    LintId::W001,
                    file,
                    comment.line,
                    1,
                    0,
                    format!("unknown lint id `{bad}` in waiver"),
                )
                .with_help("known ids: L001, L002, L003, L004, L005, L006, L007, L008"),
            );
            continue;
        }
        let justification = tail
            .trim()
            .strip_prefix("--")
            .map(|j| j.trim().to_owned())
            .unwrap_or_default();
        if justification.is_empty() {
            findings.push(
                Finding::new(
                    LintId::W001,
                    file,
                    comment.line,
                    1,
                    0,
                    "waiver without a written justification".to_owned(),
                )
                .with_help("append ` -- <why this violation is acceptable here>` to the waiver"),
            );
            // Unjustified waivers still suppress (the W001 itself keeps
            // the run red), so one problem is reported, not two.
        }
        waivers.push(Waiver {
            file: file.to_owned(),
            line: comment.line,
            ids,
            justification,
            used: false,
        });
    }
    (waivers, findings)
}

/// Marks findings covered by a waiver on the same or preceding line,
/// then reports unused waivers as W002.
pub fn apply_waivers(findings: &mut Vec<Finding>, waivers: &mut [Waiver]) {
    for finding in findings.iter_mut() {
        if matches!(finding.lint, LintId::W001 | LintId::W002) {
            continue;
        }
        for waiver in waivers.iter_mut() {
            let covers_line = finding.line == waiver.line || finding.line == waiver.line + 1;
            if waiver.file == finding.file && covers_line && waiver.ids.contains(&finding.lint) {
                finding.waived = true;
                if !waiver.justification.is_empty() {
                    finding.justification = Some(waiver.justification.clone());
                }
                waiver.used = true;
                break;
            }
        }
    }
    for waiver in waivers.iter().filter(|w| !w.used) {
        findings.push(
            Finding::new(
                LintId::W002,
                &waiver.file,
                waiver.line,
                1,
                0,
                format!(
                    "unused waiver for {}",
                    waiver
                        .ids
                        .iter()
                        .map(|id| id.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
            .with_help("the waived lint no longer fires here; delete the waiver"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, line: u32) -> Comment {
        Comment {
            text: text.to_owned(),
            line,
        }
    }

    #[test]
    fn parses_ids_and_justification() {
        let (waivers, findings) = parse_waivers(
            "a.rs",
            &[comment(
                "mps-lint: allow(L001, L003) -- sim clock not available here",
                7,
            )],
        );
        assert!(findings.is_empty());
        assert_eq!(waivers.len(), 1);
        assert_eq!(waivers[0].ids, vec![LintId::L001, LintId::L003]);
        assert_eq!(waivers[0].justification, "sim clock not available here");
    }

    #[test]
    fn missing_justification_is_w001() {
        let (waivers, findings) = parse_waivers("a.rs", &[comment("mps-lint: allow(L002)", 3)]);
        assert_eq!(waivers.len(), 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, LintId::W001);
    }

    #[test]
    fn unknown_id_is_w001() {
        let (waivers, findings) =
            parse_waivers("a.rs", &[comment("mps-lint: allow(L900) -- nope", 3)]);
        assert!(waivers.is_empty());
        assert_eq!(findings[0].lint, LintId::W001);
    }

    #[test]
    fn waiver_covers_same_and_next_line_only() {
        let mut waivers = vec![Waiver {
            file: "a.rs".into(),
            line: 10,
            ids: vec![LintId::L003],
            justification: "invariant".into(),
            used: false,
        }];
        let mut findings = vec![
            Finding::new(LintId::L003, "a.rs", 10, 1, 1, "same line".into()),
            Finding::new(LintId::L003, "a.rs", 11, 1, 1, "next line".into()),
            Finding::new(LintId::L003, "a.rs", 12, 1, 1, "too far".into()),
        ];
        apply_waivers(&mut findings, &mut waivers);
        assert!(findings[0].waived);
        assert!(findings[1].waived);
        assert!(!findings[2].waived);
        assert_eq!(findings[0].justification.as_deref(), Some("invariant"));
    }

    #[test]
    fn unused_waiver_becomes_w002() {
        let mut waivers = vec![Waiver {
            file: "a.rs".into(),
            line: 4,
            ids: vec![LintId::L001],
            justification: "why".into(),
            used: false,
        }];
        let mut findings = Vec::new();
        apply_waivers(&mut findings, &mut waivers);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, LintId::W002);
    }

    #[test]
    fn waiver_does_not_cover_other_lints_or_files() {
        let mut waivers = vec![Waiver {
            file: "a.rs".into(),
            line: 5,
            ids: vec![LintId::L001],
            justification: "why".into(),
            used: false,
        }];
        let mut findings = vec![
            Finding::new(LintId::L002, "a.rs", 5, 1, 1, "other lint".into()),
            Finding::new(LintId::L001, "b.rs", 5, 1, 1, "other file".into()),
        ];
        apply_waivers(&mut findings, &mut waivers);
        assert!(!findings[0].waived);
        assert!(!findings[1].waived);
        // Plus the unused-waiver report.
        assert_eq!(findings[2].lint, LintId::W002);
    }
}
