//! A minimal, dependency-free Rust lexer.
//!
//! `mps-lint` needs token streams with accurate line/column spans, plus
//! the comment text (waivers live in comments) — not a full parse tree.
//! This lexer handles everything that would otherwise confuse a textual
//! scan: string literals (including raw strings with arbitrary `#`
//! guards and byte strings), character literals vs. lifetimes, nested
//! block comments, and numeric literals. It is intentionally std-only so
//! the lint pass builds in offline environments where `syn` cannot be
//! vendored.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`Instant`, `unwrap`, `mod`, …).
    Ident,
    /// A string literal; `text` holds the *decoded* contents.
    Str,
    /// A character or byte literal (contents not decoded).
    Char,
    /// A lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation character (`.`, `:`, `!`, `(`, …).
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// Token text (decoded contents for strings, name for lifetimes).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
    /// Length of the raw source text, in characters (for caret spans).
    pub len: u32,
}

/// A line (`//`) or block (`/* */`) comment with its position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The output of lexing one file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments (line and block, including doc comments).
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: std::marker::PhantomData<&'a str>,
}

impl Cursor<'_> {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Unterminated constructs are
/// tolerated (consumed to end of file) — the lint pass should degrade,
/// not crash, on malformed input.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.comments.push(Comment {
                    text: text
                        .trim_start_matches('/')
                        .trim_start_matches('!')
                        .trim()
                        .to_owned(),
                    line,
                });
            }
            '/' if cur.peek_at(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                let mut text = String::new();
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: text.trim().to_owned(),
                    line,
                });
            }
            '"' => {
                let (text, len) = lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                    len,
                });
            }
            'r' | 'b' if starts_prefixed_literal(&cur) => {
                let token = lex_prefixed_literal(&mut cur, line, col);
                out.tokens.push(token);
            }
            '\'' => {
                let token = lex_quote(&mut cur, line, col);
                out.tokens.push(token);
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                let len = text.chars().count() as u32;
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                    len,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    // Good enough for spans: consume digits, radix
                    // letters, `_`, `.` followed by a digit, and
                    // exponent signs.
                    let take = is_ident_continue(c)
                        || (c == '.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()))
                        || ((c == '+' || c == '-')
                            && matches!(text.chars().last(), Some('e' | 'E'))
                            && !text.to_ascii_lowercase().starts_with("0x"));
                    if !take {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                let len = text.chars().count() as u32;
                out.tokens.push(Token {
                    kind: TokenKind::Num,
                    text,
                    line,
                    col,
                    len,
                });
            }
            c => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                    col,
                    len: 1,
                });
            }
        }
    }
    out
}

/// Does the cursor sit on a raw/byte string or byte char literal
/// (`r"`, `r#…#"`, `b"`, `b'`, `br"`, `br#…#"`)? Raw *identifiers*
/// (`r#fn`) must not match — hence the hashes-then-quote lookahead.
fn starts_prefixed_literal(cur: &Cursor<'_>) -> bool {
    let hashes_then_quote = |mut ahead: usize| {
        while cur.peek_at(ahead) == Some('#') {
            ahead += 1;
        }
        cur.peek_at(ahead) == Some('"')
    };
    match (cur.peek(), cur.peek_at(1), cur.peek_at(2)) {
        (Some('r'), Some('"'), _) => true,
        (Some('r'), Some('#'), _) => hashes_then_quote(1),
        (Some('b'), Some('"' | '\''), _) => true,
        (Some('b'), Some('r'), Some('"')) => true,
        (Some('b'), Some('r'), Some('#')) => hashes_then_quote(2),
        _ => false,
    }
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` after the check
/// in [`starts_prefixed_literal`].
fn lex_prefixed_literal(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut raw = false;
    let mut consumed = 0u32;
    if cur.peek() == Some('b') {
        cur.bump();
        consumed += 1;
    }
    if cur.peek() == Some('r') {
        raw = true;
        cur.bump();
        consumed += 1;
    }
    if cur.peek() == Some('\'') {
        // Byte char literal `b'x'`.
        let token = lex_quote(cur, line, col);
        return Token {
            len: token.len + consumed,
            col,
            ..token
        };
    }
    if raw {
        let mut guards = 0usize;
        while cur.peek() == Some('#') {
            guards += 1;
            consumed += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        consumed += 1;
        let mut text = String::new();
        'scan: while let Some(c) = cur.peek() {
            if c == '"' {
                // A close candidate: `"` followed by `guards` hashes.
                for g in 0..guards {
                    if cur.peek_at(1 + g) != Some('#') {
                        text.push('"');
                        cur.bump();
                        consumed += 1;
                        continue 'scan;
                    }
                }
                cur.bump();
                consumed += 1;
                for _ in 0..guards {
                    cur.bump();
                    consumed += 1;
                }
                break;
            }
            text.push(c);
            consumed += 1;
            cur.bump();
        }
        let len = consumed + text.chars().count() as u32;
        Token {
            kind: TokenKind::Str,
            text,
            line,
            col,
            len,
        }
    } else {
        let (text, len) = lex_string(cur);
        Token {
            kind: TokenKind::Str,
            text,
            line,
            col,
            len: len + consumed,
        }
    }
}

/// Lexes a `"…"` string starting at the opening quote; returns the
/// decoded contents and raw character length including quotes.
fn lex_string(cur: &mut Cursor<'_>) -> (String, u32) {
    let mut text = String::new();
    let mut len = 1u32;
    cur.bump(); // opening quote
    while let Some(c) = cur.peek() {
        len += 1;
        if c == '"' {
            cur.bump();
            break;
        }
        if c == '\\' {
            cur.bump();
            if let Some(esc) = cur.bump() {
                len += 1;
                match esc {
                    'n' => text.push('\n'),
                    't' => text.push('\t'),
                    'r' => text.push('\r'),
                    '0' => text.push('\0'),
                    '\n' => { /* line continuation */ }
                    other => text.push(other),
                }
            }
            continue;
        }
        text.push(c);
        cur.bump();
    }
    (text, len)
}

/// Lexes either a lifetime (`'a`) or a character literal (`'x'`,
/// `'\n'`) starting at the `'`.
fn lex_quote(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    cur.bump(); // the quote
                // `'\…'` is always a char literal.
    if cur.peek() == Some('\\') {
        let mut len = 2u32;
        cur.bump();
        while let Some(c) = cur.bump() {
            len += 1;
            if c == '\'' {
                break;
            }
        }
        return Token {
            kind: TokenKind::Char,
            text: String::new(),
            line,
            col,
            len,
        };
    }
    // `'c'` (one char then a closing quote) is a char literal; anything
    // else identifier-shaped is a lifetime.
    if cur.peek_at(1) == Some('\'') && cur.peek().is_some() {
        let c = cur.bump().unwrap_or_default();
        cur.bump();
        return Token {
            kind: TokenKind::Char,
            text: c.to_string(),
            line,
            col,
            len: 3,
        };
    }
    let mut name = String::new();
    while let Some(c) = cur.peek() {
        if !is_ident_continue(c) {
            break;
        }
        name.push(c);
        cur.bump();
    }
    let len = 1 + name.chars().count() as u32;
    Token {
        kind: TokenKind::Lifetime,
        text: name,
        line,
        col,
        len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = foo.bar(42);");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "foo".into()));
        assert_eq!(toks[4], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokenKind::Ident, "bar".into()));
        assert_eq!(toks[7], (TokenKind::Num, "42".into()));
    }

    #[test]
    fn strings_decode_escapes() {
        let toks = kinds(r#"let s = "a\"b\nc";"#);
        assert!(toks.contains(&(TokenKind::Str, "a\"b\nc".into())));
    }

    #[test]
    fn raw_strings_with_guards() {
        let toks = kinds(r###"let s = r#"quote " inside"#;"###);
        assert!(toks.contains(&(TokenKind::Str, "quote \" inside".into())));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r###"(b"bytes", br#"raw"#)"###);
        assert!(toks.contains(&(TokenKind::Str, "bytes".into())));
        assert!(toks.contains(&(TokenKind::Str, "raw".into())));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokenKind::Char, "x".into())));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "x"));
    }

    #[test]
    fn static_lifetime() {
        let toks = kinds("x: &'static str");
        assert!(toks.contains(&(TokenKind::Lifetime, "static".into())));
    }

    #[test]
    fn line_comments_are_captured_not_tokenized() {
        let lexed = lex("let a = 1; // mps-lint: allow(L001) -- because\nlet b = 2;");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("mps-lint: allow(L001)"));
        assert!(!lexed.tokens.iter().any(|t| t.text.contains("mps-lint")));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* outer /* inner */ tail */ b");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens.len(), 2);
        assert_eq!(lexed.tokens[1].text, "b");
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let lexed = lex("foo\n  bar");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn string_in_string_does_not_hide_code() {
        // `"Instant::now"` inside a string must stay a Str token, not
        // idents — lints must not fire on it.
        let toks = kinds(r#"let s = "Instant::now()";"#);
        assert!(toks.contains(&(TokenKind::Str, "Instant::now()".into())));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "Instant"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let lexed = lex("/// says `panic!` in prose\nfn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(!lexed.tokens.iter().any(|t| t.text == "panic"));
    }
}
