//! The `mps-lint.toml` configuration file.
//!
//! The config declares *which crates belong to which discipline* — the
//! lint rules themselves live in code. A deliberately small TOML subset
//! is parsed by hand (top-level `key = "string"` and
//! `key = ["a", "b", …]` entries, `#` comments, arrays may span lines)
//! so the tool stays dependency-free.

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed `mps-lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crates (short names, e.g. `broker`) whose non-test code must be
    /// deterministic: no wall clock, no ambient RNG (L001), no
    /// order-leaking hash collections (L002).
    pub sim_path: Vec<String>,
    /// Crates whose non-test code must not contain panic paths (L003).
    pub pipeline: Vec<String>,
    /// Crates scanned for metric registrations (L004).
    pub metrics: Vec<String>,
    /// Workspace-relative path of the generated metric inventory.
    pub metrics_doc: String,
    /// Workspace-relative path of the canonical header-key constants
    /// (the one file allowed to contain `x-…` literals, L005).
    pub headers_home: String,
    /// Crates skipped entirely (the lint tool itself: its sources and
    /// tests are full of deliberately-violating examples).
    pub exclude: Vec<String>,
    /// Workspace-relative path of the normative wire-protocol spec
    /// whose tables L006 cross-checks against the code. Empty (the
    /// default) disables L006.
    pub protocol_spec: String,
    /// Workspace-relative path of the generated wire-constant
    /// inventory (the L006 counterpart of `metrics_doc`).
    pub opcodes_doc: String,
    /// `role=path` pairs naming the files that declare wire constants
    /// for each protocol band. Roles `frame` and `handshake` are
    /// special (enum arms / `HELLO_*` consts); every other role owns a
    /// `mod op` / `mod err` pair or top-level `OP_*` consts, and the
    /// role literally named `admin` must stay inside the admin band
    /// (240..=255). A role may map to several files.
    pub wire_api: Vec<(String, String)>,
    /// Crates (short names) whose lock acquisition order and
    /// guard-held blocking calls L008 analyses. Empty disables L008.
    pub lock_discipline: Vec<String>,
}

/// A config-file error with enough context to fix it.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mps-lint.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Loads and validates the config at `path`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Parses config text. See the module docs for the accepted subset.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut values: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut scalars: BTreeMap<String, String> = BTreeMap::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError(format!(
                    "line {}: expected `key = value`, got `{line}`",
                    idx + 1
                )));
            };
            let key = key.trim().to_owned();
            let mut value = value.trim().to_owned();
            if value.starts_with('[') {
                // Collect continuation lines until the closing bracket.
                while !value.contains(']') {
                    let Some((_, next)) = lines.next() else {
                        return Err(ConfigError(format!(
                            "line {}: unterminated array for `{key}`",
                            idx + 1
                        )));
                    };
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
                let inner = value
                    .trim_start_matches('[')
                    .rsplit_once(']')
                    .map(|(head, _)| head)
                    .unwrap_or_default();
                let items = inner
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|s| parse_string(s, idx + 1, &key))
                    .collect::<Result<Vec<_>, _>>()?;
                values.insert(key, items);
            } else {
                scalars.insert(key.clone(), parse_string(&value, idx + 1, &key)?);
            }
        }
        let take_list = |key: &str| values.get(key).cloned().unwrap_or_default();
        let config = Self {
            sim_path: take_list("sim_path"),
            pipeline: take_list("pipeline"),
            metrics: take_list("metrics"),
            metrics_doc: scalars
                .get("metrics_doc")
                .cloned()
                .unwrap_or_else(|| "docs/METRICS.md".to_owned()),
            headers_home: scalars
                .get("headers_home")
                .cloned()
                .unwrap_or_else(|| "crates/types/src/headers.rs".to_owned()),
            exclude: take_list("exclude"),
            protocol_spec: scalars.get("protocol_spec").cloned().unwrap_or_default(),
            opcodes_doc: scalars
                .get("opcodes_doc")
                .cloned()
                .unwrap_or_else(|| "docs/OPCODES.md".to_owned()),
            wire_api: take_list("wire_api")
                .into_iter()
                .map(|entry| match entry.split_once('=') {
                    Some((role, path)) if !role.trim().is_empty() && !path.trim().is_empty() => {
                        Ok((role.trim().to_owned(), path.trim().to_owned()))
                    }
                    _ => Err(ConfigError(format!(
                        "`wire_api` entries must look like \"role=path\", got `{entry}`"
                    ))),
                })
                .collect::<Result<Vec<_>, _>>()?,
            lock_discipline: take_list("lock_discipline"),
        };
        if config.sim_path.is_empty() {
            return Err(ConfigError(
                "`sim_path` must list at least one crate".to_owned(),
            ));
        }
        Ok(config)
    }
}

fn strip_comment(line: &str) -> &str {
    // Only strip `#` outside quotes; config values never contain `#`.
    match line.find('#') {
        Some(pos)
            if !line[..pos].contains('"') || line[..pos].matches('"').count().is_multiple_of(2) =>
        {
            &line[..pos]
        }
        _ => line,
    }
}

fn parse_string(raw: &str, line: usize, key: &str) -> Result<String, ConfigError> {
    let raw = raw.trim();
    if raw.len() >= 2 && raw.starts_with('"') && raw.ends_with('"') {
        Ok(raw[1..raw.len() - 1].to_owned())
    } else {
        Err(ConfigError(format!(
            "line {line}: `{key}` values must be double-quoted strings, got `{raw}`"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lists_scalars_and_comments() {
        let cfg = Config::parse(
            r#"
# sim-path crates
sim_path = ["simcore", "broker"]
pipeline = [
    "broker",  # the broker
    "goflow",
]
metrics = ["broker"]
metrics_doc = "docs/METRICS.md"
headers_home = "crates/types/src/headers.rs"
"#,
        )
        .unwrap();
        assert_eq!(cfg.sim_path, vec!["simcore", "broker"]);
        assert_eq!(cfg.pipeline, vec!["broker", "goflow"]);
        assert_eq!(cfg.metrics_doc, "docs/METRICS.md");
    }

    #[test]
    fn missing_sim_path_is_an_error() {
        assert!(Config::parse("pipeline = [\"a\"]").is_err());
    }

    #[test]
    fn unquoted_values_are_rejected() {
        assert!(Config::parse("sim_path = [broker]").is_err());
    }

    #[test]
    fn defaults_for_paths() {
        let cfg = Config::parse("sim_path = [\"a\"]").unwrap();
        assert_eq!(cfg.metrics_doc, "docs/METRICS.md");
        assert_eq!(cfg.headers_home, "crates/types/src/headers.rs");
        assert_eq!(cfg.protocol_spec, "");
        assert_eq!(cfg.opcodes_doc, "docs/OPCODES.md");
        assert!(cfg.wire_api.is_empty());
        assert!(cfg.lock_discipline.is_empty());
    }

    #[test]
    fn wire_api_entries_split_into_role_and_path() {
        let cfg = Config::parse(
            "sim_path = [\"a\"]\n\
             protocol_spec = \"docs/WIRE.md\"\n\
             wire_api = [\"frame=crates/net/src/frame.rs\", \"admin=crates/net/src/admin.rs\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.protocol_spec, "docs/WIRE.md");
        assert_eq!(
            cfg.wire_api,
            vec![
                ("frame".to_owned(), "crates/net/src/frame.rs".to_owned()),
                ("admin".to_owned(), "crates/net/src/admin.rs".to_owned()),
            ]
        );
    }

    #[test]
    fn malformed_wire_api_entry_is_an_error() {
        assert!(Config::parse("sim_path = [\"a\"]\nwire_api = [\"no-equals-sign\"]").is_err());
        assert!(Config::parse("sim_path = [\"a\"]\nwire_api = [\"=path-only\"]").is_err());
    }
}
