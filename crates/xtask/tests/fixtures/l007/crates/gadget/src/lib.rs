//! Fixture gadget client: raw wire-constant literals outside the
//! declaring api module, in every position L007 recognises.

pub mod api;

use api::OP_STATUS;

/// A request envelope.
pub struct Req {
    pub opcode: u8,
    pub body: Vec<u8>,
}

/// A fake connection with an opcode-taking call helper.
pub struct Conn;

impl Conn {
    pub fn call(&self, _opcode: u8, _body: &[u8]) -> Vec<u8> {
        Vec::new()
    }
}

/// Clean: the constant is named.
pub fn good(conn: &Conn) -> Vec<u8> {
    conn.call(OP_STATUS, b"")
}

/// Violation: raw literal as the opcode argument.
pub fn bad_call(conn: &Conn) -> Vec<u8> {
    conn.call(7, b"")
}

/// Violations: raw literal compared against an opcode, both sides.
pub fn bad_compare(opcode: u8) -> bool {
    opcode == 9 || 7 != opcode
}

/// Violation: raw literal in a struct-field init.
pub fn bad_init() -> Req {
    Req {
        opcode: 17,
        body: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// L007 deliberately applies to tests too: a hard-coded opcode
    /// keeps passing when the constant moves.
    #[test]
    fn raw_opcode_in_a_test_is_still_a_violation() {
        let conn = Conn;
        assert!(conn.call(7, b"").is_empty());
    }
}
