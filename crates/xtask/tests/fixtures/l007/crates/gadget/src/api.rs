//! The declaring api module: raw wire values are allowed here — this
//! is where the numbers live, including deliberate raw-byte checks.

/// The one gadget opcode.
pub const OP_STATUS: u8 = 7;

/// Raw-byte comparison inside the declaring module: exempt from L007.
pub fn is_status(opcode: u8) -> bool {
    opcode == 7
}
