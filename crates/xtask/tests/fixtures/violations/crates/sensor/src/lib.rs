//! Deliberately violating fixture: every mps-lint rule fires at least
//! once in this file, and every waiver behaviour is exercised. The
//! expected findings live in `../../expected.txt`; this file never
//! compiles as part of the workspace (it is lexed, not built).

use std::collections::HashMap;
use std::time::Instant;

/// L001 (wall clock), L002 (hash map), L003 (unwrap + panic) and
/// L005 (ad-hoc header literal) all fire in this one function.
pub fn drain(queue: &HashMap<String, u64>) -> u64 {
    let _started = Instant::now();
    let first = queue.get("x-request-id").unwrap();
    if *first == 0 {
        panic!("fixture: empty queue");
    }
    *first
}

/// A justified waiver: the finding is reported as waived, not an error.
pub fn checked(values: &[u64]) -> u64 {
    // mps-lint: allow(L003) -- fixture: values is non-empty by construction
    *values.first().unwrap()
}

/// An unjustified waiver: still suppresses, but reports W001.
pub fn shrugged(values: &[u64]) -> u64 {
    // mps-lint: allow(L003)
    *values.last().unwrap()
}

/// An unused waiver: nothing on the covered lines violates L001 (W002).
pub fn tidy() -> u64 {
    // mps-lint: allow(L001) -- fixture: nothing to waive here
    42
}

/// Metric registrations violating L004 in every distinct way.
pub fn register(registry: &Registry) {
    let name = "sensor_pipe_dynamic_total";
    registry.counter(name, "non-literal metric name");
    registry.counter("sensor_pipe_events", "counter missing _total");
    registry.counter("sensor_pipe_event_total", "near-duplicate (edit distance 1)");
    registry.counter("sensor_pipe_events_total", "the canonical series");
    registry.histogram("sensor_pipe_delay", "histogram without a unit suffix", &[1.0]);
    registry.gauge("depth", "missing crate prefix and segments");
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these fire.
    #[test]
    fn unwrap_is_fine_here() {
        let t = std::time::Instant::now();
        let v: Vec<u64> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
        let _ = t.elapsed();
    }
}
