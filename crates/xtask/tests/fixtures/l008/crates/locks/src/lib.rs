//! Fixture lock discipline: a lock-order cycle across two methods, a
//! blocking write under a live guard, and two clean patterns the
//! heuristic must not flag.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

/// Two locks acquired in opposite orders by different methods.
pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    /// Acquires alpha then beta (records the `alpha → beta` edge).
    pub fn forward(&self) -> u64 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    /// Acquires beta then alpha: closes the cycle — deadlock bait.
    pub fn backward(&self) -> u64 {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        *b - *a
    }

    /// Blocking I/O while the alpha guard is live: every thread
    /// contending for alpha now waits on this socket.
    pub fn stalls_the_world(&self, stream: &mut TcpStream) {
        let a = self.alpha.lock().unwrap();
        stream.write_all(&a.to_be_bytes()).unwrap();
    }

    /// Clean: the guard dies with the inner block, before the I/O.
    pub fn copy_then_write(&self, stream: &mut TcpStream) {
        let value = {
            let a = self.alpha.lock().unwrap();
            *a
        };
        stream.write_all(&value.to_be_bytes()).unwrap();
    }

    /// Clean: decide under the lock, write after the match ends.
    pub fn decide_then_write(&self, stream: &mut TcpStream) {
        let value = match self.beta.lock() {
            Ok(b) => *b,
            Err(poisoned) => *poisoned.into_inner(),
        };
        stream.write_all(&value.to_be_bytes()).unwrap();
    }
}
