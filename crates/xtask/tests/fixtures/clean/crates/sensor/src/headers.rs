//! The fixture's canonical header-key constants module — the one file
//! (`headers_home` in mps-lint.toml) allowed to contain `x-…` literals.

/// Correlates a sensed observation across pipeline hops.
pub const TRACE_HEADER: &str = "x-trace";

/// Device-side send timestamp, milliseconds.
pub const SENT_MS_HEADER: &str = "x-trace-sent-ms";
