//! Conforming fixture: a sim-path pipeline crate that passes every
//! lint. Ordered collections, no panic paths, convention-conforming
//! metric names, header literals only in `headers.rs`, and exactly one
//! waiver — justified and used.

pub mod headers;

use std::collections::BTreeMap;

/// Drains ready values deterministically (BTreeMap iteration order).
pub fn drain(queue: &BTreeMap<String, u64>) -> Option<u64> {
    queue.values().next().copied()
}

/// The one legitimate panic path, waived with a justification.
pub fn first_waypoint(route: &[u64]) -> u64 {
    // mps-lint: allow(L003) -- fixture: routes are validated non-empty at parse time
    *route.first().unwrap()
}

/// Convention-conforming metric registrations.
pub fn register(registry: &Registry) {
    registry.counter("sensor_pipe_events_total", "Events accepted");
    registry.counter_labeled(
        "sensor_pipe_dropped_total",
        &[("reason", reason)],
        "Events dropped",
    );
    registry.histogram("sensor_pipe_delay_ms", "Delivery delay", &[10.0, 100.0]);
    registry.gauge("sensor_pipe_queue_depth", "Queued events");
}

#[cfg(test)]
mod tests {
    // Test code may use std collections, the wall clock and unwrap.
    #[test]
    fn drains_in_order() {
        let mut q = std::collections::HashMap::new();
        q.insert("a".to_owned(), 1u64);
        assert_eq!(q.values().next().copied().unwrap(), 1);
    }
}
