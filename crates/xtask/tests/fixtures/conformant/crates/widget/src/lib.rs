//! Conformant fixture: named wire constants everywhere, dispatch arms
//! and test coverage for every opcode, one global lock order, no I/O
//! under a guard.

pub mod api;

use api::op;
use std::sync::Mutex;

/// A fake connection with a unit-reply call helper.
pub struct Conn;

impl Conn {
    /// Sends an opcode whose success reply is empty.
    pub fn call_unit(&self, _opcode: u8, _body: &[u8]) {}
}

/// Names an opcode — the dispatch arms L006 looks for.
pub fn dispatch(opcode: u8) -> &'static str {
    match opcode {
        op::PING => "PING",
        op::RESET => "RESET",
        _ => "?",
    }
}

/// Clean call sites: the constants are named.
pub fn ping(conn: &Conn) {
    conn.call_unit(op::PING, b"");
}

/// Clean call sites: the constants are named.
pub fn reset(conn: &Conn) {
    conn.call_unit(op::RESET, b"");
}

/// Two locks, always taken journal-then-table.
pub struct State {
    journal: Mutex<Vec<u8>>,
    table: Mutex<u64>,
}

impl State {
    /// Acquires journal then table.
    pub fn totals(&self) -> u64 {
        let journal = self.journal.lock().unwrap();
        let table = self.table.lock().unwrap();
        journal.len() as u64 + *table
    }

    /// Same order from a second call site: no cycle.
    pub fn is_fresh(&self) -> bool {
        let journal = self.journal.lock().unwrap();
        let table = self.table.lock().unwrap();
        journal.is_empty() && *table == 0
    }
}

#[cfg(test)]
mod tests {
    use super::api::op;

    #[test]
    fn every_opcode_dispatches() {
        assert_eq!(super::dispatch(op::PING), "PING");
        assert_eq!(super::dispatch(op::RESET), "RESET");
    }
}
