//! Conformant wire api: every constant matches `docs/SPEC.md`.

/// Widget opcode table.
pub mod op {
    /// `ping() -> ()`
    pub const PING: u8 = 1;
    /// `reset() -> ()`
    pub const RESET: u8 = 2;
}

/// Widget error codes.
pub mod err {
    /// Malformed ping body.
    pub const BAD_PING: u8 = 16;
}
