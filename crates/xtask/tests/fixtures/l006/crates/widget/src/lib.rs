//! Fixture widget service: every opcode has a dispatch arm and a test
//! reference, so only the spec-conformance checks fire.

pub mod api;

/// Names an opcode, the dispatch-arm shape L006 looks for.
pub fn dispatch(opcode: u8) -> &'static str {
    match opcode {
        api::op::PING => "PING",
        api::op::SET => "SET",
        api::op::EXTRA => "EXTRA",
        api::op::DUP => "DUP",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::api::op;

    #[test]
    fn known_opcodes_have_names() {
        assert_eq!(super::dispatch(op::PING), "PING");
        assert_eq!(super::dispatch(op::SET), "SET");
        assert_eq!(super::dispatch(op::EXTRA), "EXTRA");
        assert_eq!(super::dispatch(op::DUP), "DUP");
    }
}
