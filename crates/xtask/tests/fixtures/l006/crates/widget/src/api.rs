//! Fixture wire api for the `widget` role — deliberately divergent
//! from `docs/SPEC.md` so every L006 check fires.

/// Widget opcode table.
pub mod op {
    /// Matches the spec (the clean row).
    pub const PING: u8 = 1;
    /// Deliberately renumbered: the spec says 3.
    pub const SET: u8 = 4;
    /// Declared in code but absent from the spec.
    pub const EXTRA: u8 = 5;
    /// Collides with `PING` on the wire (and has no spec row).
    pub const DUP: u8 = 1;
}

/// Widget error codes.
pub mod err {
    /// Matches the spec's `BadPing` row.
    pub const BAD_PING: u8 = 16;
}
