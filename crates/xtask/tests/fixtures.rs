//! Fixture tests: `mps-lint` run end-to-end over checked-in mini
//! workspaces.
//!
//! * `tests/fixtures/violations` — every L001–L005 rule fires at least
//!   once, every waiver behaviour (justified, unjustified, unused) is
//!   exercised, and the checked-in `docs/METRICS.md` is deliberately
//!   stale. The full findings list is snapshotted in `expected.txt`.
//! * `tests/fixtures/clean` — a conforming crate: ordered collections,
//!   no panic paths, convention-conforming metric names, header
//!   literals confined to `headers_home`, a current metrics doc, and
//!   exactly one justified-and-used waiver.
//! * `tests/fixtures/l006` — spec↔code drift: a renumbered opcode, an
//!   unspecced constant, a value collision, a spec-only row, and a
//!   stale `docs/OPCODES.md`.
//! * `tests/fixtures/l007` — raw wire integers at call, comparison and
//!   field-init sites (including inside test code).
//! * `tests/fixtures/l008` — a lock-order cycle and blocking I/O under
//!   a live guard, next to two clean patterns that must not fire.
//! * `tests/fixtures/conformant` — L006/L007/L008 all enabled on a
//!   crate that conforms: nothing fires and the checked-in
//!   `docs/OPCODES.md` is current.

use std::path::{Path, PathBuf};
use xtask::findings::LintId;
use xtask::LintOutcome;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> LintOutcome {
    xtask::run_lint(&fixture_root(name), false, false).expect("fixture workspace lints")
}

/// Compares a fixture's findings to its `expected.txt` snapshot.
fn assert_snapshot(name: &str, outcome: &LintOutcome) {
    let got: Vec<String> = outcome
        .findings
        .iter()
        .map(|f| {
            if f.waived {
                format!("{} (waived)", f.compact())
            } else {
                f.compact()
            }
        })
        .collect();
    let expected_path = fixture_root(name).join("expected.txt");
    let expected = std::fs::read_to_string(&expected_path).expect("expected.txt");
    let expected: Vec<&str> = expected.lines().collect();
    assert_eq!(
        got, expected,
        "findings diverged from the snapshot; if the change is intended, \
         update tests/fixtures/{name}/expected.txt"
    );
}

#[test]
fn violations_fixture_matches_expected_findings() {
    let outcome = lint("violations");
    assert_snapshot("violations", &outcome);
    assert_eq!(outcome.error_count, 15);
}

#[test]
fn violations_fixture_fires_every_rule() {
    let outcome = lint("violations");
    for id in [
        LintId::L001,
        LintId::L002,
        LintId::L003,
        LintId::L004,
        LintId::L005,
        LintId::W001,
        LintId::W002,
    ] {
        assert!(
            outcome.findings.iter().any(|f| f.lint == id),
            "fixture should trigger {id}"
        );
    }
}

#[test]
fn spans_are_token_accurate() {
    let outcome = lint("violations");
    // `Instant::now` on line 12: the span covers the whole banned path.
    let l001 = outcome
        .findings
        .iter()
        .find(|f| f.lint == LintId::L001)
        .expect("L001 fires");
    assert_eq!((l001.line, l001.col), (12, 20));
    assert_eq!(l001.len, "Instant::now".len() as u32);
    // `.unwrap()` on line 13: the span covers exactly the method name.
    let l003 = outcome
        .findings
        .iter()
        .find(|f| f.lint == LintId::L003)
        .expect("L003 fires");
    assert_eq!((l003.line, l003.col), (13, 43));
    assert_eq!(l003.len, "unwrap".len() as u32);
    // The report quotes the offending source line with a caret run of
    // the span's width directly underneath.
    assert!(outcome
        .report
        .contains("let first = queue.get(\"x-request-id\").unwrap();"));
    assert!(outcome.report.contains("^^^^^^\n"));
}

#[test]
fn waiver_lifecycle_is_reported() {
    let outcome = lint("violations");
    let waived: Vec<_> = outcome.findings.iter().filter(|f| f.waived).collect();
    assert_eq!(
        waived.len(),
        2,
        "justified + unjustified waivers both suppress"
    );
    // The justified waiver carries its justification; the unjustified
    // one does not (and W001 reports it).
    assert!(waived.iter().any(
        |f| f.justification.as_deref() == Some("fixture: values is non-empty by construction")
    ));
    assert!(waived.iter().any(|f| f.justification.is_none()));
    let w001 = outcome
        .findings
        .iter()
        .find(|f| f.lint == LintId::W001)
        .expect("W001 fires");
    assert_eq!(w001.line, 28);
    let w002 = outcome
        .findings
        .iter()
        .find(|f| f.lint == LintId::W002)
        .expect("W002 fires");
    assert_eq!(w002.line, 34);
}

#[test]
fn stale_metrics_doc_is_an_error() {
    let outcome = lint("violations");
    let stale = outcome
        .findings
        .iter()
        .find(|f| f.lint == LintId::L004 && f.file == "docs/METRICS.md")
        .expect("stale doc gate fires");
    assert!(!stale.waived);
    assert!(stale.message.contains("stale"));
}

#[test]
fn clean_fixture_has_no_errors() {
    let outcome = lint("clean");
    assert_eq!(
        outcome.error_count, 0,
        "clean fixture should pass:\n{}",
        outcome.report
    );
    // Its one waiver is justified, used, and reported as waived.
    assert_eq!(outcome.findings.len(), 1);
    let waived = &outcome.findings[0];
    assert!(waived.waived);
    assert_eq!(waived.lint, LintId::L003);
    assert!(waived.justification.is_some());
}

#[test]
fn clean_fixture_metrics_doc_is_current() {
    let outcome = lint("clean");
    let checked_in =
        std::fs::read_to_string(fixture_root("clean").join("docs/METRICS.md")).expect("doc");
    assert_eq!(outcome.metrics_doc, checked_in);
    assert!(outcome
        .metrics_doc
        .contains("`sensor_pipe_delay_ms` | histogram"));
    assert!(outcome.metrics_doc.contains("`reason`"));
}

#[test]
fn l006_fixture_matches_expected_findings() {
    let outcome = lint("l006");
    assert_snapshot("l006", &outcome);
    assert_eq!(outcome.error_count, 6, "{}", outcome.report);
    assert!(outcome.findings.iter().all(|f| f.lint == LintId::L006));
}

#[test]
fn l006_value_mismatch_is_span_accurate() {
    // The acceptance criterion: a deliberately renumbered opcode (the
    // fixture declares SET = 4 where the spec says 3) is caught with a
    // span anchored exactly on the value token.
    let outcome = lint("l006");
    let mismatch = outcome
        .findings
        .iter()
        .find(|f| f.message.contains("on the wire but"))
        .expect("value mismatch fires");
    assert_eq!(
        mismatch.message,
        "`SET` is 4 on the wire but docs/SPEC.md:10 says 3"
    );
    assert_eq!(mismatch.file, "crates/widget/src/api.rs");
    // `    pub const SET: u8 = 4;` — line 9, the `4` at column 25.
    assert_eq!((mismatch.line, mismatch.col, mismatch.len), (9, 25, 1));
    // The rendered report quotes the line and carets the value.
    assert!(outcome.report.contains("pub const SET: u8 = 4;"));
}

#[test]
fn l006_reports_spec_only_rows_and_stale_doc() {
    let outcome = lint("l006");
    let spec_only = outcome
        .findings
        .iter()
        .find(|f| f.file == "docs/SPEC.md")
        .expect("spec-only row fires");
    assert!(spec_only
        .message
        .contains("spec row `GONE` (value 9, band `widget op`) has no declared constant"));
    let stale = outcome
        .findings
        .iter()
        .find(|f| f.file == "docs/OPCODES.md")
        .expect("stale opcodes doc fires");
    assert!(stale.message.contains("stale"));
    let collision = outcome
        .findings
        .iter()
        .find(|f| f.message.contains("collides"))
        .expect("value collision fires");
    assert!(collision
        .message
        .contains("value 1 of `DUP` collides with `PING` in band `widget op`"));
}

#[test]
fn l007_fixture_matches_expected_findings() {
    let outcome = lint("l007");
    assert_snapshot("l007", &outcome);
    assert_eq!(outcome.error_count, 5, "{}", outcome.report);
    assert!(outcome.findings.iter().all(|f| f.lint == LintId::L007));
    // Raw literals in *test* code are violations too: the last finding
    // sits inside the fixture's `#[cfg(test)]` module.
    assert!(outcome
        .findings
        .iter()
        .any(|f| f.line == 55 && f.message.contains("`7` at a `call` site")));
}

#[test]
fn l008_fixture_matches_expected_findings() {
    let outcome = lint("l008");
    assert_snapshot("l008", &outcome);
    assert_eq!(outcome.error_count, 2, "{}", outcome.report);
    let cycle = outcome
        .findings
        .iter()
        .find(|f| f.message.contains("lock-order cycle"))
        .expect("cycle fires");
    assert!(cycle
        .message
        .contains("lock-order cycle in crate `locks`: `alpha` → `beta` → `alpha`"));
    let blocking = outcome
        .findings
        .iter()
        .find(|f| f.message.contains("blocking"))
        .expect("blocking-under-guard fires");
    assert!(blocking
        .message
        .contains("blocking `write_all` call while holding lock `alpha` (line 33)"));
}

#[test]
fn conformant_fixture_is_clean() {
    let outcome = lint("conformant");
    assert_eq!(
        outcome.error_count, 0,
        "conformant fixture should pass:\n{}",
        outcome.report
    );
    assert!(outcome.findings.is_empty(), "{:?}", outcome.findings);
}

#[test]
fn conformant_fixture_opcodes_doc_is_current_and_stable() {
    let outcome = lint("conformant");
    let checked_in =
        std::fs::read_to_string(fixture_root("conformant").join("docs/OPCODES.md")).expect("doc");
    assert_eq!(
        outcome.opcodes_doc, checked_in,
        "regenerate with --write-opcodes-doc"
    );
    // Rendering is deterministic: a second run yields the same bytes.
    let again = lint("conformant");
    assert_eq!(outcome.opcodes_doc, again.opcodes_doc);
    assert!(outcome.opcodes_doc.contains("`PING`"));
    assert!(outcome.opcodes_doc.contains("`BAD_PING`"));
}
