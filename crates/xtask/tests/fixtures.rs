//! Fixture tests: `mps-lint` run end-to-end over two checked-in mini
//! workspaces.
//!
//! * `tests/fixtures/violations` — every rule fires at least once,
//!   every waiver behaviour (justified, unjustified, unused) is
//!   exercised, and the checked-in `docs/METRICS.md` is deliberately
//!   stale. The full findings list is snapshotted in `expected.txt`.
//! * `tests/fixtures/clean` — a conforming crate: ordered collections,
//!   no panic paths, convention-conforming metric names, header
//!   literals confined to `headers_home`, a current metrics doc, and
//!   exactly one justified-and-used waiver.

use std::path::{Path, PathBuf};
use xtask::findings::LintId;
use xtask::LintOutcome;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> LintOutcome {
    xtask::run_lint(&fixture_root(name), false).expect("fixture workspace lints")
}

#[test]
fn violations_fixture_matches_expected_findings() {
    let outcome = lint("violations");
    let got: Vec<String> = outcome
        .findings
        .iter()
        .map(|f| {
            if f.waived {
                format!("{} (waived)", f.compact())
            } else {
                f.compact()
            }
        })
        .collect();
    let expected_path = fixture_root("violations").join("expected.txt");
    let expected = std::fs::read_to_string(&expected_path).expect("expected.txt");
    let expected: Vec<&str> = expected.lines().collect();
    assert_eq!(
        got, expected,
        "findings diverged from the snapshot; if the change is intended, \
         update tests/fixtures/violations/expected.txt"
    );
    assert_eq!(outcome.error_count, 15);
}

#[test]
fn violations_fixture_fires_every_rule() {
    let outcome = lint("violations");
    for id in [
        LintId::L001,
        LintId::L002,
        LintId::L003,
        LintId::L004,
        LintId::L005,
        LintId::W001,
        LintId::W002,
    ] {
        assert!(
            outcome.findings.iter().any(|f| f.lint == id),
            "fixture should trigger {id}"
        );
    }
}

#[test]
fn spans_are_token_accurate() {
    let outcome = lint("violations");
    // `Instant::now` on line 12: the span covers the whole banned path.
    let l001 = outcome
        .findings
        .iter()
        .find(|f| f.lint == LintId::L001)
        .expect("L001 fires");
    assert_eq!((l001.line, l001.col), (12, 20));
    assert_eq!(l001.len, "Instant::now".len() as u32);
    // `.unwrap()` on line 13: the span covers exactly the method name.
    let l003 = outcome
        .findings
        .iter()
        .find(|f| f.lint == LintId::L003)
        .expect("L003 fires");
    assert_eq!((l003.line, l003.col), (13, 43));
    assert_eq!(l003.len, "unwrap".len() as u32);
    // The report quotes the offending source line with a caret run of
    // the span's width directly underneath.
    assert!(outcome
        .report
        .contains("let first = queue.get(\"x-request-id\").unwrap();"));
    assert!(outcome.report.contains("^^^^^^\n"));
}

#[test]
fn waiver_lifecycle_is_reported() {
    let outcome = lint("violations");
    let waived: Vec<_> = outcome.findings.iter().filter(|f| f.waived).collect();
    assert_eq!(
        waived.len(),
        2,
        "justified + unjustified waivers both suppress"
    );
    // The justified waiver carries its justification; the unjustified
    // one does not (and W001 reports it).
    assert!(waived.iter().any(
        |f| f.justification.as_deref() == Some("fixture: values is non-empty by construction")
    ));
    assert!(waived.iter().any(|f| f.justification.is_none()));
    let w001 = outcome
        .findings
        .iter()
        .find(|f| f.lint == LintId::W001)
        .expect("W001 fires");
    assert_eq!(w001.line, 28);
    let w002 = outcome
        .findings
        .iter()
        .find(|f| f.lint == LintId::W002)
        .expect("W002 fires");
    assert_eq!(w002.line, 34);
}

#[test]
fn stale_metrics_doc_is_an_error() {
    let outcome = lint("violations");
    let stale = outcome
        .findings
        .iter()
        .find(|f| f.lint == LintId::L004 && f.file == "docs/METRICS.md")
        .expect("stale doc gate fires");
    assert!(!stale.waived);
    assert!(stale.message.contains("stale"));
}

#[test]
fn clean_fixture_has_no_errors() {
    let outcome = lint("clean");
    assert_eq!(
        outcome.error_count, 0,
        "clean fixture should pass:\n{}",
        outcome.report
    );
    // Its one waiver is justified, used, and reported as waived.
    assert_eq!(outcome.findings.len(), 1);
    let waived = &outcome.findings[0];
    assert!(waived.waived);
    assert_eq!(waived.lint, LintId::L003);
    assert!(waived.justification.is_some());
}

#[test]
fn clean_fixture_metrics_doc_is_current() {
    let outcome = lint("clean");
    let checked_in =
        std::fs::read_to_string(fixture_root("clean").join("docs/METRICS.md")).expect("doc");
    assert_eq!(outcome.metrics_doc, checked_in);
    assert!(outcome
        .metrics_doc
        .contains("`sensor_pipe_delay_ms` | histogram"));
    assert!(outcome.metrics_doc.contains("`reason`"));
}
