//! Loom model checks for the lock-free telemetry primitives.
//!
//! These tests only build under `RUSTFLAGS="--cfg loom"`, where
//! `mps_telemetry::sync` swaps `std::sync` for loom's modelled
//! primitives and `loom::model` exhaustively explores every thread
//! interleaving (bounded by `LOOM_MAX_PREEMPTIONS`). Run them with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" LOOM_MAX_PREEMPTIONS=3 \
//!     cargo test -p mps-telemetry --release --test loom
//! ```
//!
//! Each model is deliberately tiny — loom's state space is exponential
//! in operations per thread — but it runs the *production* code paths:
//! the same `fetch_add`s, `fetch_max`es, CAS loops and per-slot mutexes
//! the simulation pipeline exercises at scale.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use mps_telemetry::trace::{FlightRecorder, Hop, SpanRecord, TraceId};
use mps_telemetry::{Counter, Gauge, Histogram};

/// Two writers, two increments each: the relaxed `fetch_add` must never
/// lose an update under any interleaving.
#[test]
fn counter_concurrent_increments_are_exact() {
    loom::model(|| {
        let c = Counter::new();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    c.inc();
                    c.inc();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4);
    });
}

/// The watermark is maintained by a separate `fetch_max` after the
/// value's `fetch_add`. The adds serialise on the value atomic, so in
/// every interleaving exactly one thread observes the combined level and
/// publishes it as the high watermark.
#[test]
fn gauge_watermark_sees_the_combined_peak() {
    loom::model(|| {
        let g = Gauge::new();
        let a = {
            let g = g.clone();
            thread::spawn(move || g.add(1))
        };
        let b = {
            let g = g.clone();
            thread::spawn(move || g.add(2))
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(g.get(), 3);
        assert_eq!(g.high_watermark(), 3);
    });
}

/// Bucket count, total and the CAS-looped `f64` sum must all be exact:
/// no observation may be dropped and no partial sum published.
#[test]
fn histogram_concurrent_observations_lose_nothing() {
    loom::model(|| {
        let h = Histogram::new(vec![2.0]);
        let a = {
            let h = h.clone();
            thread::spawn(move || h.observe(1.0))
        };
        let b = {
            let h = h.clone();
            thread::spawn(move || h.observe(3.0))
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4.0);
        assert_eq!(h.bucket_counts(), vec![1, 1]);
    });
}

fn span(trace: u64, start_ms: i64) -> SpanRecord {
    SpanRecord::new(TraceId::from_raw(trace), Hop::Sensed, start_ms)
}

/// With spare capacity, concurrent `record` calls must each land in
/// their own slot: distinct sequential ids, nothing dropped, and the
/// snapshot sorted by id.
#[test]
fn recorder_concurrent_records_are_complete() {
    loom::model(|| {
        let r = Arc::new(FlightRecorder::with_capacity(4));
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let r = Arc::clone(&r);
                thread::spawn(move || r.record(span(t + 1, t as i64 * 100)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.recorded(), 2);
        assert_eq!(r.dropped(), 0);
        let ids: Vec<u64> = r.snapshot().iter().map(|s| s.span.raw()).collect();
        assert_eq!(ids, vec![1, 2]);
    });
}

/// The hostile case: a ring of one slot with two racing writers. The
/// drop-oldest contract allows either record to survive, but the
/// surviving record must be *whole* — the trace id and start time must
/// come from the same writer (the per-slot mutex forbids torn writes).
#[test]
fn recorder_wraparound_drops_whole_records_only() {
    loom::model(|| {
        let r = Arc::new(FlightRecorder::with_capacity(1));
        let a = {
            let r = Arc::clone(&r);
            thread::spawn(move || r.record(span(10, 100)))
        };
        let b = {
            let r = Arc::clone(&r);
            thread::spawn(move || r.record(span(20, 200)))
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(r.recorded(), 2);
        assert_eq!(r.dropped(), 1);
        let kept = r.snapshot();
        assert_eq!(kept.len(), 1);
        let s = &kept[0];
        assert!(s.span.raw() == 1 || s.span.raw() == 2);
        // No tearing: the pair of fields written under the slot lock
        // must belong to a single writer.
        match s.trace {
            t if t == TraceId::from_raw(10) => assert_eq!(s.start_ms, 100),
            t if t == TraceId::from_raw(20) => assert_eq!(s.start_ms, 200),
            other => panic!("impossible trace id {other:?} in surviving span"),
        }
    });
}
