//! Fixed-bucket latency histograms with quantile estimates.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Arc;

#[derive(Debug)]
struct HistogramInner {
    /// Strictly increasing, finite upper bounds. An implicit `+Inf`
    /// bucket catches everything beyond the last bound.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket
    /// (`counts.len() == bounds.len() + 1`).
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits and updated with a
    /// CAS loop so observation stays lock-free.
    sum_bits: AtomicU64,
    /// Total number of observations.
    total: AtomicU64,
}

/// A histogram over fixed buckets — the workspace's latency and delay
/// measurement primitive.
///
/// Buckets are defined once by their upper bounds (typically log-spaced,
/// see [`Histogram::exponential_buckets`]) and observation is lock-free:
/// a binary search plus two relaxed atomic updates. Quantiles
/// ([`Histogram::quantile`], [`Histogram::p50`]/[`p95`](Histogram::p95)/
/// [`p99`](Histogram::p99)) are estimated by linear interpolation inside
/// the target bucket, the standard fixed-bucket estimator.
///
/// `Histogram` is a cheaply-cloneable handle; clones share the same
/// buckets. Values are expected non-negative (latencies, delays, sizes);
/// `NaN` observations are ignored.
///
/// # Examples
///
/// ```
/// use mps_telemetry::Histogram;
///
/// let h = Histogram::new(vec![1.0, 10.0, 100.0]);
/// h.observe(0.5);
/// h.observe(40.0);
/// h.observe(40.0);
/// h.observe(5_000.0); // overflow bucket
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket_counts(), vec![1, 0, 2, 1]);
/// assert!(h.p50() > 10.0 && h.p50() <= 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Creates a histogram over the given finite upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, not strictly increasing, or contains
    /// a non-finite bound (the `+Inf` bucket is implicit).
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "bucket bounds must be strictly increasing: {} then {}",
                pair[0],
                pair[1]
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite (+Inf is implicit)"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds,
                counts,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                total: AtomicU64::new(0),
            }),
        }
    }

    /// Log-spaced bucket bounds: `start, start*factor, …`, `count` of
    /// them — the right shape for latencies spanning orders of
    /// magnitude.
    ///
    /// # Panics
    ///
    /// Panics unless `start > 0`, `factor > 1` and `count >= 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// let b = mps_telemetry::Histogram::exponential_buckets(1.0, 10.0, 4);
    /// assert_eq!(b, vec![1.0, 10.0, 100.0, 1000.0]);
    /// ```
    pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
        assert!(start > 0.0, "start must be positive");
        assert!(factor > 1.0, "factor must exceed 1");
        assert!(count >= 1, "need at least one bucket");
        let mut bounds = Vec::with_capacity(count);
        let mut bound = start;
        for _ in 0..count {
            bounds.push(bound);
            bound *= factor;
        }
        bounds
    }

    /// Records one observation (`NaN` is ignored).
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.inner.bounds.partition_point(|bound| v > *bound);
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.total.fetch_add(1, Ordering::Relaxed);
        let mut old = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => old = current,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured finite upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Per-bucket counts; the final entry is the implicit `+Inf`
    /// (overflow) bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) by linear
    /// interpolation inside the bucket holding the target rank. The
    /// first bucket interpolates from zero; ranks landing in the
    /// overflow bucket report the last finite bound (a lower bound on
    /// the true quantile). Returns `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let counts = self.bucket_counts();
        let mut cumulative = 0u64;
        for (idx, count) in counts.iter().enumerate() {
            let before = cumulative;
            cumulative += count;
            if (cumulative as f64) >= target && *count > 0 {
                let Some(&hi) = self.inner.bounds.get(idx) else {
                    // Overflow bucket: no finite upper edge to
                    // interpolate toward.
                    return *self.inner.bounds.last().expect("non-empty bounds");
                };
                let lo = if idx == 0 {
                    0.0
                } else {
                    self.inner.bounds[idx - 1]
                };
                let fraction = (target - before as f64) / *count as f64;
                return lo + (hi - lo) * fraction.clamp(0.0, 1.0);
            }
        }
        *self.inner.bounds.last().expect("non-empty bounds")
    }

    /// The estimated median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The estimated 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The estimated 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(vec![1.0, 10.0, 100.0]);
        h.observe(1.0); // exactly on a bound -> that bucket
        h.observe(1.0000001); // just past -> next bucket
        h.observe(10.0);
        h.observe(100.0);
        h.observe(100.0000001); // past the last bound -> overflow
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn zero_and_tiny_values_land_in_the_first_bucket() {
        let h = Histogram::new(vec![0.5, 5.0]);
        h.observe(0.0);
        h.observe(0.49);
        assert_eq!(h.bucket_counts(), vec![2, 0, 0]);
    }

    #[test]
    fn nan_is_ignored() {
        let h = Histogram::new(vec![1.0]);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn sum_accumulates() {
        let h = Histogram::new(vec![10.0]);
        h.observe(0.25);
        h.observe(1.5);
        h.observe(100.0);
        assert_eq!(h.sum(), 101.75);
    }

    #[test]
    fn exponential_buckets_are_log_spaced() {
        let b = Histogram::exponential_buckets(10.0, 4.0, 5);
        assert_eq!(b, vec![10.0, 40.0, 160.0, 640.0, 2560.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![10.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn rejects_empty_bounds() {
        let _ = Histogram::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinite_bounds() {
        let _ = Histogram::new(vec![1.0, f64::INFINITY]);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 observations spread uniformly through (0, 100]: quantile
        // estimates track the exact quantiles to within a bucket step.
        let h = Histogram::new(vec![10.0, 20.0, 40.0, 80.0, 160.0]);
        for i in 1..=100 {
            h.observe(i as f64);
        }
        // Rank 50 sits 10 deep in the 40-wide bucket [40, 80): 40 + 40/4.
        assert_eq!(h.p50(), 50.0);
        // Ranks 95 and 99 land in [80, 160): the estimate interpolates
        // within the holding bucket (resolution = bucket width).
        assert_eq!(h.p95(), 80.0 + 80.0 * 0.75);
        assert_eq!(h.p99(), 80.0 + 80.0 * 0.95);
        // Monotone in q.
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
    }

    #[test]
    fn quantile_of_single_bucket_interpolates_from_zero() {
        let h = Histogram::new(vec![8.0]);
        h.observe(1.0);
        h.observe(2.0);
        // Median rank is 1 of 2 -> midpoint of [0, 8).
        assert_eq!(h.p50(), 4.0);
    }

    #[test]
    fn overflow_quantile_reports_last_finite_bound() {
        let h = Histogram::new(vec![1.0, 2.0]);
        for _ in 0..10 {
            h.observe(1_000.0);
        }
        assert_eq!(h.p50(), 2.0);
        assert_eq!(h.p99(), 2.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(vec![1.0]);
        assert_eq!(h.p50(), 0.0);
    }

    #[test]
    fn concurrent_observations_are_exact() {
        let h = Histogram::new(Histogram::exponential_buckets(1.0, 2.0, 10));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.observe((i % 700) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 40_000);
        // The CAS-looped sum loses nothing: every thread contributed the
        // same residue cycle, so the expected total is exact.
        let expected: f64 = 8.0 * (0..5_000).map(|i| (i % 700) as f64).sum::<f64>();
        // f64 addition is order-sensitive; allow a relative epsilon.
        assert!((h.sum() - expected).abs() < 1e-6 * expected.abs());
    }
}
