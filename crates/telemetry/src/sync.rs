//! Synchronisation primitives, switchable to [loom]'s model checker.
//!
//! Every lock-free primitive in this crate ([`Counter`](crate::Counter),
//! [`Gauge`](crate::Gauge), [`Histogram`](crate::Histogram) and the
//! [`FlightRecorder`](crate::trace::FlightRecorder) ring) imports its
//! atomics, `Arc` and `Mutex` from here instead of `std::sync`. Under a
//! normal build this module is a zero-cost re-export of `std::sync`;
//! under `RUSTFLAGS="--cfg loom"` it re-exports loom's modelled
//! versions, so `tests/loom.rs` can exhaustively explore thread
//! interleavings of the exact production code paths.
//!
//! The loom dependency itself is declared under
//! `[target.'cfg(loom)'.dependencies]`, so ordinary builds never compile
//! (or even download) it and the crate stays dependency-free by default.
//!
//! [loom]: https://github.com/tokio-rs/loom

#[cfg(loom)]
pub(crate) use loom::sync::{atomic, Arc, Mutex};

#[cfg(not(loom))]
pub(crate) use std::sync::{atomic, Arc, Mutex};
