//! # mps-telemetry — pipeline observability for the SoundCity workspace
//!
//! The paper's central operational lesson is that a 10-month urban-scale
//! deployment lives or dies by visibility into its pipeline: delivery
//! delays, malformed payloads and per-stage throughput (Figures 9–21 are
//! all derived from such telemetry). This crate is the measurement
//! substrate every server-side layer shares:
//!
//! * [`Counter`] — lock-free monotonic event counts.
//! * [`Gauge`] — level-style values with a high watermark.
//! * [`Histogram`] — fixed log-spaced buckets with p50/p95/p99 quantile
//!   estimates; lock-free observation.
//! * [`Registry`] — a named-metric namespace with a process-wide default
//!   ([`Registry::global`]) and a Prometheus-style text exposition
//!   ([`Registry::render_text`]).
//! * [`SpanTimer`] — an RAII guard timing a pipeline stage into a
//!   histogram (wall clock); [`SimSpanTimer`] is its sim-clock twin for
//!   deterministic simulations.
//! * [`trace`] — end-to-end observation tracing: [`trace::TraceId`]
//!   contexts propagated through every pipeline hop, spans landing in a
//!   bounded [`trace::FlightRecorder`], and an offline query layer
//!   (trace trees, latency waterfalls, loss attribution).
//!
//! Metric handles are cheaply cloneable (an `Arc` inside) and all
//! operations take `&self`, so hot paths hold a handle and update it
//! without locks. The naming convention across the workspace is
//! `<crate>_<subsystem>_<metric>` (e.g. `broker_core_published_total`,
//! `goflow_ingest_delivery_delay_ms`).
//!
//! This crate is dependency-free (std only) so every layer can afford it.
//!
//! # Examples
//!
//! ```
//! use mps_telemetry::{Histogram, Registry, SpanTimer};
//!
//! let registry = Registry::new();
//! let stored = registry.counter("goflow_ingest_stored_total", "Observations stored");
//! stored.add(3);
//!
//! let delays = registry.histogram(
//!     "goflow_ingest_delivery_delay_ms",
//!     "End-to-end delivery delay (ms)",
//!     &Histogram::exponential_buckets(10.0, 4.0, 8),
//! );
//! delays.observe(120.0);
//! delays.observe(90_000.0);
//!
//! let text = registry.render_text();
//! assert!(text.contains("goflow_ingest_stored_total 3"));
//! assert!(text.contains("goflow_ingest_delivery_delay_ms_count 2"));
//!
//! // RAII stage timing:
//! let pass = registry.histogram("assim_blue_pass_seconds", "BLUE pass", &[0.01, 0.1, 1.0]);
//! {
//!     let _timer = SpanTimer::start(&pass);
//!     // ... the timed stage ...
//! }
//! assert_eq!(pass.count(), 1);
//! ```

mod counter;
mod gauge;
mod histogram;
mod registry;
mod sync;
mod timer;
pub mod trace;

pub use counter::Counter;
pub use gauge::Gauge;
pub use histogram::Histogram;
pub use registry::Registry;
pub use timer::{SimSpanTimer, SpanTimer};
