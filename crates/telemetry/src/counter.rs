//! Lock-free monotonic counters.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Arc;

/// A lock-free, monotonically increasing event counter.
///
/// `Counter` is a cheaply-cloneable handle; clones share the same value,
/// as do repeated [`Registry::counter`](crate::Registry::counter) calls
/// with the same name. Updates are single relaxed atomic adds, cheap
/// enough for per-message hot paths.
///
/// # Examples
///
/// ```
/// use mps_telemetry::Counter;
///
/// let c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

// Manual impl: loom's `Arc`/atomics don't implement `Default`, and this
// type must build identically under `--cfg loom` (see `crate::sync`).
impl Default for Counter {
    fn default() -> Self {
        Self {
            value: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn clones_share_the_value() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(2);
        assert_eq!(c.get(), 3);
        assert_eq!(c2.get(), 3);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Counter::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
