//! Gauges: level-style values with a high watermark.

use crate::sync::atomic::{AtomicI64, Ordering};
use crate::sync::Arc;

#[derive(Debug)]
struct GaugeInner {
    value: AtomicI64,
    high: AtomicI64,
}

/// A gauge: a value that can go up and down (queue depths, open
/// sessions, live collections), remembering the highest level it ever
/// reached.
///
/// `Gauge` is a cheaply-cloneable handle; clones share the same value.
/// The high watermark starts at zero, so it reflects the peak of a
/// non-negative level; gauges driven negative still read back exactly.
///
/// # Examples
///
/// ```
/// use mps_telemetry::Gauge;
///
/// let g = Gauge::new();
/// g.add(5);
/// g.sub(3);
/// assert_eq!(g.get(), 2);
/// assert_eq!(g.high_watermark(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

// Manual impl: loom's `Arc`/atomics don't implement `Default`, and this
// type must build identically under `--cfg loom` (see `crate::sync`).
impl Default for Gauge {
    fn default() -> Self {
        Self {
            inner: Arc::new(GaugeInner {
                value: AtomicI64::new(0),
                high: AtomicI64::new(0),
            }),
        }
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.inner.value.store(v, Ordering::Relaxed);
        self.inner.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: i64) {
        let new = self.inner.value.fetch_add(n, Ordering::Relaxed) + n;
        self.inner.high.fetch_max(new, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.inner.value.load(Ordering::Relaxed)
    }

    /// The highest value the gauge ever reached (at least zero).
    pub fn high_watermark(&self) -> i64 {
        self.inner.high.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn tracks_level_and_watermark() {
        let g = Gauge::new();
        g.inc();
        g.add(9);
        g.sub(4);
        g.dec();
        assert_eq!(g.get(), 5);
        assert_eq!(g.high_watermark(), 10);
    }

    #[test]
    fn set_updates_watermark() {
        let g = Gauge::new();
        g.set(7);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_watermark(), 7);
    }

    #[test]
    fn can_go_negative_but_watermark_stays_at_zero() {
        let g = Gauge::new();
        g.sub(3);
        assert_eq!(g.get(), -3);
        assert_eq!(g.high_watermark(), 0);
    }

    #[test]
    fn clones_share_the_value() {
        let g = Gauge::new();
        g.clone().add(4);
        assert_eq!(g.get(), 4);
    }
}
