//! Spans: one hop's account of one observation copy.

use super::{SpanId, TraceId};
use std::fmt;

/// The pipeline hop a span was recorded at.
///
/// The variants mirror the physical stations an observation passes
/// through, in pipeline order. [`Hop::ALL`] iterates them in that order,
/// which is what the latency waterfall renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the as_str strings + module docs are the taxonomy
pub enum Hop {
    /// Observation captured on the device (trace root).
    Sensed,
    /// Residence in the client's in-memory buffer before the first
    /// upload attempt.
    ClientBuffer,
    /// Residence in the client's bounded retry queue after a visible
    /// upload failure.
    RetryQueue,
    /// The faulty-link send decision (deliver, drop, black-hole,
    /// duplicate).
    LinkTransmit,
    /// Residence in the faulty link's delay line.
    LinkDelay,
    /// Broker exchange routing at publish time.
    BrokerPublish,
    /// Wait in a broker queue between publish and consume.
    BrokerQueue,
    /// Parked in a broker dead-letter queue after delivery attempts were
    /// exhausted.
    BrokerDlq,
    /// Written to a document-store collection (the success terminal).
    DocstoreWrite,
    /// Diverted to the quarantine collection at ingest.
    Quarantine,
    /// Membership in an assimilation batch (fan-in: one span links many
    /// observation traces).
    AssimBatch,
    /// A write-ahead-log recovery scan on server restart (one span per
    /// reopened store; only present in runs with durability on).
    WalRecovery,
}

impl Hop {
    /// Every hop, in pipeline order.
    pub const ALL: [Hop; 12] = [
        Hop::Sensed,
        Hop::ClientBuffer,
        Hop::RetryQueue,
        Hop::LinkTransmit,
        Hop::LinkDelay,
        Hop::BrokerPublish,
        Hop::BrokerQueue,
        Hop::BrokerDlq,
        Hop::DocstoreWrite,
        Hop::Quarantine,
        Hop::AssimBatch,
        Hop::WalRecovery,
    ];

    /// The snake_case name used in exports and rendered tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Hop::Sensed => "sensed",
            Hop::ClientBuffer => "client_buffer",
            Hop::RetryQueue => "retry_queue",
            Hop::LinkTransmit => "link_transmit",
            Hop::LinkDelay => "link_delay",
            Hop::BrokerPublish => "broker_publish",
            Hop::BrokerQueue => "broker_queue",
            Hop::BrokerDlq => "broker_dlq",
            Hop::DocstoreWrite => "docstore_write",
            Hop::Quarantine => "quarantine",
            Hop::AssimBatch => "assim_batch",
            Hop::WalRecovery => "wal_recovery",
        }
    }
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened to the observation copy at a hop.
///
/// **Terminal** outcomes end a trace: the observation either reached
/// durable storage (`Ok`) or was lost in a *counted* way. Non-terminal
/// outcomes (`Forwarded`, `Retried`) hand the copy to the next hop. The
/// conservation invariant checked by the e2e suite: every sensed trace
/// has exactly one terminal outcome among its primary (non-duplicate)
/// spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Outcome {
    /// Stored durably — the success terminal.
    Ok,
    /// Passed on to the next hop (non-terminal success).
    Forwarded,
    /// Released from the retry queue for another attempt
    /// (non-terminal).
    Retried,
    /// Dropped by fault injection (counted loss).
    Dropped,
    /// Swallowed by a topic black-hole window (counted loss).
    Blackholed,
    /// Parked in a dead-letter queue after exhausting delivery attempts.
    DeadLettered,
    /// Diverted to quarantine at ingest (malformed or late).
    Quarantined,
    /// Shed from a full retry queue (counted loss).
    Shed,
}

impl Outcome {
    /// Every outcome, terminals first.
    pub const ALL: [Outcome; 8] = [
        Outcome::Ok,
        Outcome::Dropped,
        Outcome::Blackholed,
        Outcome::DeadLettered,
        Outcome::Quarantined,
        Outcome::Shed,
        Outcome::Forwarded,
        Outcome::Retried,
    ];

    /// True when this outcome ends the trace (the copy will not be seen
    /// by any later hop).
    pub fn is_terminal(self) -> bool {
        !matches!(self, Outcome::Forwarded | Outcome::Retried)
    }

    /// True for terminal outcomes other than [`Outcome::Ok`] — the
    /// counted-loss outcomes the attribution table reports.
    pub fn is_loss(self) -> bool {
        self.is_terminal() && self != Outcome::Ok
    }

    /// The snake_case name used in exports and rendered tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Forwarded => "forwarded",
            Outcome::Retried => "retried",
            Outcome::Dropped => "dropped",
            Outcome::Blackholed => "blackholed",
            Outcome::DeadLettered => "dead_lettered",
            Outcome::Quarantined => "quarantined",
            Outcome::Shed => "shed",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One hop's record of one observation copy: where, when (sim-clock),
/// what happened, and why.
///
/// Build with [`SpanRecord::new`] and the chained setters, then hand to
/// [`FlightRecorder::record`], which assigns the [`SpanId`].
///
/// [`FlightRecorder::record`]: crate::trace::FlightRecorder::record
///
/// # Examples
///
/// ```
/// use mps_telemetry::trace::{Hop, Outcome, SpanRecord, TraceId};
///
/// let span = SpanRecord::new(TraceId::for_observation(4, 0), Hop::Quarantine, 120_000)
///     .started_at(60_000)
///     .outcome(Outcome::Quarantined)
///     .attr("reason", "late");
/// assert_eq!(span.duration_ms(), 60_000);
/// assert!(span.outcome.is_terminal());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// The span's own id — assigned by the recorder, zero until then.
    pub span: SpanId,
    /// The span that handed this copy over, when known. Parent links are
    /// best-effort: spans within a trace are always totally ordered by
    /// recording id, which is what reconstruction relies on.
    pub parent: Option<SpanId>,
    /// The hop that recorded the span.
    pub hop: Hop,
    /// Sim-clock start, milliseconds since the simulation epoch.
    pub start_ms: i64,
    /// Sim-clock end, milliseconds since the simulation epoch.
    pub end_ms: i64,
    /// What happened to the copy at this hop.
    pub outcome: Outcome,
    /// True when the copy is a fault-injected duplicate of the primary.
    pub duplicate: bool,
    /// Fan-in links: member traces of a batch span.
    pub links: Vec<TraceId>,
    /// Structured key-value attributes (reason codes, attempt counts…).
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// A new span at `hop` with a zero-length interval at `at_ms` and
    /// outcome [`Outcome::Forwarded`].
    pub fn new(trace: TraceId, hop: Hop, at_ms: i64) -> Self {
        Self {
            trace,
            span: SpanId::from_raw(0),
            parent: None,
            hop,
            start_ms: at_ms,
            end_ms: at_ms,
            outcome: Outcome::Forwarded,
            duplicate: false,
            links: Vec::new(),
            attrs: Vec::new(),
        }
    }

    /// Sets the start of the interval (the end stays at the recording
    /// time given to [`SpanRecord::new`]).
    pub fn started_at(mut self, start_ms: i64) -> Self {
        self.start_ms = start_ms;
        self
    }

    /// Sets the outcome.
    pub fn outcome(mut self, outcome: Outcome) -> Self {
        self.outcome = outcome;
        self
    }

    /// Sets the parent span.
    pub fn parent(mut self, parent: Option<SpanId>) -> Self {
        self.parent = parent;
        self
    }

    /// Marks the span as describing a duplicate copy.
    pub fn duplicate(mut self, duplicate: bool) -> Self {
        self.duplicate = duplicate;
        self
    }

    /// Adds a fan-in link to a member trace.
    pub fn link(mut self, trace: TraceId) -> Self {
        self.links.push(trace);
        self
    }

    /// Adds a structured attribute.
    pub fn attr(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.attrs.push((key, value.into()));
        self
    }

    /// The span's sim-clock duration in milliseconds (clamped at zero).
    pub fn duration_ms(&self) -> i64 {
        (self.end_ms - self.start_ms).max(0)
    }

    /// Serialises the span as one JSON line (hand-rolled: this crate is
    /// dependency-free).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"trace\":\"");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.trace));
        let _ =
            std::fmt::Write::write_fmt(&mut out, format_args!("\",\"span\":{}", self.span.raw()));
        if let Some(parent) = self.parent {
            let _ =
                std::fmt::Write::write_fmt(&mut out, format_args!(",\"parent\":{}", parent.raw()));
        }
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                ",\"hop\":\"{}\",\"start_ms\":{},\"end_ms\":{},\"outcome\":\"{}\"",
                self.hop, self.start_ms, self.end_ms, self.outcome
            ),
        );
        if self.duplicate {
            out.push_str(",\"duplicate\":true");
        }
        if !self.links.is_empty() {
            out.push_str(",\"links\":[");
            for (i, link) in self.links.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\"{link}\""));
            }
            out.push(']');
        }
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (key, value)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json_into(&mut out, key);
                out.push_str("\":\"");
                escape_json_into(&mut out, value);
                out.push('"');
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses one JSON line previously produced by
    /// [`SpanRecord::to_jsonl`] — the inverse the fleet observability
    /// plane needs to rebuild traces from flight-recorder drains that
    /// crossed a process boundary as text.
    ///
    /// Accepts any key order and skips unknown keys, so a drain from a
    /// newer process still parses. Returns `None` on malformed input or
    /// when a required field (`trace`, `hop`, `start_ms`, `end_ms`,
    /// `outcome`) is missing. Attribute keys are interned: well-known
    /// keys map to their static spelling and a novel key leaks one small
    /// allocation, bounded in practice by the fixed attr vocabulary of
    /// the emitting process.
    pub fn from_jsonl(line: &str) -> Option<Self> {
        let mut p = JsonCursor::new(line.trim());
        p.expect(b'{')?;
        let mut trace = None;
        let mut span = SpanId::from_raw(0);
        let mut parent = None;
        let mut hop = None;
        let mut start_ms = None;
        let mut end_ms = None;
        let mut outcome = None;
        let mut duplicate = false;
        let mut links = Vec::new();
        let mut attrs = Vec::new();
        if !p.eat(b'}') {
            loop {
                let key = p.parse_string()?;
                p.expect(b':')?;
                match key.as_str() {
                    "trace" => trace = Some(p.parse_string()?.parse::<TraceId>().ok()?),
                    "span" => span = SpanId::from_raw(p.parse_u64()?),
                    "parent" => parent = Some(SpanId::from_raw(p.parse_u64()?)),
                    "hop" => {
                        let name = p.parse_string()?;
                        hop = Some(Hop::ALL.into_iter().find(|h| h.as_str() == name)?);
                    }
                    "start_ms" => start_ms = Some(p.parse_i64()?),
                    "end_ms" => end_ms = Some(p.parse_i64()?),
                    "outcome" => {
                        let name = p.parse_string()?;
                        outcome = Some(Outcome::ALL.into_iter().find(|o| o.as_str() == name)?);
                    }
                    "duplicate" => duplicate = p.parse_bool()?,
                    "links" => {
                        p.expect(b'[')?;
                        if !p.eat(b']') {
                            loop {
                                links.push(p.parse_string()?.parse::<TraceId>().ok()?);
                                if !p.eat(b',') {
                                    break;
                                }
                            }
                            p.expect(b']')?;
                        }
                    }
                    "attrs" => {
                        p.expect(b'{')?;
                        if !p.eat(b'}') {
                            loop {
                                let attr_key = p.parse_string()?;
                                p.expect(b':')?;
                                let value = p.parse_string()?;
                                attrs.push((intern_attr_key(&attr_key), value));
                                if !p.eat(b',') {
                                    break;
                                }
                            }
                            p.expect(b'}')?;
                        }
                    }
                    _ => p.skip_value(0)?,
                }
                if !p.eat(b',') {
                    break;
                }
            }
            p.expect(b'}')?;
        }
        if !p.at_end() {
            return None;
        }
        Some(Self {
            trace: trace?,
            span,
            parent,
            hop: hop?,
            start_ms: start_ms?,
            end_ms: end_ms?,
            outcome: outcome?,
            duplicate,
            links,
            attrs,
        })
    }
}

/// Returns the static spelling of a span attribute key, leaking one
/// small allocation for a key outside the workspace vocabulary (the
/// `attrs` field stores `&'static str` keys so recording stays
/// allocation-light on the hot path).
fn intern_attr_key(key: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "attempt",
        "collection",
        "copies",
        "device",
        "dir",
        "instance",
        "members",
        "opcode",
        "queue",
        "reason",
        "records_replayed",
        "routed",
        "snapshot_lsn",
        "torn_tail",
        "window",
    ];
    match KNOWN.iter().find(|k| **k == key) {
        Some(k) => k,
        None => Box::leak(key.to_owned().into_boxed_str()),
    }
}

/// A minimal single-line JSON reader for [`SpanRecord::from_jsonl`].
/// Only the subset `to_jsonl` emits is fully supported; other values
/// can at least be skipped.
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonCursor<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        self.eat(b).then_some(())
    }

    fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }

    fn expect_literal(&mut self, lit: &str) -> Option<()> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            let c = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match c {
                b'"' => return String::from_utf8(out).ok(),
                b'\\' => {
                    let escape = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(
                                char::from_u32(code)?.encode_utf8(&mut buf).as_bytes(),
                            );
                        }
                        _ => return None,
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn parse_u64(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn parse_i64(&mut self) -> Option<i64> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn parse_bool(&mut self) -> Option<bool> {
        match self.peek()? {
            b't' => self.expect_literal("true").map(|()| true),
            b'f' => self.expect_literal("false").map(|()| false),
            _ => None,
        }
    }

    /// Skips one value of any JSON type (for unknown keys). `depth`
    /// bounds recursion so a hostile drain can't blow the stack.
    fn skip_value(&mut self, depth: u32) -> Option<()> {
        if depth > 32 {
            return None;
        }
        match self.peek()? {
            b'"' => {
                self.parse_string()?;
            }
            b'{' => {
                self.pos += 1;
                if !self.eat(b'}') {
                    loop {
                        self.parse_string()?;
                        self.expect(b':')?;
                        self.skip_value(depth + 1)?;
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b'}')?;
                }
            }
            b'[' => {
                self.pos += 1;
                if !self.eat(b']') {
                    loop {
                        self.skip_value(depth + 1)?;
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b']')?;
                }
            }
            b't' => self.expect_literal("true")?,
            b'f' => self.expect_literal("false")?,
            b'n' => self.expect_literal("null")?,
            _ => {
                let start = self.pos;
                while matches!(
                    self.bytes.get(self.pos),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                if self.pos == start {
                    return None;
                }
            }
        }
        Some(())
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminality_matches_the_taxonomy() {
        for outcome in Outcome::ALL {
            let terminal = !matches!(outcome, Outcome::Forwarded | Outcome::Retried);
            assert_eq!(outcome.is_terminal(), terminal, "{outcome}");
        }
        assert!(!Outcome::Ok.is_loss());
        assert!(Outcome::Dropped.is_loss());
        assert!(!Outcome::Retried.is_loss());
    }

    #[test]
    fn hop_order_is_pipeline_order() {
        let names: Vec<_> = Hop::ALL.iter().map(|h| h.as_str()).collect();
        assert_eq!(names[0], "sensed");
        assert_eq!(*names.last().unwrap(), "wal_recovery");
        assert_eq!(names.len(), 12);
        // No duplicates.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn builder_sets_every_field() {
        let trace = TraceId::from_raw(9);
        let span = SpanRecord::new(trace, Hop::LinkDelay, 500)
            .started_at(100)
            .outcome(Outcome::Dropped)
            .parent(Some(SpanId::from_raw(3)))
            .duplicate(true)
            .link(TraceId::from_raw(10))
            .attr("reason", "random");
        assert_eq!(span.duration_ms(), 400);
        assert_eq!(span.parent, Some(SpanId::from_raw(3)));
        assert!(span.duplicate);
        assert_eq!(span.links, vec![TraceId::from_raw(10)]);
        assert_eq!(span.attrs, vec![("reason", "random".to_owned())]);
    }

    #[test]
    fn duration_clamps_negative_intervals() {
        let span = SpanRecord::new(TraceId::from_raw(1), Hop::Sensed, 10).started_at(50);
        assert_eq!(span.duration_ms(), 0);
    }

    #[test]
    fn jsonl_is_wellformed_and_complete() {
        let span = SpanRecord::new(TraceId::from_raw(0xab), Hop::Quarantine, 120)
            .started_at(60)
            .outcome(Outcome::Quarantined)
            .parent(Some(SpanId::from_raw(2)))
            .duplicate(true)
            .link(TraceId::from_raw(1))
            .attr("reason", "la\"te\n");
        let line = span.to_jsonl();
        assert_eq!(
            line,
            "{\"trace\":\"00000000000000ab\",\"span\":0,\"parent\":2,\
             \"hop\":\"quarantine\",\"start_ms\":60,\"end_ms\":120,\
             \"outcome\":\"quarantined\",\"duplicate\":true,\
             \"links\":[\"0000000000000001\"],\
             \"attrs\":{\"reason\":\"la\\\"te\\n\"}}"
        );
    }

    #[test]
    fn jsonl_round_trips_every_field() {
        let span = SpanRecord::new(TraceId::from_raw(0xab), Hop::Quarantine, 120)
            .started_at(60)
            .outcome(Outcome::Quarantined)
            .parent(Some(SpanId::from_raw(2)))
            .duplicate(true)
            .link(TraceId::from_raw(1))
            .attr("reason", "la\"te\n");
        let parsed = SpanRecord::from_jsonl(&span.to_jsonl()).expect("parses");
        assert_eq!(parsed, span);
    }

    #[test]
    fn jsonl_round_trips_the_minimal_span() {
        let span = SpanRecord::new(TraceId::from_raw(1), Hop::Sensed, -5).outcome(Outcome::Ok);
        let parsed = SpanRecord::from_jsonl(&span.to_jsonl()).expect("parses");
        assert_eq!(parsed, span);
    }

    #[test]
    fn from_jsonl_skips_unknown_keys() {
        let line = "{\"trace\":\"00000000000000ab\",\"future\":[1,{\"x\":null}],\
                    \"hop\":\"sensed\",\"start_ms\":0,\"end_ms\":3,\"outcome\":\"ok\"}";
        let parsed = SpanRecord::from_jsonl(line).expect("parses");
        assert_eq!(parsed.trace, TraceId::from_raw(0xab));
        assert_eq!(parsed.hop, Hop::Sensed);
        assert_eq!(parsed.end_ms, 3);
    }

    #[test]
    fn from_jsonl_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "not json",
            "{\"trace\":\"zz\",\"hop\":\"sensed\",\"start_ms\":0,\"end_ms\":0,\"outcome\":\"ok\"}",
            "{\"trace\":\"00000000000000ab\",\"hop\":\"warp\",\"start_ms\":0,\"end_ms\":0,\"outcome\":\"ok\"}",
            "{\"trace\":\"00000000000000ab\",\"hop\":\"sensed\",\"start_ms\":0,\"end_ms\":0}",
            "{\"trace\":\"00000000000000ab\",\"hop\":\"sensed\",\"start_ms\":0,\"end_ms\":0,\"outcome\":\"ok\"}trailing",
        ] {
            assert!(SpanRecord::from_jsonl(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn from_jsonl_decodes_unicode_escapes() {
        let span = SpanRecord::new(TraceId::from_raw(7), Hop::Sensed, 0)
            .outcome(Outcome::Ok)
            .attr("reason", "tab\tbel\u{7}é");
        let parsed = SpanRecord::from_jsonl(&span.to_jsonl()).expect("parses");
        assert_eq!(parsed.attrs, span.attrs);
    }

    #[test]
    fn jsonl_minimal_span_omits_optional_fields() {
        let span = SpanRecord::new(TraceId::from_raw(1), Hop::Sensed, 0).outcome(Outcome::Ok);
        let line = span.to_jsonl();
        assert!(!line.contains("parent"));
        assert!(!line.contains("duplicate"));
        assert!(!line.contains("links"));
        assert!(!line.contains("attrs"));
        assert!(line.ends_with('}'));
    }
}
