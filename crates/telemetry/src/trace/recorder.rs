//! The bounded in-memory flight recorder spans land in.

use super::{SpanId, SpanRecord};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;
#[cfg(not(loom))]
use std::sync::OnceLock;
use std::sync::PoisonError;

/// Default capacity of the process-wide recorder
/// ([`FlightRecorder::global`]): 16,384 spans (~2 MiB resident).
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

/// A bounded, drop-oldest ring buffer of [`SpanRecord`]s.
///
/// The recorder is the crash-safe core of the tracing layer: recording
/// **never blocks on a global lock and never allocates beyond the ring**,
/// so tracing a million-device run cannot OOM the process — once the
/// ring wraps, the oldest spans are overwritten and counted in
/// [`FlightRecorder::dropped`]. Slot reservation is a single atomic
/// `fetch_add`; the reserved slot is guarded by its own uncontended
/// mutex, so writers only ever contend when the ring has fully wrapped
/// within one reservation window.
///
/// Sizing guidance: each in-flight observation produces 4–7 spans, so
/// size the ring at roughly `8 × expected observations` for a run you
/// want to reconstruct in full. The [`DEFAULT_CAPACITY`] of 16Ki spans
/// comfortably holds a 10-simulated-hour, one-observation-per-minute
/// faulted run; scale up with [`FlightRecorder::with_capacity`] for
/// bigger scenarios.
///
/// # Examples
///
/// ```
/// use mps_telemetry::trace::{FlightRecorder, Hop, Outcome, SpanRecord, TraceId};
///
/// let recorder = FlightRecorder::with_capacity(8);
/// let trace = TraceId::for_observation(4, 0);
/// recorder.record(SpanRecord::new(trace, Hop::Sensed, 0));
/// recorder.record(SpanRecord::new(trace, Hop::DocstoreWrite, 30_000).outcome(Outcome::Ok));
/// assert_eq!(recorder.recorded(), 2);
/// assert_eq!(recorder.dropped(), 0);
/// assert_eq!(recorder.snapshot().len(), 2);
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    head: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` spans (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || Mutex::new(None));
        Self {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// The process-wide recorder every traced hop reports into.
    ///
    /// Absent under `--cfg loom`: loom primitives may only be created
    /// inside a model run, so the lazily-initialised process-wide
    /// instance cannot exist there (loom tests build their own
    /// recorders per model).
    #[cfg(not(loom))]
    pub fn global() -> &'static FlightRecorder {
        static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
        GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_CAPACITY))
    }

    /// Records a span, assigning and returning its [`SpanId`].
    ///
    /// Ids are assigned in recording order starting at 1, so sorting a
    /// snapshot by id recovers the order events were observed.
    pub fn record(&self, mut span: SpanRecord) -> SpanId {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let id = SpanId::from_raw(seq + 1);
        span.span = id;
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(span);
        id
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans lost to ring wrap-around since the last [`clear`].
    ///
    /// [`clear`]: FlightRecorder::clear
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// The ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The retained spans, sorted by recording order (span id).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        spans.sort_by_key(|s| s.span);
        spans
    }

    /// Serialises the retained spans as JSON Lines (one span per line,
    /// recording order), ready to write to a `.jsonl` export.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.snapshot() {
            out.push_str(&span.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Empties the ring and resets the id sequence — used by exhibits
    /// and tests that need an isolated recording window. Span ids
    /// restart at 1 afterwards.
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
        self.head.store(0, Ordering::Relaxed);
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::trace::{Hop, Outcome, TraceId};

    fn span(i: i64) -> SpanRecord {
        SpanRecord::new(TraceId::from_raw(i as u64 + 1), Hop::Sensed, i)
    }

    #[test]
    fn ids_are_sequential_from_one() {
        let r = FlightRecorder::with_capacity(4);
        assert_eq!(r.record(span(0)).raw(), 1);
        assert_eq!(r.record(span(1)).raw(), 2);
        assert_eq!(r.recorded(), 2);
    }

    #[test]
    fn wraparound_drops_oldest_and_counts() {
        let r = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            r.record(span(i));
        }
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        let kept = r.snapshot();
        assert_eq!(kept.len(), 3);
        // The oldest two were overwritten; spans 3..=5 remain, in order.
        assert_eq!(
            kept.iter().map(|s| s.span.raw()).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn clear_resets_everything() {
        let r = FlightRecorder::with_capacity(2);
        r.record(span(0));
        r.record(span(1));
        r.record(span(2));
        r.clear();
        assert_eq!(r.recorded(), 0);
        assert_eq!(r.dropped(), 0);
        assert!(r.snapshot().is_empty());
        assert_eq!(r.record(span(9)).raw(), 1, "ids restart after clear");
    }

    #[test]
    fn export_jsonl_is_one_line_per_span() {
        let r = FlightRecorder::with_capacity(8);
        r.record(span(0));
        r.record(span(1).outcome(Outcome::Ok));
        let export = r.export_jsonl();
        let lines: Vec<_> = export.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"span\":1"));
        assert!(lines[1].contains("\"outcome\":\"ok\""));
        assert!(export.ends_with('\n'));
    }

    #[test]
    fn capacity_floor_is_one() {
        let r = FlightRecorder::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        r.record(span(0));
        r.record(span(1));
        assert_eq!(r.snapshot().len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn concurrent_recording_is_safe_and_complete() {
        let r = std::sync::Arc::new(FlightRecorder::with_capacity(4096));
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    r.record(span(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.recorded(), 1000);
        assert_eq!(r.dropped(), 0);
        let ids: Vec<u64> = r.snapshot().iter().map(|s| s.span.raw()).collect();
        assert_eq!(ids.len(), 1000);
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids strictly ordered");
    }

    #[test]
    fn global_is_shared_and_bounded() {
        let before = FlightRecorder::global().recorded();
        FlightRecorder::global().record(span(0));
        assert!(FlightRecorder::global().recorded() > before);
        assert_eq!(FlightRecorder::global().capacity(), DEFAULT_CAPACITY);
    }

    #[test]
    fn recording_overhead_is_loosely_within_budget() {
        // The documented budget is < 100ns/span on the recording path in
        // release builds (see benches/flight_recorder.rs). Asserted
        // loosely here so a debug-build test run still passes with wide
        // margin while catching order-of-magnitude regressions (e.g. a
        // global lock or per-record allocation of the whole ring).
        let r = FlightRecorder::with_capacity(8192);
        let base = SpanRecord::new(TraceId::from_raw(7), Hop::LinkTransmit, 42);
        let n = 100_000u32;
        #[allow(clippy::disallowed_methods)] // measuring real latency is this test's purpose
        let started = std::time::Instant::now();
        for _ in 0..n {
            r.record(base.clone());
        }
        let per_span = started.elapsed().as_nanos() / u128::from(n);
        assert!(
            per_span < 10_000,
            "recording took {per_span}ns/span (budget: loosely < 10µs in debug, < 100ns in release)"
        );
    }
}
