//! Trace and span identities, and the wire encoding used to propagate
//! trace context across hops that only see opaque payloads.

use std::fmt;

/// Splitmix64 finaliser — a cheap, well-mixed, stable hash step.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The identity of one observation's journey through the pipeline.
///
/// A trace is minted when an observation is sensed on a device and is
/// carried (or re-derived) through every hop: retry queue, link, broker,
/// ingest, document store and assimilation batch. Because the id is a
/// **stable hash of the observation's own identity** (device + capture
/// time), any layer holding a decoded observation computes the same
/// trace id without needing wire-format changes — layers that only see
/// opaque bytes get the id from message headers instead.
///
/// # Examples
///
/// ```
/// use mps_telemetry::trace::TraceId;
///
/// let a = TraceId::for_observation(4, 60_000);
/// let b = TraceId::for_observation(4, 60_000);
/// assert_eq!(a, b, "same observation, same trace");
/// assert_ne!(a, TraceId::for_observation(4, 120_000));
/// assert_eq!(a, format!("{a}").parse().unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// Derives the stable trace id for an observation from its device id
    /// and capture time (milliseconds since the simulation epoch).
    pub fn for_observation(device: u64, captured_ms: i64) -> Self {
        let mixed = mix(mix(device ^ 0x9e37_79b9_7f4a_7c15) ^ captured_ms as u64);
        // Zero is reserved as "no trace" in compact encodings.
        Self(if mixed == 0 { 1 } else { mixed })
    }

    /// Wraps a raw 64-bit id (e.g. parsed from an export).
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::str::FromStr for TraceId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u64::from_str_radix(s, 16).map(Self)
    }
}

/// The identity of one span within the flight recorder.
///
/// Span ids are assigned by [`FlightRecorder::record`] in recording
/// order, so sorting spans by id recovers the order events were
/// observed.
///
/// [`FlightRecorder::record`]: crate::trace::FlightRecorder::record
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// Wraps a raw span id.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

/// The trace context attached to one in-flight copy of an observation.
///
/// This is what crosses hop boundaries: the trace identity, the span
/// that handed the copy over (so the receiving hop can parent its own
/// span), and whether this copy is a fault-injected **duplicate** of the
/// primary. Duplicate copies record `duplicate = true` spans all the way
/// down, preserving the invariant that each trace has exactly one
/// *primary* terminal outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this copy belongs to.
    pub trace: TraceId,
    /// The last span recorded for this copy, if known.
    pub parent: Option<SpanId>,
    /// True when this copy is a fault-injected duplicate.
    pub duplicate: bool,
}

impl TraceContext {
    /// A fresh primary context with no parent span.
    pub fn new(trace: TraceId) -> Self {
        Self {
            trace,
            parent: None,
            duplicate: false,
        }
    }

    /// The same context re-parented under `span`.
    pub fn child_of(self, span: SpanId) -> Self {
        Self {
            parent: Some(span),
            ..self
        }
    }

    /// The same context marked as a duplicate copy.
    pub fn as_duplicate(self) -> Self {
        Self {
            duplicate: true,
            ..self
        }
    }
}

/// Encodes contexts for a message header.
///
/// Format: comma-separated items, each `trace[.parent][!]` in lowercase
/// hex, `!` marking a duplicate copy. The format is deliberately tiny —
/// it rides on every published message.
///
/// # Examples
///
/// ```
/// use mps_telemetry::trace::{encode_contexts, parse_contexts, SpanId, TraceContext, TraceId};
///
/// let ctx = TraceContext::new(TraceId::from_raw(0xabc)).child_of(SpanId::from_raw(7));
/// let wire = encode_contexts(&[ctx, ctx.as_duplicate()]);
/// assert_eq!(wire, "0000000000000abc.7,0000000000000abc.7!");
/// assert_eq!(parse_contexts(&wire), vec![ctx, ctx.as_duplicate()]);
/// ```
pub fn encode_contexts(contexts: &[TraceContext]) -> String {
    let mut out = String::with_capacity(contexts.len() * 20);
    for (i, ctx) in contexts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", ctx.trace));
        if let Some(parent) = ctx.parent {
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(".{parent}"));
        }
        if ctx.duplicate {
            out.push('!');
        }
    }
    out
}

/// Parses a header written by [`encode_contexts`]. Malformed items are
/// skipped — a garbled trace header must never take down a hop.
pub fn parse_contexts(header: &str) -> Vec<TraceContext> {
    header
        .split(',')
        .filter_map(|item| {
            let item = item.trim();
            let (item, duplicate) = match item.strip_suffix('!') {
                Some(rest) => (rest, true),
                None => (item, false),
            };
            let (trace_part, parent_part) = match item.split_once('.') {
                Some((t, p)) => (t, Some(p)),
                None => (item, None),
            };
            let trace: TraceId = trace_part.parse().ok()?;
            let parent = match parent_part {
                Some(p) => Some(SpanId::from_raw(u64::from_str_radix(p, 16).ok()?)),
                None => None,
            };
            Some(TraceContext {
                trace,
                parent,
                duplicate,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_stable_and_distinct() {
        let a = TraceId::for_observation(4, 0);
        assert_eq!(a, TraceId::for_observation(4, 0));
        assert_ne!(a, TraceId::for_observation(5, 0));
        assert_ne!(a, TraceId::for_observation(4, 1));
        assert_ne!(a.raw(), 0);
    }

    #[test]
    fn trace_id_round_trips_through_display() {
        let id = TraceId::for_observation(123, 456_789);
        let text = id.to_string();
        assert_eq!(text.len(), 16);
        assert_eq!(text.parse::<TraceId>().unwrap(), id);
    }

    #[test]
    fn no_observation_maps_to_zero() {
        // Zero is reserved; the constructor remaps it to 1. We can't
        // easily find a preimage of 0, so just spot-check a range.
        for device in 0..50u64 {
            for t in 0..50i64 {
                assert_ne!(TraceId::for_observation(device, t).raw(), 0);
            }
        }
    }

    #[test]
    fn contexts_round_trip() {
        let contexts = vec![
            TraceContext::new(TraceId::from_raw(1)),
            TraceContext::new(TraceId::from_raw(0xdead_beef)).child_of(SpanId::from_raw(0x2a)),
            TraceContext::new(TraceId::from_raw(7))
                .child_of(SpanId::from_raw(9))
                .as_duplicate(),
        ];
        assert_eq!(parse_contexts(&encode_contexts(&contexts)), contexts);
    }

    #[test]
    fn parse_skips_garbage() {
        let parsed = parse_contexts("zzz,12.xx,,34!,!");
        assert_eq!(
            parsed,
            vec![TraceContext {
                trace: TraceId::from_raw(0x34),
                parent: None,
                duplicate: true,
            }]
        );
        assert!(parse_contexts("").is_empty());
    }

    #[test]
    fn context_builders_compose() {
        let ctx = TraceContext::new(TraceId::from_raw(5));
        assert_eq!(ctx.parent, None);
        assert!(!ctx.duplicate);
        let child = ctx.child_of(SpanId::from_raw(3)).as_duplicate();
        assert_eq!(child.trace, ctx.trace);
        assert_eq!(child.parent, Some(SpanId::from_raw(3)));
        assert!(child.duplicate);
    }
}
