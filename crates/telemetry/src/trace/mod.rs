//! # End-to-end observation tracing (`mps-trace`)
//!
//! Aggregate counters (PR 1) say *how many* observations were lost or
//! delayed; the conservation ledger (PR 2) proves the books balance.
//! This module answers *which* observation and *why*: a [`TraceId`] is
//! minted when an observation is sensed on a device and follows it
//! through every hop — client buffer, retry queue, (faulty) link,
//! broker publish/queue/DLQ, ingest, quarantine, document store, and
//! assimilation batch fan-in.
//!
//! The moving parts:
//!
//! * [`TraceId`] / [`SpanId`] / [`TraceContext`] — identity and the
//!   tiny header encoding ([`encode_contexts`] / [`parse_contexts`])
//!   used to cross opaque-payload hops.
//! * [`Hop`] / [`Outcome`] / [`SpanRecord`] — one hop's account of one
//!   observation copy, on the simulation clock.
//! * [`FlightRecorder`] — the bounded drop-oldest ring spans land in;
//!   recording is allocation-free on the ring and never takes a global
//!   lock, so tracing cannot OOM a large run.
//! * [`TraceIndex`] / [`LatencyWaterfall`] / [`LossAttribution`] — the
//!   offline query layer: reconstruct per-observation timelines,
//!   per-hop p50/p95/p99 waterfalls, and a which-hop-killed-it table
//!   that cross-checks the conservation counters.
//!
//! # Examples
//!
//! ```
//! use mps_telemetry::trace::{
//!     FlightRecorder, Hop, LatencyWaterfall, Outcome, SpanRecord, TraceId, TraceIndex,
//! };
//!
//! let recorder = FlightRecorder::with_capacity(64);
//! let trace = TraceId::for_observation(4, 60_000);
//! let sensed = recorder.record(SpanRecord::new(trace, Hop::Sensed, 60_000));
//! recorder.record(
//!     SpanRecord::new(trace, Hop::DocstoreWrite, 95_000)
//!         .parent(Some(sensed))
//!         .outcome(Outcome::Ok)
//!         .attr("collection", "obs-SC"),
//! );
//!
//! let index = TraceIndex::from_spans(recorder.snapshot());
//! assert!(index.unterminated().is_empty(), "every trace terminated");
//! let waterfall = LatencyWaterfall::from_spans(&recorder.snapshot());
//! assert_eq!(waterfall.hops(), vec![Hop::Sensed, Hop::DocstoreWrite]);
//! ```

mod analysis;
mod ids;
mod recorder;
mod span;

pub use analysis::{
    merge_instance_spans, LatencyWaterfall, LossAttribution, TraceIndex, TraceTree,
};
pub use ids::{encode_contexts, parse_contexts, SpanId, TraceContext, TraceId};
pub use recorder::{FlightRecorder, DEFAULT_CAPACITY};
pub use span::{Hop, Outcome, SpanRecord};

/// The message-header name carrying encoded [`TraceContext`]s across the
/// broker boundary.
///
/// Canonically defined in `mps_types::headers::TRACE_HEADER`; this crate
/// is dependency-free so it keeps a pinned copy (cross-checked by a test
/// in `mps-broker`).
// mps-lint: allow(L005) -- mps-telemetry is dependency-free by design; this copy is pinned to mps_types::headers by a cross-check test in mps-broker
pub const TRACE_HEADER: &str = "x-trace";

/// The message-header name carrying the sim-clock publish time
/// (milliseconds since the epoch, decimal) so the consuming hop can
/// measure queue wait.
///
/// Canonically defined in `mps_types::headers::SENT_MS_HEADER`.
// mps-lint: allow(L005) -- mps-telemetry is dependency-free by design; this copy is pinned to mps_types::headers by a cross-check test in mps-broker
pub const SENT_MS_HEADER: &str = "x-trace-sent-ms";
