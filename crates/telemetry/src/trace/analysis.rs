//! Offline queries over recorded spans: trace reconstruction, per-hop
//! latency waterfalls and loss attribution.

use super::{Hop, Outcome, SpanId, SpanRecord, TraceId};
use crate::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Merges per-process flight-recorder drains into one span set that
/// [`TraceIndex`] can reconstruct across process boundaries.
///
/// Every process assigns [`SpanId`]s from its own sequence, so drains
/// from two daemons collide on raw ids. The merge tags each instance's
/// ids (and parent links) with a distinct high-bits offset
/// (`(index + 1) << 48` — recorder sequences stay far below 2^48), adds
/// an `instance` attribute carrying the process name, and sorts the
/// union by `(start_ms, instance order, span id)` so per-instance
/// recording order is preserved and ties go to the earlier-listed
/// instance. List the driver first: its `sensed` roots then stay the
/// first span of each merged trace.
///
/// # Examples
///
/// ```
/// use mps_telemetry::trace::{merge_instance_spans, Hop, Outcome, SpanRecord, TraceId, TraceIndex};
///
/// let trace = TraceId::for_observation(4, 0);
/// let merged = merge_instance_spans(vec![
///     ("driver".to_owned(), vec![SpanRecord::new(trace, Hop::Sensed, 0)]),
///     ("docstored".to_owned(), vec![
///         SpanRecord::new(trace, Hop::DocstoreWrite, 40).outcome(Outcome::Ok),
///     ]),
/// ]);
/// let index = TraceIndex::from_spans(merged);
/// assert!(index.unterminated().is_empty(), "stitched across the boundary");
/// assert_eq!(index.get(trace).unwrap().root().unwrap().hop, Hop::Sensed);
/// ```
pub fn merge_instance_spans(instances: Vec<(String, Vec<SpanRecord>)>) -> Vec<SpanRecord> {
    let mut merged: Vec<(i64, usize, u64, SpanRecord)> = Vec::new();
    for (index, (name, spans)) in instances.into_iter().enumerate() {
        let offset = (index as u64 + 1) << 48;
        for mut span in spans {
            span.span = SpanId::from_raw(offset + span.span.raw());
            if let Some(parent) = span.parent {
                span.parent = Some(SpanId::from_raw(offset + parent.raw()));
            }
            span.attrs.push(("instance", name.clone()));
            merged.push((span.start_ms, index, span.span.raw(), span));
        }
    }
    merged.sort_by_key(|a| (a.0, a.1, a.2));
    merged.into_iter().map(|(_, _, _, span)| span).collect()
}

/// One reconstructed trace: every retained span of one observation,
/// sorted by recording order.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace identity.
    pub trace: TraceId,
    /// The trace's spans in recording order.
    pub spans: Vec<SpanRecord>,
}

impl TraceTree {
    /// The root span (the earliest recorded), if any.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.first()
    }

    /// The primary terminal span — the single non-duplicate span with a
    /// terminal outcome, if the trace has terminated.
    pub fn terminal(&self) -> Option<&SpanRecord> {
        self.spans
            .iter()
            .find(|s| s.outcome.is_terminal() && !s.duplicate)
    }

    /// All terminal spans, duplicates included (a duplicated
    /// observation can terminate once per copy).
    pub fn terminals(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.outcome.is_terminal())
    }

    /// Renders the trace as an indented timeline, one span per line.
    pub fn render(&self) -> String {
        let base = self.spans.first().map_or(0, |s| s.start_ms);
        let mut out = String::new();
        let _ = writeln!(out, "trace {}", self.trace);
        for span in &self.spans {
            let _ = write!(
                out,
                "  +{:>8}ms {:<14} {:<13}",
                span.start_ms - base,
                span.hop.as_str(),
                span.outcome.as_str(),
            );
            if span.duration_ms() > 0 {
                let _ = write!(out, " ({}ms)", span.duration_ms());
            }
            if span.duplicate {
                out.push_str(" [dup]");
            }
            for (key, value) in &span.attrs {
                let _ = write!(out, " {key}={value}");
            }
            out.push('\n');
        }
        out
    }
}

/// All retained traces, reconstructed from a span snapshot and indexed
/// by [`TraceId`].
///
/// # Examples
///
/// ```
/// use mps_telemetry::trace::{FlightRecorder, Hop, Outcome, SpanRecord, TraceId, TraceIndex};
///
/// let recorder = FlightRecorder::with_capacity(16);
/// let trace = TraceId::for_observation(4, 0);
/// recorder.record(SpanRecord::new(trace, Hop::Sensed, 0));
/// recorder.record(SpanRecord::new(trace, Hop::DocstoreWrite, 30_000).outcome(Outcome::Ok));
///
/// let index = TraceIndex::from_spans(recorder.snapshot());
/// assert_eq!(index.len(), 1);
/// assert!(index.unterminated().is_empty());
/// assert_eq!(index.get(trace).unwrap().terminal().unwrap().hop, Hop::DocstoreWrite);
/// ```
#[derive(Debug, Default)]
pub struct TraceIndex {
    traces: BTreeMap<TraceId, TraceTree>,
}

impl TraceIndex {
    /// Groups a span snapshot (e.g. [`FlightRecorder::snapshot`]) into
    /// traces. Spans arrive sorted by recording order and stay that way
    /// within each trace.
    ///
    /// [`FlightRecorder::snapshot`]: crate::trace::FlightRecorder::snapshot
    pub fn from_spans(spans: impl IntoIterator<Item = SpanRecord>) -> Self {
        let mut traces: BTreeMap<TraceId, TraceTree> = BTreeMap::new();
        for span in spans {
            traces
                .entry(span.trace)
                .or_insert_with(|| TraceTree {
                    trace: span.trace,
                    spans: Vec::new(),
                })
                .spans
                .push(span);
        }
        Self { traces }
    }

    /// The number of distinct traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no trace is indexed.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The trace with identity `trace`, if retained.
    pub fn get(&self, trace: TraceId) -> Option<&TraceTree> {
        self.traces.get(&trace)
    }

    /// Iterates the traces in id order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceTree> {
        self.traces.values()
    }

    /// Traces with no primary terminal outcome — in a quiesced run this
    /// must be empty (the CI tracing exhibit fails otherwise). Batch
    /// fan-in traces (whose spans are all [`Hop::AssimBatch`]) terminate
    /// via their own `Ok` span like any other trace.
    pub fn unterminated(&self) -> Vec<TraceId> {
        self.traces
            .values()
            .filter(|t| t.terminal().is_none())
            .map(|t| t.trace)
            .collect()
    }
}

/// Latency buckets for per-hop waterfalls: 1ms … ~70min, log-spaced.
fn latency_buckets() -> Vec<f64> {
    Histogram::exponential_buckets(1.0, 4.0, 12)
}

/// Per-hop sim-clock latency distributions (p50/p95/p99), rendered as a
/// waterfall in pipeline order.
///
/// Each span contributes its duration to its hop's histogram, so a hop
/// row answers "how long did observations spend there". Zero-length
/// spans (decision points like [`Hop::BrokerPublish`]) still count —
/// their row shows the hop fired, with ~0ms residence.
#[derive(Debug)]
pub struct LatencyWaterfall {
    per_hop: BTreeMap<Hop, Histogram>,
}

impl LatencyWaterfall {
    /// Builds the waterfall from a span snapshot.
    pub fn from_spans<'a>(spans: impl IntoIterator<Item = &'a SpanRecord>) -> Self {
        let mut per_hop: BTreeMap<Hop, Histogram> = BTreeMap::new();
        for span in spans {
            per_hop
                .entry(span.hop)
                .or_insert_with(|| Histogram::new(latency_buckets()))
                .observe(span.duration_ms() as f64);
        }
        Self { per_hop }
    }

    /// The latency histogram for `hop`, if any span hit it.
    pub fn hop(&self, hop: Hop) -> Option<&Histogram> {
        self.per_hop.get(&hop)
    }

    /// Hops that recorded at least one span, in pipeline order.
    pub fn hops(&self) -> Vec<Hop> {
        Hop::ALL
            .into_iter()
            .filter(|h| self.per_hop.contains_key(h))
            .collect()
    }

    /// Renders the waterfall as an aligned text table with a log-scaled
    /// p95 bar, in pipeline order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>9} {:>9} {:>9}  p95",
            "hop", "spans", "p50 ms", "p95 ms", "p99 ms"
        );
        for hop in self.hops() {
            let h = &self.per_hop[&hop];
            let p95 = h.p95();
            // Log scale: 1 bar char per factor of ~4 above 1ms.
            let bar_len = if p95 <= 1.0 {
                0
            } else {
                (p95.log2() / 2.0).ceil() as usize
            };
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>9.0} {:>9.0} {:>9.0}  {}",
                hop.as_str(),
                h.count(),
                h.p50(),
                p95,
                h.p99(),
                "#".repeat(bar_len.min(24)),
            );
        }
        out
    }
}

/// Which hop killed each lost observation, split into primary copies
/// (the conservation ledger's view) and fault-injected duplicates.
///
/// Cross-checking against the PR 2 conservation counters: the *total*
/// (primary + duplicate) count per `(hop, loss outcome)` cell matches
/// the corresponding fault/broker/ingest counter, because those count
/// message copies, not traces.
#[derive(Debug, Default)]
pub struct LossAttribution {
    cells: BTreeMap<(Hop, Outcome), (u64, u64)>,
}

impl LossAttribution {
    /// Tallies terminal loss spans from a span snapshot.
    pub fn from_spans<'a>(spans: impl IntoIterator<Item = &'a SpanRecord>) -> Self {
        let mut cells: BTreeMap<(Hop, Outcome), (u64, u64)> = BTreeMap::new();
        for span in spans {
            if span.outcome.is_loss() {
                let cell = cells.entry((span.hop, span.outcome)).or_default();
                if span.duplicate {
                    cell.1 += 1;
                } else {
                    cell.0 += 1;
                }
            }
        }
        Self { cells }
    }

    /// Primary (non-duplicate) losses at `(hop, outcome)`.
    pub fn primary(&self, hop: Hop, outcome: Outcome) -> u64 {
        self.cells.get(&(hop, outcome)).map_or(0, |c| c.0)
    }

    /// Duplicate-copy losses at `(hop, outcome)`.
    pub fn duplicates(&self, hop: Hop, outcome: Outcome) -> u64 {
        self.cells.get(&(hop, outcome)).map_or(0, |c| c.1)
    }

    /// All message copies lost at `(hop, outcome)` — the number the
    /// conservation counters see.
    pub fn copies(&self, hop: Hop, outcome: Outcome) -> u64 {
        self.primary(hop, outcome) + self.duplicates(hop, outcome)
    }

    /// Total primary observations lost across all hops.
    pub fn total_primary(&self) -> u64 {
        self.cells.values().map(|c| c.0).sum()
    }

    /// Renders the attribution table (hop, outcome, primary, duplicate
    /// counts), hops in pipeline order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:<13} {:>8} {:>8}",
            "hop", "outcome", "primary", "dup"
        );
        for hop in Hop::ALL {
            for outcome in Outcome::ALL {
                if let Some((primary, dup)) = self.cells.get(&(hop, outcome)) {
                    let _ = writeln!(
                        out,
                        "{:<14} {:<13} {:>8} {:>8}",
                        hop.as_str(),
                        outcome.as_str(),
                        primary,
                        dup
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "total primary observations lost: {}",
            self.total_primary()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanId;

    fn spans() -> Vec<SpanRecord> {
        let a = TraceId::from_raw(1);
        let b = TraceId::from_raw(2);
        let mut spans = vec![
            SpanRecord::new(a, Hop::Sensed, 0),
            SpanRecord::new(a, Hop::ClientBuffer, 60_000).started_at(0),
            SpanRecord::new(a, Hop::DocstoreWrite, 61_000).outcome(Outcome::Ok),
            // Duplicate copy of `a` dead-lettered later.
            SpanRecord::new(a, Hop::BrokerDlq, 62_000)
                .outcome(Outcome::DeadLettered)
                .duplicate(true),
            SpanRecord::new(b, Hop::Sensed, 0),
            SpanRecord::new(b, Hop::LinkTransmit, 60_000).outcome(Outcome::Dropped),
        ];
        for (i, span) in spans.iter_mut().enumerate() {
            span.span = SpanId::from_raw(i as u64 + 1);
        }
        spans
    }

    #[test]
    fn index_groups_and_finds_terminals() {
        let index = TraceIndex::from_spans(spans());
        assert_eq!(index.len(), 2);
        assert!(!index.is_empty());
        let a = index.get(TraceId::from_raw(1)).unwrap();
        assert_eq!(a.spans.len(), 4);
        assert_eq!(a.root().unwrap().hop, Hop::Sensed);
        assert_eq!(a.terminal().unwrap().hop, Hop::DocstoreWrite);
        assert_eq!(a.terminals().count(), 2, "dup terminal counted separately");
        let b = index.get(TraceId::from_raw(2)).unwrap();
        assert_eq!(b.terminal().unwrap().outcome, Outcome::Dropped);
        assert!(index.unterminated().is_empty());
    }

    #[test]
    fn unterminated_traces_are_reported() {
        let spans = vec![SpanRecord::new(TraceId::from_raw(9), Hop::Sensed, 0)];
        let index = TraceIndex::from_spans(spans);
        assert_eq!(index.unterminated(), vec![TraceId::from_raw(9)]);
    }

    #[test]
    fn duplicate_terminal_does_not_terminate_the_primary() {
        let spans = vec![
            SpanRecord::new(TraceId::from_raw(3), Hop::Sensed, 0),
            SpanRecord::new(TraceId::from_raw(3), Hop::BrokerDlq, 1)
                .outcome(Outcome::DeadLettered)
                .duplicate(true),
        ];
        let index = TraceIndex::from_spans(spans);
        assert_eq!(index.unterminated(), vec![TraceId::from_raw(3)]);
    }

    #[test]
    fn waterfall_covers_hit_hops_in_pipeline_order() {
        let spans = spans();
        let waterfall = LatencyWaterfall::from_spans(&spans);
        assert_eq!(
            waterfall.hops(),
            vec![
                Hop::Sensed,
                Hop::ClientBuffer,
                Hop::LinkTransmit,
                Hop::BrokerDlq,
                Hop::DocstoreWrite,
            ]
        );
        let buffer = waterfall.hop(Hop::ClientBuffer).unwrap();
        assert_eq!(buffer.count(), 1);
        assert!(
            buffer.p95() > 1_000.0,
            "60s residence lands in a high bucket"
        );
        assert!(waterfall.hop(Hop::AssimBatch).is_none());
        let rendered = waterfall.render();
        assert!(rendered.contains("client_buffer"));
        assert!(rendered.lines().count() >= 6);
    }

    #[test]
    fn loss_attribution_separates_primary_and_duplicate_copies() {
        let spans = spans();
        let loss = LossAttribution::from_spans(&spans);
        assert_eq!(loss.primary(Hop::LinkTransmit, Outcome::Dropped), 1);
        assert_eq!(loss.duplicates(Hop::LinkTransmit, Outcome::Dropped), 0);
        assert_eq!(loss.primary(Hop::BrokerDlq, Outcome::DeadLettered), 0);
        assert_eq!(loss.duplicates(Hop::BrokerDlq, Outcome::DeadLettered), 1);
        assert_eq!(loss.copies(Hop::BrokerDlq, Outcome::DeadLettered), 1);
        assert_eq!(loss.total_primary(), 1, "stored `a` is not a loss");
        let rendered = loss.render();
        assert!(rendered.contains("dead_lettered"));
        assert!(rendered.contains("total primary observations lost: 1"));
    }

    #[test]
    fn merge_remaps_colliding_span_ids_and_tags_instances() {
        let trace = TraceId::from_raw(5);
        // Both processes used raw span ids 1 and 2.
        let driver = vec![
            {
                let mut s = SpanRecord::new(trace, Hop::Sensed, 0);
                s.span = SpanId::from_raw(1);
                s
            },
            {
                let mut s =
                    SpanRecord::new(trace, Hop::LinkTransmit, 10).parent(Some(SpanId::from_raw(1)));
                s.span = SpanId::from_raw(2);
                s
            },
        ];
        let store = vec![{
            let mut s = SpanRecord::new(trace, Hop::DocstoreWrite, 10).outcome(Outcome::Ok);
            s.span = SpanId::from_raw(1);
            s
        }];
        let merged = merge_instance_spans(vec![
            ("driver".to_owned(), driver),
            ("docstored".to_owned(), store),
        ]);
        assert_eq!(merged.len(), 3);
        // Ids are disjoint after the merge and parents moved with them.
        let mut ids: Vec<u64> = merged.iter().map(|s| s.span.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3, "no id collision survives the merge");
        assert_eq!(merged[1].parent, Some(merged[0].span));
        // Every span knows where it came from.
        assert_eq!(merged[0].attrs, vec![("instance", "driver".to_owned())]);
        assert_eq!(merged[2].attrs, vec![("instance", "docstored".to_owned())]);
        // Tie at start_ms=10 goes to the earlier-listed instance.
        assert_eq!(merged[1].hop, Hop::LinkTransmit);
        assert_eq!(merged[2].hop, Hop::DocstoreWrite);
        // The merged set reconstructs as one continuous trace.
        let index = TraceIndex::from_spans(merged);
        let tree = index.get(trace).expect("stitched");
        assert_eq!(tree.root().expect("rooted").hop, Hop::Sensed);
        assert_eq!(tree.terminal().expect("terminated").hop, Hop::DocstoreWrite);
    }

    #[test]
    fn trace_render_is_a_readable_timeline() {
        let index = TraceIndex::from_spans(spans());
        let rendered = index.get(TraceId::from_raw(1)).unwrap().render();
        assert!(rendered.starts_with("trace 0000000000000001\n"));
        assert!(rendered.contains("sensed"));
        assert!(rendered.contains("[dup]"));
        assert!(rendered.contains("(60000ms)"));
    }
}
