//! The named-metric registry and its text exposition.

use crate::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

/// A registered metric of any kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Every series sharing one metric name: one `# HELP`/`# TYPE` preamble,
/// one child per distinct label set (the empty label set is the plain,
/// unlabeled series).
#[derive(Debug)]
struct Entry {
    help: String,
    /// Keyed by the canonical rendered label suffix (`""` or
    /// `{k="v",…}` with keys sorted), so rendering and lookups agree on
    /// identity.
    series: BTreeMap<String, Metric>,
}

/// One rendered entry: metric name, help text, and the (label-suffix,
/// metric) children cloned out of the registry lock.
type RenderedEntry = (String, String, Vec<(String, Metric)>);

/// A namespace of named metrics with a Prometheus-style text exposition.
///
/// Components obtain metric handles with [`Registry::counter`],
/// [`Registry::gauge`] and [`Registry::histogram`]; repeated calls with
/// the same name return handles to the same underlying metric, so
/// independent layers converge on shared series. The process-wide
/// default lives at [`Registry::global`] — the one the broker, GoFlow
/// server, document store and assimilation engine all report into.
///
/// Series may carry **labels** ([`Registry::counter_labeled`] and
/// friends): `goflow_ingest_quarantined_total{reason="late"}` and
/// `…{reason="malformed"}` are distinct children of one metric name,
/// rendered under a single preamble — the Prometheus idiom that
/// replaces ad-hoc name suffixing (`…_late_total`). Value lookups by
/// bare name ([`Registry::counter_value`]) sum across children, so an
/// alert on the total keeps working when a reason label is added.
///
/// Names follow `<crate>_<subsystem>_<metric>` (letters, digits and
/// underscores; counters end in `_total`, histograms name their unit).
///
/// # Examples
///
/// ```
/// use mps_telemetry::Registry;
///
/// let registry = Registry::new();
/// registry.counter("broker_core_published_total", "Messages published").add(2);
/// let text = registry.render_text();
/// assert!(text.starts_with("# HELP broker_core_published_total Messages published\n"));
/// assert!(text.contains("broker_core_published_total 2\n"));
///
/// let late = registry.counter_labeled(
///     "goflow_ingest_quarantined_total",
///     &[("reason", "late")],
///     "Observations quarantined at ingest",
/// );
/// late.add(3);
/// assert!(registry
///     .render_text()
///     .contains("goflow_ingest_quarantined_total{reason=\"late\"} 3\n"));
/// assert_eq!(registry.counter_value("goflow_ingest_quarantined_total"), Some(3));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Self {
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-wide registry every pipeline layer reports into.
    pub fn global() -> &'static Registry {
        static GLOBAL: Registry = Registry::new();
        &GLOBAL
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Entry>> {
        // Metric updates never run user code under this lock, so a
        // poisoned registry is still structurally sound.
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn validate_name(name: &str) {
        let valid = !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        assert!(
            valid,
            "invalid metric name `{name}` (want [a-zA-Z_][a-zA-Z0-9_]*)"
        );
    }

    /// The canonical rendered form of a label set: `""` when empty,
    /// otherwise `{k="v",…}` with keys sorted and values escaped.
    fn label_suffix(labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let mut sorted: Vec<_> = labels.to_vec();
        sorted.sort_by_key(|(k, _)| *k);
        for window in sorted.windows(2) {
            assert_ne!(
                window[0].0, window[1].0,
                "duplicate label name `{}`",
                window[0].0
            );
        }
        let mut out = String::from("{");
        for (i, (key, value)) in sorted.iter().enumerate() {
            Self::validate_name(key);
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{key}=\"");
            for c in value.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
        out
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        Self::validate_name(name);
        let suffix = Self::label_suffix(labels);
        let mut entries = self.lock();
        let entry = entries.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            series: BTreeMap::new(),
        });
        if let Some(existing) = entry.series.get(&suffix) {
            return existing.clone();
        }
        let metric = make();
        // All children of one name must share a kind — a counter and a
        // gauge can't hide behind different label sets of `foo_total`.
        if let Some(sibling) = entry.series.values().next() {
            assert_eq!(
                sibling.kind(),
                metric.kind(),
                "metric `{name}` is a {}, not a {}",
                sibling.kind(),
                metric.kind()
            );
        }
        entry.series.insert(suffix, metric.clone());
        metric
    }

    /// Returns the counter registered under `name`, creating it if
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as a different
    /// metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_labeled(name, &[], help)
    }

    /// Returns the counter child of `name` with the given label set,
    /// creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if the name or a label name is invalid, a label name
    /// repeats, or `name` is already registered as a different kind.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.get_or_insert(name, labels, help, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as a different
    /// metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_labeled(name, &[], help)
    }

    /// Returns the gauge child of `name` with the given label set,
    /// creating it if absent.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter_labeled`].
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.get_or_insert(name, labels, help, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// the given bucket `bounds` if absent (an existing histogram keeps
    /// its original buckets; `bounds` is then ignored).
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid, already registered as a different
    /// metric kind, or `bounds` is invalid for a fresh histogram (see
    /// [`Histogram::new`]).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_labeled(name, &[], help, bounds)
    }

    /// Returns the histogram child of `name` with the given label set,
    /// creating it if absent.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter_labeled`], plus invalid `bounds` for a
    /// fresh histogram.
    pub fn histogram_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        bounds: &[f64],
    ) -> Histogram {
        match self.get_or_insert(name, labels, help, || {
            Metric::Histogram(Histogram::new(bounds.to_vec()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Names of all registered metrics, sorted.
    pub fn names(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// The current value of the counter named `name`, if one is
    /// registered — convenient for tests and health checks. A labeled
    /// counter reports the sum across its children, so totals survive
    /// the introduction of a label.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let entries = self.lock();
        let entry = entries.get(name)?;
        let mut total = 0u64;
        for metric in entry.series.values() {
            match metric {
                Metric::Counter(c) => total += c.get(),
                _ => return None,
            }
        }
        Some(total)
    }

    /// The current value of the counter child of `name` with exactly the
    /// given label set, if registered.
    pub fn counter_value_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let suffix = Self::label_suffix(labels);
        match self.lock().get(name)?.series.get(&suffix)? {
            Metric::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// The current value of the gauge named `name`, if one is
    /// registered. A labeled gauge reports the sum across its children
    /// (idle + in_use pool connections add up to the pool size), so
    /// health checks on the total survive the introduction of a label.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        let entries = self.lock();
        let entry = entries.get(name)?;
        let mut total = 0i64;
        for metric in entry.series.values() {
            match metric {
                Metric::Gauge(g) => total += g.get(),
                _ => return None,
            }
        }
        Some(total)
    }

    /// The current value of the gauge child of `name` with exactly the
    /// given label set, if registered.
    pub fn gauge_value_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let suffix = Self::label_suffix(labels);
        match self.lock().get(name)?.series.get(&suffix)? {
            Metric::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }

    /// The observation count of the histogram named `name`, if one is
    /// registered (summed across labeled children).
    pub fn histogram_count(&self, name: &str) -> Option<u64> {
        let entries = self.lock();
        let entry = entries.get(name)?;
        let mut total = 0u64;
        for metric in entry.series.values() {
            match metric {
                Metric::Histogram(h) => total += h.count(),
                _ => return None,
            }
        }
        Some(total)
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` preambles; histograms expose cumulative
    /// `_bucket{le="…"}` series plus `_sum` and `_count`). Labeled
    /// children render under one preamble, unlabeled first, then label
    /// sets in lexicographic order.
    pub fn render_text(&self) -> String {
        // Clone the handles out so rendering never holds the registry
        // lock while formatting.
        let entries: Vec<RenderedEntry> = self
            .lock()
            .iter()
            .map(|(name, entry)| {
                (
                    name.clone(),
                    entry.help.clone(),
                    entry
                        .series
                        .iter()
                        .map(|(suffix, metric)| (suffix.clone(), metric.clone()))
                        .collect(),
                )
            })
            .collect();
        let mut out = String::new();
        for (name, help, series) in entries {
            let kind = series.first().map_or("counter", |(_, m)| m.kind());
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (suffix, metric) in series {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{suffix} {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{suffix} {}", g.get());
                        let _ =
                            writeln!(out, "{name}_high_watermark{suffix} {}", g.high_watermark());
                    }
                    Metric::Histogram(h) => {
                        // Merge `le` into an existing label suffix:
                        // `{reason="late"}` + le → `{reason="late",le="…"}`.
                        let with_le = |le: &str| -> String {
                            if suffix.is_empty() {
                                format!("{{le=\"{le}\"}}")
                            } else {
                                format!("{},le=\"{le}\"}}", &suffix[..suffix.len() - 1])
                            }
                        };
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (bound, count) in h.bounds().iter().zip(&counts) {
                            cumulative += count;
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                with_le(&bound.to_string())
                            );
                        }
                        cumulative += counts.last().expect("overflow bucket");
                        let _ = writeln!(out, "{name}_bucket{} {cumulative}", with_le("+Inf"));
                        let _ = writeln!(out, "{name}_sum{suffix} {}", h.sum());
                        let _ = writeln!(out, "{name}_count{suffix} {}", h.count());
                    }
                }
            }
        }
        out
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("a_b_total", "first").inc();
        r.counter("a_b_total", "ignored on re-registration").add(2);
        assert_eq!(r.counter_value("a_b_total"), Some(3));
    }

    #[test]
    fn histogram_reregistration_keeps_buckets() {
        let r = Registry::new();
        let h1 = r.histogram("h_ms", "h", &[1.0, 2.0]);
        let h2 = r.histogram("h_ms", "h", &[99.0]);
        assert_eq!(h2.bounds(), &[1.0, 2.0]);
        h1.observe(1.5);
        assert_eq!(h2.count(), 1);
        assert_eq!(r.histogram_count("h_ms"), Some(1));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x_total", "x");
        r.gauge("x_total", "x");
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_across_label_sets_panics() {
        let r = Registry::new();
        r.counter("x_total", "x");
        r.gauge_labeled("x_total", &[("a", "b")], "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("bad-name", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_label_name_panics() {
        Registry::new().counter_labeled("ok_total", &[("bad-label", "v")], "x");
    }

    #[test]
    #[should_panic(expected = "duplicate label name")]
    fn duplicate_label_name_panics() {
        Registry::new().counter_labeled("ok_total", &[("a", "1"), ("a", "2")], "x");
    }

    #[test]
    fn gauge_values_sum_across_children() {
        let r = Registry::new();
        r.gauge_labeled("pool_connections", &[("state", "idle")], "p")
            .set(3);
        r.gauge_labeled("pool_connections", &[("state", "in_use")], "p")
            .set(2);
        assert_eq!(r.gauge_value("pool_connections"), Some(5));
        assert_eq!(
            r.gauge_value_labeled("pool_connections", &[("state", "idle")]),
            Some(3)
        );
        assert_eq!(
            r.gauge_value_labeled("pool_connections", &[("state", "busy")]),
            None
        );
        r.counter("c_total", "c");
        assert_eq!(r.gauge_value("c_total"), None);
        assert_eq!(r.gauge_value("missing"), None);
    }

    #[test]
    fn names_are_sorted() {
        let r = Registry::new();
        r.counter("zeta_total", "z");
        r.counter("alpha_total", "a");
        assert_eq!(r.names(), vec!["alpha_total", "zeta_total"]);
    }

    #[test]
    fn lookup_helpers_distinguish_kinds() {
        let r = Registry::new();
        r.counter("c_total", "c");
        r.histogram("h_s", "h", &[1.0]);
        assert_eq!(r.counter_value("c_total"), Some(0));
        assert_eq!(r.counter_value("h_s"), None);
        assert_eq!(r.histogram_count("h_s"), Some(0));
        assert_eq!(r.histogram_count("missing"), None);
    }

    #[test]
    fn labeled_children_are_distinct_and_sum_into_the_total() {
        let r = Registry::new();
        let late = r.counter_labeled("q_total", &[("reason", "late")], "q");
        let malformed = r.counter_labeled("q_total", &[("reason", "malformed")], "q");
        late.add(2);
        malformed.add(5);
        // Same label set converges on the same child.
        r.counter_labeled("q_total", &[("reason", "late")], "q")
            .inc();
        assert_eq!(r.counter_value("q_total"), Some(8));
        assert_eq!(
            r.counter_value_labeled("q_total", &[("reason", "late")]),
            Some(3)
        );
        assert_eq!(
            r.counter_value_labeled("q_total", &[("reason", "missing")]),
            None
        );
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        r.counter_labeled("m_total", &[("b", "2"), ("a", "1")], "m")
            .inc();
        assert_eq!(
            r.counter_value_labeled("m_total", &[("a", "1"), ("b", "2")]),
            Some(1)
        );
        assert!(r.render_text().contains("m_total{a=\"1\",b=\"2\"} 1\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_labeled("e_total", &[("k", "a\"b\\c\nd")], "e")
            .inc();
        assert!(r
            .render_text()
            .contains("e_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn golden_render_text() {
        let r = Registry::new();
        r.counter(
            "broker_core_published_total",
            "Messages accepted by publish",
        )
        .add(7);
        let g = r.gauge("docstore_store_collections", "Live collections");
        g.add(3);
        g.dec();
        let h = r.histogram(
            "goflow_ingest_delivery_delay_ms",
            "End-to-end delivery delay (ms)",
            &[0.25, 0.5, 1.0],
        );
        h.observe(0.25);
        h.observe(0.75);
        h.observe(9.0);
        let expected = "\
# HELP broker_core_published_total Messages accepted by publish
# TYPE broker_core_published_total counter
broker_core_published_total 7
# HELP docstore_store_collections Live collections
# TYPE docstore_store_collections gauge
docstore_store_collections 2
docstore_store_collections_high_watermark 3
# HELP goflow_ingest_delivery_delay_ms End-to-end delivery delay (ms)
# TYPE goflow_ingest_delivery_delay_ms histogram
goflow_ingest_delivery_delay_ms_bucket{le=\"0.25\"} 1
goflow_ingest_delivery_delay_ms_bucket{le=\"0.5\"} 1
goflow_ingest_delivery_delay_ms_bucket{le=\"1\"} 2
goflow_ingest_delivery_delay_ms_bucket{le=\"+Inf\"} 3
goflow_ingest_delivery_delay_ms_sum 10
goflow_ingest_delivery_delay_ms_count 3
";
        assert_eq!(r.render_text(), expected);
    }

    #[test]
    fn golden_render_text_labeled() {
        let r = Registry::new();
        r.counter_labeled(
            "ingest_quarantined_total",
            &[("reason", "late")],
            "Quarantined",
        )
        .add(2);
        r.counter_labeled(
            "ingest_quarantined_total",
            &[("reason", "malformed")],
            "Quarantined",
        )
        .add(1);
        let g = r.gauge_labeled("pool_size", &[("pool", "a")], "Pool size");
        g.add(4);
        let h = r.histogram_labeled("wait_ms", &[("queue", "gf")], "Wait", &[1.0]);
        h.observe(0.5);
        let expected = "\
# HELP ingest_quarantined_total Quarantined
# TYPE ingest_quarantined_total counter
ingest_quarantined_total{reason=\"late\"} 2
ingest_quarantined_total{reason=\"malformed\"} 1
# HELP pool_size Pool size
# TYPE pool_size gauge
pool_size{pool=\"a\"} 4
pool_size_high_watermark{pool=\"a\"} 4
# HELP wait_ms Wait
# TYPE wait_ms histogram
wait_ms_bucket{queue=\"gf\",le=\"1\"} 1
wait_ms_bucket{queue=\"gf\",le=\"+Inf\"} 1
wait_ms_sum{queue=\"gf\"} 0.5
wait_ms_count{queue=\"gf\"} 1
";
        assert_eq!(r.render_text(), expected);
    }

    #[test]
    fn unlabeled_series_renders_before_labeled_children() {
        let r = Registry::new();
        r.counter_labeled("mix_total", &[("reason", "late")], "Mixed")
            .inc();
        r.counter("mix_total", "Mixed").add(5);
        let text = r.render_text();
        let bare = text.find("mix_total 5").expect("bare series");
        let labeled = text.find("mix_total{reason=").expect("labeled series");
        assert!(bare < labeled);
        assert_eq!(r.counter_value("mix_total"), Some(6));
    }

    #[test]
    fn global_is_shared() {
        let name = "telemetry_registry_selftest_total";
        Registry::global().counter(name, "self test").inc();
        assert!(Registry::global().counter_value(name).unwrap_or(0) >= 1);
        assert!(Registry::global().render_text().contains(name));
    }
}
