//! The named-metric registry and its text exposition.

use crate::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

/// A registered metric of any kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    metric: Metric,
}

/// A namespace of named metrics with a Prometheus-style text exposition.
///
/// Components obtain metric handles with [`Registry::counter`],
/// [`Registry::gauge`] and [`Registry::histogram`]; repeated calls with
/// the same name return handles to the same underlying metric, so
/// independent layers converge on shared series. The process-wide
/// default lives at [`Registry::global`] — the one the broker, GoFlow
/// server, document store and assimilation engine all report into.
///
/// Names follow `<crate>_<subsystem>_<metric>` (letters, digits and
/// underscores; counters end in `_total`, histograms name their unit).
///
/// # Examples
///
/// ```
/// use mps_telemetry::Registry;
///
/// let registry = Registry::new();
/// registry.counter("broker_core_published_total", "Messages published").add(2);
/// let text = registry.render_text();
/// assert!(text.starts_with("# HELP broker_core_published_total Messages published\n"));
/// assert!(text.contains("broker_core_published_total 2\n"));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Self {
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-wide registry every pipeline layer reports into.
    pub fn global() -> &'static Registry {
        static GLOBAL: Registry = Registry::new();
        &GLOBAL
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Entry>> {
        // Metric updates never run user code under this lock, so a
        // poisoned registry is still structurally sound.
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn validate_name(name: &str) {
        let valid = !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        assert!(
            valid,
            "invalid metric name `{name}` (want [a-zA-Z_][a-zA-Z0-9_]*)"
        );
    }

    fn get_or_insert(&self, name: &str, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        Self::validate_name(name);
        let mut entries = self.lock();
        let entry = entries.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            metric: make(),
        });
        entry.metric.clone()
    }

    /// Returns the counter registered under `name`, creating it if
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as a different
    /// metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.get_or_insert(name, help, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as a different
    /// metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.get_or_insert(name, help, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// the given bucket `bounds` if absent (an existing histogram keeps
    /// its original buckets; `bounds` is then ignored).
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid, already registered as a different
    /// metric kind, or `bounds` is invalid for a fresh histogram (see
    /// [`Histogram::new`]).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        match self.get_or_insert(name, help, || {
            Metric::Histogram(Histogram::new(bounds.to_vec()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Names of all registered metrics, sorted.
    pub fn names(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// The current value of the counter named `name`, if one is
    /// registered — convenient for tests and health checks.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.lock().get(name).map(|e| e.metric.clone()) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// The observation count of the histogram named `name`, if one is
    /// registered.
    pub fn histogram_count(&self, name: &str) -> Option<u64> {
        match self.lock().get(name).map(|e| e.metric.clone()) {
            Some(Metric::Histogram(h)) => Some(h.count()),
            _ => None,
        }
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` preambles; histograms expose cumulative
    /// `_bucket{le="…"}` series plus `_sum` and `_count`).
    pub fn render_text(&self) -> String {
        // Clone the handles out so rendering never holds the registry
        // lock while formatting.
        let metrics: Vec<(String, String, Metric)> = self
            .lock()
            .iter()
            .map(|(name, entry)| (name.clone(), entry.help.clone(), entry.metric.clone()))
            .collect();
        let mut out = String::new();
        for (name, help, metric) in metrics {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                    let _ = writeln!(out, "{name}_high_watermark {}", g.high_watermark());
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds().iter().zip(&counts) {
                        cumulative += count;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    cumulative += counts.last().expect("overflow bucket");
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("a_b_total", "first").inc();
        r.counter("a_b_total", "ignored on re-registration").add(2);
        assert_eq!(r.counter_value("a_b_total"), Some(3));
    }

    #[test]
    fn histogram_reregistration_keeps_buckets() {
        let r = Registry::new();
        let h1 = r.histogram("h_ms", "h", &[1.0, 2.0]);
        let h2 = r.histogram("h_ms", "h", &[99.0]);
        assert_eq!(h2.bounds(), &[1.0, 2.0]);
        h1.observe(1.5);
        assert_eq!(h2.count(), 1);
        assert_eq!(r.histogram_count("h_ms"), Some(1));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x_total", "x");
        r.gauge("x_total", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("bad-name", "x");
    }

    #[test]
    fn names_are_sorted() {
        let r = Registry::new();
        r.counter("zeta_total", "z");
        r.counter("alpha_total", "a");
        assert_eq!(r.names(), vec!["alpha_total", "zeta_total"]);
    }

    #[test]
    fn lookup_helpers_distinguish_kinds() {
        let r = Registry::new();
        r.counter("c_total", "c");
        r.histogram("h_s", "h", &[1.0]);
        assert_eq!(r.counter_value("c_total"), Some(0));
        assert_eq!(r.counter_value("h_s"), None);
        assert_eq!(r.histogram_count("h_s"), Some(0));
        assert_eq!(r.histogram_count("missing"), None);
    }

    #[test]
    fn golden_render_text() {
        let r = Registry::new();
        r.counter(
            "broker_core_published_total",
            "Messages accepted by publish",
        )
        .add(7);
        let g = r.gauge("docstore_store_collections", "Live collections");
        g.add(3);
        g.dec();
        let h = r.histogram(
            "goflow_ingest_delivery_delay_ms",
            "End-to-end delivery delay (ms)",
            &[0.25, 0.5, 1.0],
        );
        h.observe(0.25);
        h.observe(0.75);
        h.observe(9.0);
        let expected = "\
# HELP broker_core_published_total Messages accepted by publish
# TYPE broker_core_published_total counter
broker_core_published_total 7
# HELP docstore_store_collections Live collections
# TYPE docstore_store_collections gauge
docstore_store_collections 2
docstore_store_collections_high_watermark 3
# HELP goflow_ingest_delivery_delay_ms End-to-end delivery delay (ms)
# TYPE goflow_ingest_delivery_delay_ms histogram
goflow_ingest_delivery_delay_ms_bucket{le=\"0.25\"} 1
goflow_ingest_delivery_delay_ms_bucket{le=\"0.5\"} 1
goflow_ingest_delivery_delay_ms_bucket{le=\"1\"} 2
goflow_ingest_delivery_delay_ms_bucket{le=\"+Inf\"} 3
goflow_ingest_delivery_delay_ms_sum 10
goflow_ingest_delivery_delay_ms_count 3
";
        assert_eq!(r.render_text(), expected);
    }

    #[test]
    fn global_is_shared() {
        let name = "telemetry_registry_selftest_total";
        Registry::global().counter(name, "self test").inc();
        assert!(Registry::global().counter_value(name).unwrap_or(0) >= 1);
        assert!(Registry::global().render_text().contains(name));
    }
}
