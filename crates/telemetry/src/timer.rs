//! RAII stage timing.

use crate::Histogram;
use std::time::Instant;

/// An RAII guard timing a pipeline stage into a [`Histogram`] of
/// seconds.
///
/// Start it at the top of a stage; when the guard drops (or
/// [`SpanTimer::stop`] is called explicitly) the elapsed wall-clock time
/// is recorded. Dropping on an early return or a panic still records the
/// span, so stage-duration histograms see every pass.
///
/// # Examples
///
/// ```
/// use mps_telemetry::{Histogram, SpanTimer};
///
/// let pass = Histogram::new(Histogram::exponential_buckets(1e-6, 10.0, 8));
/// {
///     let _timer = SpanTimer::start(&pass);
///     // ... the timed stage ...
/// }
/// let elapsed = SpanTimer::start(&pass).stop();
/// assert_eq!(pass.count(), 2);
/// assert!(elapsed >= 0.0);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Option<Histogram>,
    started: Instant,
}

impl SpanTimer {
    /// Starts timing into `histogram` (units: seconds).
    pub fn start(histogram: &Histogram) -> Self {
        #[allow(clippy::disallowed_methods)]
        // mps-lint: allow(L001) -- SpanTimer measures real host latency by contract; sim-path stages time themselves with SimSpanTimer instead
        let started = Instant::now();
        Self {
            histogram: Some(histogram.clone()),
            started,
        }
    }

    /// Stops the timer early, recording and returning the elapsed
    /// seconds.
    pub fn stop(mut self) -> f64 {
        self.record()
    }

    fn record(&mut self) -> f64 {
        let elapsed = self.started.elapsed().as_secs_f64();
        if let Some(histogram) = self.histogram.take() {
            histogram.observe(elapsed);
        }
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.record();
    }
}

/// A sim-clock counterpart to [`SpanTimer`] for deterministic
/// simulations.
///
/// [`SpanTimer`] reads the wall clock, which is the right tool for
/// *compute* stages (a BLUE pass really does take host time) but makes
/// simulated-pipeline timings irreproducible: two replays of the same
/// seeded scenario should report identical latencies. `SimSpanTimer`
/// takes explicit sim-clock timestamps instead and records the elapsed
/// **milliseconds** (the workspace convention for sim-time series, e.g.
/// `goflow_ingest_delivery_delay_ms`).
///
/// Because the stop time must be supplied, there is no `Drop` recording:
/// an unstopped timer records nothing.
///
/// # Examples
///
/// ```
/// use mps_telemetry::{Histogram, SimSpanTimer};
///
/// let waits = Histogram::new(Histogram::exponential_buckets(10.0, 4.0, 8));
/// let timer = SimSpanTimer::start_at(&waits, 60_000);
/// let elapsed_ms = timer.stop_at(95_000);
/// assert_eq!(elapsed_ms, 35_000.0);
/// assert_eq!(waits.count(), 1);
/// ```
#[derive(Debug)]
pub struct SimSpanTimer {
    histogram: Histogram,
    started_ms: i64,
}

impl SimSpanTimer {
    /// Starts timing into `histogram` (units: milliseconds) at sim time
    /// `now_ms`.
    pub fn start_at(histogram: &Histogram, now_ms: i64) -> Self {
        Self {
            histogram: histogram.clone(),
            started_ms: now_ms,
        }
    }

    /// Stops at sim time `now_ms`, recording and returning the elapsed
    /// milliseconds (clamped at zero — a span can't end before it
    /// started).
    pub fn stop_at(self, now_ms: i64) -> f64 {
        let elapsed = (now_ms - self.started_ms).max(0) as f64;
        self.histogram.observe(elapsed);
        elapsed
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn records_on_drop() {
        let h = Histogram::new(vec![1.0]);
        {
            let _t = SpanTimer::start(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_records_exactly_once() {
        let h = Histogram::new(vec![1.0]);
        let elapsed = SpanTimer::start(&h).stop();
        assert!(elapsed >= 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn records_even_on_panic() {
        let h = Histogram::new(vec![1.0]);
        let h2 = h.clone();
        let result = std::panic::catch_unwind(move || {
            let _t = SpanTimer::start(&h2);
            panic!("stage failed");
        });
        assert!(result.is_err());
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn sim_timer_is_deterministic() {
        let h = Histogram::new(vec![1_000.0, 100_000.0]);
        for _ in 0..3 {
            let t = SimSpanTimer::start_at(&h, 60_000);
            assert_eq!(t.stop_at(95_000), 35_000.0);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 105_000.0);
    }

    #[test]
    fn sim_timer_clamps_time_travel() {
        let h = Histogram::new(vec![1.0]);
        assert_eq!(SimSpanTimer::start_at(&h, 100).stop_at(50), 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn elapsed_is_plausible() {
        let h = Histogram::new(vec![60.0]);
        let t = SpanTimer::start(&h);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let elapsed = t.stop();
        assert!(elapsed >= 0.005, "elapsed {elapsed}");
        assert!(h.sum() >= 0.005);
    }
}
