//! RAII stage timing.

use crate::Histogram;
use std::time::Instant;

/// An RAII guard timing a pipeline stage into a [`Histogram`] of
/// seconds.
///
/// Start it at the top of a stage; when the guard drops (or
/// [`SpanTimer::stop`] is called explicitly) the elapsed wall-clock time
/// is recorded. Dropping on an early return or a panic still records the
/// span, so stage-duration histograms see every pass.
///
/// # Examples
///
/// ```
/// use mps_telemetry::{Histogram, SpanTimer};
///
/// let pass = Histogram::new(Histogram::exponential_buckets(1e-6, 10.0, 8));
/// {
///     let _timer = SpanTimer::start(&pass);
///     // ... the timed stage ...
/// }
/// let elapsed = SpanTimer::start(&pass).stop();
/// assert_eq!(pass.count(), 2);
/// assert!(elapsed >= 0.0);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Option<Histogram>,
    started: Instant,
}

impl SpanTimer {
    /// Starts timing into `histogram` (units: seconds).
    pub fn start(histogram: &Histogram) -> Self {
        Self {
            histogram: Some(histogram.clone()),
            started: Instant::now(),
        }
    }

    /// Stops the timer early, recording and returning the elapsed
    /// seconds.
    pub fn stop(mut self) -> f64 {
        self.record()
    }

    fn record(&mut self) -> f64 {
        let elapsed = self.started.elapsed().as_secs_f64();
        if let Some(histogram) = self.histogram.take() {
            histogram.observe(elapsed);
        }
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_on_drop() {
        let h = Histogram::new(vec![1.0]);
        {
            let _t = SpanTimer::start(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_records_exactly_once() {
        let h = Histogram::new(vec![1.0]);
        let elapsed = SpanTimer::start(&h).stop();
        assert!(elapsed >= 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn records_even_on_panic() {
        let h = Histogram::new(vec![1.0]);
        let h2 = h.clone();
        let result = std::panic::catch_unwind(move || {
            let _t = SpanTimer::start(&h2);
            panic!("stage failed");
        });
        assert!(result.is_err());
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn elapsed_is_plausible() {
        let h = Histogram::new(vec![60.0]);
        let t = SpanTimer::start(&h);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let elapsed = t.stop();
        assert!(elapsed >= 0.005, "elapsed {elapsed}");
        assert!(h.sum() >= 0.005);
    }
}
