//! # SoundCity — umbrella crate
//!
//! This crate re-exports the member crates of the SoundCity / GoFlow
//! workspace, a reproduction of *"Dos and Don'ts in Mobile Phone Sensing
//! Middleware: Learning from a Large-Scale Experiment"* (Middleware 2016).
//!
//! The individual crates are:
//!
//! * [`types`] — shared domain types (observations, locations, models).
//! * [`simcore`] — deterministic discrete-event simulation kernel.
//! * [`broker`] — AMQP-style message broker (RabbitMQ substitute).
//! * [`faults`] — seeded fault injection (drops, delays, duplicates,
//!   black-holes, device churn) and the resilient-link boundary.
//! * [`docstore`] — document store (MongoDB substitute).
//! * [`goflow`] — the GoFlow crowd-sensing middleware server.
//! * [`mobile`] — device/crowd simulator and GoFlow mobile client.
//! * [`net`] — binary wire protocol, socket servers and pooled clients
//!   that put [`broker`] and [`docstore`] behind a real network boundary.
//! * [`assim`] — urban noise model, BLUE data assimilation, calibration.
//! * [`analytics`] — the empirical-analysis toolkit (figures/tables).
//! * [`core`] — experiment orchestration (deployment replay, lab harnesses).
//! * [`telemetry`] — workspace-wide counters, latency histograms and the
//!   shared metric registry (see the README's Observability section).
//! * [`wal`] — append-only write-ahead log with crash recovery, behind
//!   the durable modes of [`docstore`] and [`broker`].
//!
//! Start with the runnable examples: `quickstart` (a full deployment
//! replay), `middleware_tour` (the GoFlow API), `noise_map` (simulation +
//! assimilation), `energy_tradeoff` (the battery lab) and
//! `citizen_journey` (journeys, exposure, crowd-calibration).
//!
//! # Examples
//!
//! ```
//! use soundcity::prelude::*;
//!
//! let config = ExperimentConfig::tiny();
//! let mut deployment = Deployment::new(config);
//! let dataset = deployment.run();
//! assert!(!dataset.observations.is_empty());
//! let table = ModelTable::build(&dataset.observations);
//! assert_eq!(table.rows.len(), 20);
//! ```

pub use mps_analytics as analytics;
pub use mps_assim as assim;
pub use mps_broker as broker;
pub use mps_core as core;
pub use mps_docstore as docstore;
pub use mps_faults as faults;
pub use mps_goflow as goflow;
pub use mps_mobile as mobile;
pub use mps_net as net;
pub use mps_simcore as simcore;
pub use mps_telemetry as telemetry;
pub use mps_types as types;
pub use mps_wal as wal;

/// The most commonly used items across the workspace, importable in one
/// line (`use soundcity::prelude::*`).
pub mod prelude {
    pub use mps_analytics::{
        AccuracyReport, ActivityReport, DelayReport, DiurnalReport, ExposureReport, GrowthReport,
        ModelTable, ProviderByModeReport, ProviderFilter, SplReport,
    };
    pub use mps_assim::{Blue, CityModel, Grid, NoiseSimulator, PointObservation};
    pub use mps_broker::{Broker, ExchangeType};
    pub use mps_core::{BatteryLab, CalibrationStudy, Dataset, Deployment, ExperimentConfig};
    pub use mps_docstore::{Filter, Store};
    pub use mps_faults::{FaultPlan, FaultSpec, FaultyLink};
    pub use mps_goflow::{GoFlowServer, ObservationQuery, Role};
    pub use mps_mobile::{Device, DeviceConfig, GoFlowClient, Journey};
    pub use mps_simcore::SimRng;
    pub use mps_types::{
        Activity, AppId, AppVersion, DeviceModel, GeoBounds, GeoPoint, LocationProvider,
        Observation, SensingMode, SimDuration, SimTime, SoundLevel,
    };
}
