//! A tour of the GoFlow middleware API (Figures 2–3 of the paper).
//!
//! Walks the full server surface without the crowd simulator: register an
//! app and users, open sessions, publish observations through the
//! Figure 3 exchange topology, subscribe to feedback at a location,
//! ingest, query with filters, run a background job, and export open
//! data.
//!
//! ```sh
//! cargo run --release --example middleware_tour
//! ```

// Examples exist to print.
#![allow(clippy::print_stdout)]

use serde_json::json;
use soundcity::broker::Broker;
use soundcity::docstore::Store;
use soundcity::goflow::{GoFlowServer, ObservationQuery, Packaging, PrivacyPolicy, Role};
use soundcity::types::{
    AppId, DeviceModel, GeoPoint, LocationFix, LocationProvider, Observation, SimTime, SoundLevel,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A server with a CNIL-style policy: exact coordinates stay private
    // when data is shared outside the owning app.
    let broker = Arc::new(Broker::new());
    let policy = PrivacyPolicy::new(0xB0B0)
        .with_private_path("lat")
        .with_private_path("lon");
    let server = GoFlowServer::with_policy(Arc::clone(&broker), Store::new(), policy);

    // 1. Register the SoundCity app: this creates the Figure 3 topology.
    let app = AppId::soundcity();
    server.register_app(&app)?;
    println!("registered app {app}; broker now hosts:");
    for ex in broker.exchanges() {
        println!("  exchange {:<22} ({} bindings)", ex.name, ex.bindings);
    }

    // 2. Register users with roles and open sessions.
    let alice = server.register_user(&app, 1.into(), Role::Contributor)?;
    let bob = server.register_user(&app, 2.into(), Role::Contributor)?;
    let manager = server.register_user(&app, 3.into(), Role::Manager)?;
    let alice_session = server.login(&alice)?;
    let bob_session = server.login(&bob)?;
    println!(
        "\nalice's session: exchange {}, queue {}",
        alice_session.exchange(),
        alice_session.queue()
    );

    // 3. Bob subscribes to feedback around his neighbourhood.
    server.subscribe(&bob_session, "Feedback", "FR75013")?;

    // 4. Alice publishes an observation and a feedback message.
    let obs = Observation::builder()
        .device(1.into())
        .user(1.into())
        .model(DeviceModel::SonyD5803)
        .captured_at(SimTime::from_hms(0, 18, 30, 0))
        .spl(SoundLevel::new(71.5))
        .location(LocationFix::new(
            GeoPoint::new(48.83, 2.36),
            14.0,
            LocationProvider::Gps,
        ))
        .build();
    broker.publish(
        alice_session.exchange(),
        &alice_session.observation_key("noise", "FR75013"),
        serde_json::to_vec(&obs)?,
    )?;
    broker.publish(
        alice_session.exchange(),
        &alice_session.observation_key("Feedback", "FR75013"),
        &br#"{"text": "street concert, very loud"}"#[..],
    )?;

    // 5. Bob receives the feedback through his subscription queue.
    let deliveries = broker.consume(bob_session.queue(), 10)?;
    println!("\nbob's notifications: {} message(s)", deliveries.len());
    for d in &deliveries {
        println!(
            "  [{}] {}",
            d.routing_key(),
            String::from_utf8_lossy(d.payload())
        );
        broker.ack(bob_session.queue(), d.tag)?;
    }

    // 6. The server ingests pending contributions (stamping arrival).
    let outcome = server.ingest_pending(&app, SimTime::from_hms(0, 18, 30, 9), 100)?;
    println!(
        "\ningest: stored {} observation(s), {} malformed (the feedback JSON is not an observation)",
        outcome.stored, outcome.malformed
    );

    // 7. Filtered retrieval: accurate GPS fixes only.
    let query = ObservationQuery::new()
        .provider(LocationProvider::Gps)
        .max_accuracy_m(20.0);
    let hits = server.query(&app, &query)?;
    println!("query [gps, ≤20 m]: {} hit(s)", hits.len());
    println!("  stored delay: {} ms", hits[0]["delay_ms"]);

    // 8. A manager submits a background job over the stored data.
    let job = server.submit_job(&manager, "mean-spl", |collection| {
        let docs = collection.all();
        let spls: Vec<f64> = docs.iter().filter_map(|d| d["spl"].as_f64()).collect();
        if spls.is_empty() {
            return Err("no data".into());
        }
        Ok(json!({"mean_spl": spls.iter().sum::<f64>() / spls.len() as f64}))
    })?;
    server.run_jobs(&app)?;
    println!("\nbackground job {job:?}: {:?}", server.job_status(job)?);

    // 9. Open-data export: private paths are redacted for other apps.
    let own = server.export(&app, &ObservationQuery::new(), Packaging::JsonLines)?;
    let shared = server.query_shared(&app, &ObservationQuery::new())?;
    println!("\nown view has coordinates : {}", own.contains("\"lat\""));
    println!(
        "shared view has coordinates: {}",
        shared[0].get("lat").is_some()
    );

    println!("\nbroker counters: {:?}", broker.metrics());
    Ok(())
}
