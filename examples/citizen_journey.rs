//! Citizen science with journeys: participatory sensing along a path,
//! sharing through the middleware, quantified-self exposure, and
//! crowd-calibration — the paper's Journey mode (§4.2) plus its
//! future-work directions (§8) working together.
//!
//! ```sh
//! cargo run --release --example citizen_journey
//! ```

// Examples exist to print.
#![allow(clippy::print_stdout)]

use soundcity::analytics::ExposureReport;
use soundcity::assim::{CrowdCalibrator, CrowdObservation, Grid};
use soundcity::broker::Broker;
use soundcity::docstore::Store;
use soundcity::goflow::{GoFlowServer, ObservationQuery, Role};
use soundcity::mobile::{Device, DeviceConfig, Journey, JourneyVisibility};
use soundcity::simcore::SimRng;
use soundcity::types::{AppId, DeviceModel, GeoBounds, GeoPoint, SimDuration, SimTime};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rng = SimRng::new(2024);
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app)?;

    // A small community of walkers with different phone models.
    let models = [
        DeviceModel::SonyD5803,
        DeviceModel::LgeNexus5,
        DeviceModel::OneplusA0001,
        DeviceModel::SamsungGtI9505,
    ];
    println!("=== Journey mode: four citizens map their evening walk ===\n");
    let mut crowd_observations = Vec::new();
    let mut all_observations = Vec::new();

    for (i, model) in models.iter().enumerate() {
        let id = i as u64 + 1;
        let mut device = Device::new(DeviceConfig::new(id, *model), &rng);
        let token = server.register_user(&app, id.into(), Role::Contributor)?;
        let session = server.login(&token)?;

        // Plan a walk: a few hundred metres per leg, one measurement per
        // minute — the user-chosen Journey frequency.
        let mut walk_rng = rng.split("walk", id);
        let journey = Journey::random_walk(&device, 10, &mut walk_rng)
            .with_visibility(JourneyVisibility::Public);
        let start = SimTime::from_hms(0, 18, 0, 0) + SimDuration::from_mins(3 * i as i64);
        let trace = journey.run(&mut device, start, 80);
        println!(
            "{model}: walked {:.0} m, {} measurements, {:.0}% localized",
            trace.path_length_m,
            trace.observations.len(),
            trace.localized_fraction() * 100.0
        );

        // Ship the trace through the middleware as one shared batch.
        let payload = serde_json::to_vec(&trace.observations)?;
        broker.publish(
            session.exchange(),
            &session.observation_key("Journey", "FR75013"),
            payload,
        )?;

        for obs in &trace.observations {
            if let Some(fix) = &obs.location {
                if !GeoBounds::paris().contains(fix.point) {
                    continue; // walks may stray outside the analysis grid
                }
                crowd_observations.push(CrowdObservation {
                    device: obs.device,
                    at: fix.point,
                    measured_db: obs.spl.db(),
                });
            }
        }
        all_observations.extend(trace.observations);
    }

    let stored = server
        .ingest_pending(&app, SimTime::from_hms(0, 21, 0, 0), 100)?
        .stored;
    println!("\nGoFlow stored {stored} journey observations");
    println!(
        "server-side count check: {}",
        server.query(&app, &ObservationQuery::new())?.len()
    );

    // Quantified self: the first walker's exposure screen.
    println!("\n=== Quantified self (Sense2Health screen) ===\n");
    let report = ExposureReport::build(&all_observations, 1.into());
    print!("{report}");

    // Crowd calibration: estimate per-device microphone biases from the
    // overlapping walks, with no reference sound-level meter.
    println!("\n=== Crowd-calibration (paper §8 future work) ===\n");
    let background = Grid::constant(GeoBounds::paris(), 20, 20, 50.0);
    match CrowdCalibrator::default().calibrate(&background, &crowd_observations) {
        Ok(result) => {
            println!("estimated per-device biases (relative, zero-mean):");
            for (device, bias) in &result.device_bias_db {
                println!("  {device}: {bias:+.2} dB");
            }
            println!(
                "consensus residual RMS per iteration: {:?}",
                result
                    .residual_rms_db
                    .iter()
                    .map(|r| format!("{r:.2}"))
                    .collect::<Vec<_>>()
            );
            let near = result.consensus.sample(GeoPoint::PARIS).unwrap_or(f64::NAN);
            println!("consensus level at city hall: {near:.1} dB(A)");
            println!(
                "(ambient variance dominates a single evening's walks; the\n crowd-calibration tests recover ±0.8 dB biases on denser data)"
            );
        }
        Err(err) => println!("calibration failed: {err}"),
    }
    Ok(())
}
