//! Quickstart: replay a small SoundCity deployment end-to-end and print
//! the headline numbers of the paper.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Examples exist to print.
#![allow(clippy::print_stdout)]

use soundcity::analytics::{ActivityReport, ModelTable, ProviderByModeReport};
use soundcity::core::{Deployment, ExperimentConfig};
use soundcity::types::{Activity, LocationProvider, SensingMode};

fn main() {
    // A light configuration: the full top-20 model mix, two deployment
    // months, crowd scaled down to ~20 devices.
    let config = ExperimentConfig::quick();
    println!(
        "Replaying {} devices over {} days (seed {})...",
        config.total_devices(),
        config.days(),
        config.seed
    );

    let mut deployment = Deployment::new(config);
    let dataset = deployment.run();

    println!();
    println!("observations captured on phones : {}", dataset.captured);
    println!("observations stored by GoFlow   : {}", dataset.stored());
    println!("still pending in client buffers : {}", dataset.undelivered);
    println!(
        "localized fraction              : {:.1}% (paper: ~40%)",
        dataset.localized_fraction() * 100.0
    );

    let providers = ProviderByModeReport::build(&dataset.observations);
    println!(
        "opportunistic provider mix      : gps {:.0}% / network {:.0}% / fused {:.0}% (paper: 7/86/7)",
        providers.share(SensingMode::Opportunistic, LocationProvider::Gps) * 100.0,
        providers.share(SensingMode::Opportunistic, LocationProvider::Network) * 100.0,
        providers.share(SensingMode::Opportunistic, LocationProvider::Fused) * 100.0,
    );

    let activity = ActivityReport::build(&dataset.observations);
    println!(
        "still / moving / unqualified    : {:.0}% / {:.0}% / {:.0}% (paper: 70 / <10 / 20)",
        activity.share(Activity::Still) * 100.0,
        activity.moving_share() * 100.0,
        activity.unqualified_share() * 100.0,
    );

    println!();
    println!("Top-20 model table (Figure 9 shape):");
    println!("{}", ModelTable::build(&dataset.observations));
}
