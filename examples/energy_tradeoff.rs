//! The energy-delay tradeoff (Figures 16–17 and the buffering ablation).
//!
//! Runs the paper's battery-depletion lab, then sweeps the client's
//! buffering factor to show the continuous tradeoff the paper's v1.3
//! design point (N = 10) sits on.
//!
//! ```sh
//! cargo run --release --example energy_tradeoff
//! ```

// Examples exist to print.
#![allow(clippy::print_stdout)]

use soundcity::core::{BatteryLab, BatteryScenario};
use soundcity::mobile::{BatteryModel, BatteryParams, RadioKind};
use soundcity::types::SimDuration;

/// Energy spent (in joules) and mean added delay (in minutes) of one
/// 7-hour sensing day with 1-minute measurements and buffering factor
/// `n`.
fn sweep_point(n: usize) -> (f64, f64) {
    let params = BatteryParams::default();
    let mut battery = BatteryModel::new(params, 1.0);
    let start = battery.soc();
    let minutes = 7 * 60;
    let mut pending = 0usize;
    for _ in 0..minutes {
        battery.drain_idle(SimDuration::from_mins(1));
        battery.drain_measurement(true);
        pending += 1;
        if pending >= n {
            battery.drain_transfer(RadioKind::Wifi, pending);
            pending = 0;
        }
    }
    let joules = (start - battery.soc()) * params.capacity_j;
    // A measurement waits on average (n-1)/2 cycles before its batch
    // ships.
    let mean_delay_min = (n as f64 - 1.0) / 2.0;
    (joules, mean_delay_min)
}

fn main() {
    println!("=== Figure 16: battery depletion per scenario ===\n");
    let report = BatteryLab::new().run();
    print!("{report}");

    println!("\nHourly state-of-charge traces (%):");
    for (scenario, _, trace) in &report.rows {
        let cells: Vec<String> = trace.iter().map(|v| format!("{v:5.1}")).collect();
        println!("  {:<20} {}", scenario.label(), cells.join(" "));
    }

    let wifi = report.depletion(BatteryScenario::UnbufferedWifi);
    let threeg = report.depletion(BatteryScenario::Unbuffered3g);
    println!(
        "\nUnbuffered Wi-Fi runs at {:.2}x the no-app baseline; 3G adds another {:.0}%.",
        report.ratio_to_baseline(BatteryScenario::UnbufferedWifi),
        (threeg / wifi - 1.0) * 100.0
    );

    println!("\n=== Buffering-factor ablation (energy vs delay) ===\n");
    println!("{:>6} {:>12} {:>16}", "N", "energy (J)", "mean delay (min)");
    for n in [1usize, 2, 5, 10, 20, 50] {
        let (joules, delay) = sweep_point(n);
        let marker = if n == 10 { "  <- paper's v1.3" } else { "" };
        println!("{n:>6} {joules:>12.0} {delay:>16.1}{marker}");
    }
    println!(
        "\nBuffering amortises the fixed radio wake cost; past N≈10 the energy\n\
         savings flatten while the delay keeps growing — the paper's design point."
    );
}
