//! Urban noise mapping and data assimilation (the Figure 4/5 workflows).
//!
//! Builds a synthetic city, simulates its noise map, generates noise
//! complaints, then corrects an imperfect background map with calibrated
//! crowd observations via BLUE assimilation — printing ASCII maps along
//! the way.
//!
//! ```sh
//! cargo run --release --example noise_map
//! ```

// Examples exist to print.
#![allow(clippy::print_stdout)]

use soundcity::assim::{Blue, CityModel, ComplaintProcess, Grid, NoiseSimulator, PointObservation};
use soundcity::core::{CalibrationStrategy, CalibrationStudy};
use soundcity::simcore::SimRng;
use soundcity::types::GeoBounds;

/// Renders a field as ASCII art (quiet `.` to loud `#`).
fn render(map: &Grid) -> String {
    let min = map.values().iter().cloned().fold(f64::INFINITY, f64::min);
    let max = map
        .values()
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '%', '#'];
    let mut out = String::new();
    for iy in (0..map.ny()).rev() {
        for ix in 0..map.nx() {
            let v = map.at(ix, iy);
            let t = if max > min {
                (v - min) / (max - min)
            } else {
                0.0
            };
            let idx = ((t * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1);
            out.push(ramp[idx]);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let mut rng = SimRng::new(42);
    let bounds = GeoBounds::paris();

    // 1. A synthetic city and its simulated noise map.
    let city = CityModel::synthetic(bounds, 5, 50, &mut rng);
    println!(
        "Synthetic city: {} road segments, {} venues",
        city.roads().len(),
        city.venues().len()
    );
    let simulator = NoiseSimulator::new(city);
    let day_map = simulator.simulate(40, 20);
    println!(
        "\nSimulated noise map (day, {:.1}–{:.1} dB(A)):",
        day_map
            .values()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min),
        day_map
            .values()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    );
    print!("{}", render(&day_map));

    let night_map = simulator.simulate_at_hour(40, 20, 3);
    println!(
        "At 03:00 the city-mean level drops from {:.1} to {:.1} dB(A).",
        day_map.mean(),
        night_map.mean()
    );

    // 2. Figure 4: complaints correlate with noise.
    let process = ComplaintProcess::new(52.0, 0.5);
    let complaints = process.sample(&day_map, &mut rng);
    let r = ComplaintProcess::correlation(&day_map, &complaints).unwrap_or(0.0);
    println!(
        "\nFigure 4 workflow: {} complaints sampled, noise/complaint correlation r = {:.2}",
        complaints.len(),
        r
    );

    // 3. Figure 5 workflow: BLUE assimilation of point observations into
    //    a flat (wrong) background.
    let background = Grid::constant(bounds, 40, 20, day_map.mean());
    let blue = Blue::new(4.0, 1_200.0);
    let observations: Vec<PointObservation> = (0..60)
        .map(|_| {
            let at = bounds.lerp(rng.uniform_in(0.05, 0.95), rng.uniform_in(0.05, 0.95));
            PointObservation::new(at, day_map.sample(at).expect("inside"), 2.0)
        })
        .collect();
    let analysis = blue.analyse(&background, &observations).expect("analysis");
    println!(
        "\nBLUE assimilation of {} mobile observations:\n  background RMSE vs truth: {:.2} dB\n  analysis   RMSE vs truth: {:.2} dB",
        observations.len(),
        background.rmse(&day_map),
        analysis.rmse(&day_map)
    );

    // 4. The calibration-granularity ablation (Section 5.2 claim).
    println!("\nCalibration-granularity ablation:");
    let study = CalibrationStudy::new(42);
    for strategy in CalibrationStrategy::ALL {
        println!("  {:<20} {}", strategy.label(), study.run(strategy));
    }
}
