//! From crowd-sensed observations to corrected noise maps: the
//! data-assimilation pipeline of Figure 5, fed by a real deployment
//! replay.

use soundcity::assim::{
    Blue, CalibrationDatabase, CityModel, Grid, NoiseSimulator, PointObservation,
};
use soundcity::core::{CalibrationStudy, Deployment, ExperimentConfig};
use soundcity::simcore::SimRng;
use soundcity::types::{GeoBounds, SoundLevel};

/// Deployment observations (localized, accurate ones) can be assimilated
/// directly: the full crowd-sensing → assimilation chain holds together.
#[test]
fn deployment_observations_feed_assimilation() {
    let dataset = Deployment::new(ExperimentConfig::tiny()).run();
    let bounds = GeoBounds::paris();

    // Select accurately-localized observations as assimilation input
    // ("when location matters, about 40 % of the collected observations
    // remain relevant").
    let point_obs: Vec<PointObservation> = dataset
        .observations
        .iter()
        .filter_map(|o| {
            let fix = o.location.as_ref()?;
            if fix.accuracy_m > 50.0 || !bounds.contains(fix.point) {
                return None;
            }
            Some(PointObservation::new(fix.point, o.spl.db(), 6.0))
        })
        .take(200)
        .collect();
    assert!(
        point_obs.len() >= 50,
        "usable observations: {}",
        point_obs.len()
    );

    let background = Grid::constant(bounds, 20, 20, 45.0);
    let blue = Blue::new(4.0, 1_000.0);
    let analysis = blue
        .analyse(&background, &point_obs)
        .expect("analysis runs");

    // The analysis responded to the data: innovation RMS shrinks.
    let (_, rms_before) = Blue::innovation_stats(&background, &point_obs);
    let (_, rms_after) = Blue::innovation_stats(&analysis, &point_obs);
    assert!(
        rms_after < rms_before,
        "innovation RMS {rms_before} -> {rms_after}"
    );
}

/// The calibration ablation: per-model calibration beats none and is
/// close to the per-device oracle — the paper's Section 5.2 conclusion.
#[test]
fn calibration_granularity_ablation() {
    let study = CalibrationStudy::new(23);
    let rows = study.run_all();
    let none = rows["uncalibrated"];
    let per_model = rows["per-model"];
    let oracle = rows["per-device (oracle)"];
    assert!(per_model.rmse_analysis <= none.rmse_analysis + 1e-9);
    assert!(per_model.rmse_analysis <= oracle.rmse_analysis + 0.5);
    // All strategies improve on the raw background.
    for outcome in [none, per_model, oracle] {
        assert!(outcome.rmse_analysis < outcome.rmse_background);
    }
}

/// Denser crowds correct the map better — the "number of contributed
/// measures needs to be high enough" takeaway, measured.
#[test]
fn more_observations_help() {
    let bounds = GeoBounds::paris();
    let mut rng = SimRng::new(31);
    let city = CityModel::synthetic(bounds, 5, 40, &mut rng);
    let truth = NoiseSimulator::new(city).simulate(20, 20);
    let background = Grid::constant(bounds, 20, 20, truth.mean());
    let blue = Blue::new(4.0, 1_200.0);

    let mut rmse_at = Vec::new();
    for n in [5usize, 40, 160] {
        let obs: Vec<PointObservation> = (0..n)
            .map(|_| {
                let at = bounds.lerp(rng.uniform_in(0.05, 0.95), rng.uniform_in(0.05, 0.95));
                PointObservation::new(at, truth.sample(at).unwrap(), 2.0)
            })
            .collect();
        let analysis = blue.analyse(&background, &obs).unwrap();
        rmse_at.push(analysis.rmse(&truth));
    }
    assert!(
        rmse_at[2] < rmse_at[0],
        "160 obs ({}) must beat 5 obs ({})",
        rmse_at[2],
        rmse_at[0]
    );
}

/// Calibration-party maths: recorded phone-vs-reference pairs recover a
/// known injected bias through the public API.
#[test]
fn calibration_database_recovers_injected_bias() {
    use soundcity::types::DeviceModel;
    let mut db = CalibrationDatabase::new();
    let mut rng = SimRng::new(37);
    let injected = -3.7;
    for _ in 0..200 {
        let reference = rng.uniform_in(40.0, 80.0);
        let measured = reference + injected + rng.normal(0.0, 1.5);
        db.record(
            DeviceModel::HtcOneM8,
            SoundLevel::new(reference),
            SoundLevel::new(measured),
        );
    }
    let cal = db.calibration(DeviceModel::HtcOneM8).unwrap();
    assert!(
        (cal.bias_db - injected).abs() < 0.3,
        "estimated {}",
        cal.bias_db
    );
    let corrected = db.correct(DeviceModel::HtcOneM8, SoundLevel::new(50.0));
    assert!((corrected.db() - (50.0 - injected)).abs() < 0.3);
    assert!(db.observation_sigma(DeviceModel::HtcOneM8) < 2.5);
}
