//! End-to-end pipeline across a real network boundary.
//!
//! The whole workspace is deliberately in-process; `mps-net` supplies the
//! socket. These tests prove the boundary is *transparent* and *honest*:
//!
//! 1. **Transparency** — the same observation set pushed through the
//!    embedded pipeline (broker and store in-process) and through the
//!    remote pipeline (broker and store behind TCP servers, GoFlow
//!    talking to them via `RemoteBroker`/`RemoteStore`) yields identical
//!    stored documents, byte for byte once the storage-assigned `_id` is
//!    stripped.
//! 2. **Honesty under faults** — with an `mps-faults` plan applied at an
//!    actual socket (the `SocketFaultProxy` tears TCP frames mid-flight),
//!    every fault is a *visible* failure: the mobile client's retry path
//!    absorbs them, every observation trace still reaches exactly one
//!    primary terminal outcome, and nothing is lost silently.

use serde_json::Value;
use soundcity::broker::{Broker, BrokerTransport};
use soundcity::docstore::{DocstoreTransport, Store};
use soundcity::faults::{FaultPlan, FaultSpec};
use soundcity::goflow::{GoFlowServer, ObservationQuery, Role};
use soundcity::mobile::{BrokerLink, GoFlowClient, RetryPolicy};
use soundcity::net::{
    BrokerService, ClientConfig, DocstoreService, RemoteBroker, RemoteStore, ServerConfig,
    SocketFaultProxy, WireServer,
};
use soundcity::telemetry::trace::{FlightRecorder, Hop, Outcome, TraceId, TraceIndex};
use soundcity::types::{
    AppId, AppVersion, DeviceModel, GeoPoint, LocationFix, LocationProvider, Observation,
    SimDuration, SimTime, SoundLevel,
};
use std::sync::Arc;

const DEVICE: u64 = 7;

fn observation(i: i64) -> Observation {
    Observation::builder()
        .device(DEVICE.into())
        .user(DEVICE.into())
        .model(DeviceModel::LgeNexus5)
        .captured_at(SimTime::EPOCH + SimDuration::from_mins(i))
        .spl(SoundLevel::new(45.0 + (i % 25) as f64))
        .location(LocationFix::new(
            GeoPoint::PARIS,
            25.0,
            LocationProvider::Network,
        ))
        .app_version(AppVersion::V1_2_9)
        .build()
}

/// Spawns a broker and a docstore behind TCP servers and returns remote
/// transports for them (plus the servers, which shut down on drop).
fn remote_pair() -> (
    WireServer,
    WireServer,
    Arc<dyn BrokerTransport>,
    Arc<dyn DocstoreTransport>,
) {
    let broker_backend: Arc<dyn BrokerTransport> = Arc::new(Broker::new());
    let broker_server = WireServer::bind(
        "127.0.0.1:0",
        Arc::new(BrokerService::new(broker_backend)),
        ServerConfig::default(),
    )
    .expect("bind broker server");
    let store_backend: Arc<dyn DocstoreTransport> = Arc::new(Store::new());
    let store_server = WireServer::bind(
        "127.0.0.1:0",
        Arc::new(DocstoreService::new(store_backend)),
        ServerConfig::default(),
    )
    .expect("bind docstore server");
    let remote_broker: Arc<dyn BrokerTransport> = Arc::new(RemoteBroker::connect(
        broker_server.local_addr().to_string(),
        ClientConfig::default(),
    ));
    let remote_store: Arc<dyn DocstoreTransport> = Arc::new(RemoteStore::connect(
        store_server.local_addr().to_string(),
        ClientConfig::default(),
    ));
    (broker_server, store_server, remote_broker, remote_store)
}

/// Pushes `count` observations through a GoFlow server (publish → ingest
/// → query) and returns the stored documents with `_id` stripped, in
/// capture order.
fn drive_pipeline(server: &GoFlowServer, count: i64) -> Vec<Value> {
    let app = AppId::soundcity();
    server.register_app(&app).expect("register app");
    let token = server
        .register_user(&app, DEVICE.into(), Role::Contributor)
        .expect("register user");
    let session = server.login(&token).expect("login");
    let key = session.observation_key("noise", "FR75013");
    for i in 0..count {
        let payload = serde_json::to_vec(&observation(i)).expect("serialize");
        let routed = server
            .broker()
            .publish(session.exchange(), &key, &payload)
            .expect("publish");
        assert_eq!(routed, 1, "observation must reach the GF queue");
    }
    let arrival = SimTime::EPOCH + SimDuration::from_mins(count);
    let outcome = server
        .ingest_pending(&app, arrival, 1_000_000)
        .expect("ingest");
    assert_eq!(outcome.stored as i64, count);
    assert_eq!(outcome.malformed, 0);
    assert_eq!(outcome.requeued, 0);
    let mut docs = server.query(&app, &ObservationQuery::new()).expect("query");
    for doc in &mut docs {
        doc.as_object_mut()
            .expect("stored docs are objects")
            .remove("_id");
    }
    docs.sort_by_key(|d| d["captured_ms"].as_i64().expect("captured_ms"));
    docs
}

/// The same observations through the embedded and the TCP pipeline must
/// come back as identical stored documents.
#[test]
fn embedded_and_remote_pipelines_store_identical_documents() {
    const COUNT: i64 = 40;

    let embedded_server = GoFlowServer::new(Arc::new(Broker::new()), Store::new());
    let embedded_docs = drive_pipeline(&embedded_server, COUNT);

    let (_broker_srv, _store_srv, remote_broker, remote_store) = remote_pair();
    let remote_server = GoFlowServer::over(remote_broker, remote_store);
    let remote_docs = drive_pipeline(&remote_server, COUNT);

    assert_eq!(embedded_docs.len(), COUNT as usize);
    assert_eq!(
        embedded_docs, remote_docs,
        "the network boundary must not change a single stored field"
    );
}

/// Socket faults tear frames mid-flight; the retry path absorbs every
/// failure and the flight recorder proves no observation was lost
/// silently: every trace ends in exactly one primary terminal, and every
/// terminal is a successful docstore write.
#[test]
fn socket_faults_are_visible_failures_with_zero_silent_loss() {
    const COUNT: i64 = 80;
    let recorder = FlightRecorder::global();
    recorder.clear();

    let (broker_srv, _store_srv, direct_broker, remote_store) = remote_pair();
    let server = GoFlowServer::over(Arc::clone(&direct_broker), remote_store);
    let app = AppId::soundcity();
    server.register_app(&app).expect("register app");
    let token = server
        .register_user(&app, DEVICE.into(), Role::Contributor)
        .expect("register user");
    let session = server.login(&token).expect("login");
    let key = session.observation_key("noise", "FR75013");

    // The mobile upload path goes through a fault proxy that drops a
    // quarter of the requests by tearing the TCP frame mid-write.
    let spec = FaultSpec {
        drop_prob: 0.25,
        ..FaultSpec::none()
    };
    let mut proxy = SocketFaultProxy::start(broker_srv.local_addr(), FaultPlan::new(4242, spec))
        .expect("start fault proxy");
    let faulted_broker =
        RemoteBroker::connect(proxy.local_addr().to_string(), ClientConfig::default());
    let link = BrokerLink::new(&faulted_broker, session.exchange());

    let mut client = GoFlowClient::new(session.exchange(), key, AppVersion::V1_2_9)
        .with_retry_policy(
            RetryPolicy {
                max_attempts: 50,
                ..RetryPolicy::default()
            },
            11,
        );
    let mut expected: Vec<TraceId> = Vec::with_capacity(COUNT as usize);
    for i in 0..COUNT {
        let now = SimTime::EPOCH + SimDuration::from_mins(i);
        let obs = observation(i);
        expected.push(TraceId::for_observation(
            DEVICE,
            obs.captured_at.as_millis(),
        ));
        client.record(obs);
        client.on_cycle_at(&link, true, now);
    }
    // Drain the retry backlog: flush_at ignores backoff, so each round
    // retries everything still parked; torn frames re-park it.
    let mut now = SimTime::EPOCH + SimDuration::from_mins(COUNT);
    for _ in 0..200 {
        if client.pending() == 0 && client.queued_retries() == 0 {
            break;
        }
        client.flush_at(&link, now);
        now = now + SimDuration::from_mins(5);
    }
    assert_eq!(client.pending(), 0, "every upload must eventually land");
    assert_eq!(client.queued_retries(), 0);
    assert_eq!(
        client.shed_total(),
        0,
        "retry budget must absorb the faults"
    );
    let stats = proxy.stats();
    assert!(stats.dropped > 0, "the fault plan must actually fire");

    let outcome = server.ingest_pending(&app, now, 1_000_000).expect("ingest");
    assert_eq!(outcome.stored as i64, COUNT, "zero silent loss");
    assert_eq!(outcome.malformed, 0, "torn frames never surface as data");
    assert_eq!(outcome.quarantined, 0);

    // Every trace: rooted at `sensed`, exactly one primary terminal, and
    // that terminal is the successful docstore write.
    assert_eq!(recorder.dropped(), 0, "ring must retain the whole run");
    let spans = recorder.snapshot();
    let index = TraceIndex::from_spans(spans);
    assert!(
        index.unterminated().is_empty(),
        "no trace may be left open under socket faults"
    );
    for trace in &expected {
        let tree = index.get(*trace).expect("observation trace retained");
        assert_eq!(tree.root().expect("rooted").hop, Hop::Sensed);
        let primaries: Vec<_> = tree.terminals().filter(|s| !s.duplicate).collect();
        assert_eq!(
            primaries.len(),
            1,
            "trace {trace} must terminate exactly once"
        );
        assert_eq!(primaries[0].hop, Hop::DocstoreWrite);
        assert_eq!(primaries[0].outcome, Outcome::Ok);
    }

    proxy.stop();
}
