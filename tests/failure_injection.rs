//! Failure injection across the middleware stack: malformed traffic,
//! bounded-queue overflow, crashing consumers, revoked credentials, and
//! session teardown under load — the system must degrade predictably,
//! never corrupt stored data.

use serde_json::json;
use soundcity::broker::{Broker, BrokerError, ExchangeType};
use soundcity::docstore::Store;
use soundcity::goflow::{GoFlowError, GoFlowServer, ObservationQuery, Role};
use soundcity::types::{AppId, DeviceModel, Observation, SimDuration, SimTime, SoundLevel};
use std::sync::Arc;

fn obs(i: i64) -> Observation {
    Observation::builder()
        .device(1.into())
        .user(1.into())
        .model(DeviceModel::SonyD2303)
        .captured_at(SimTime::from_hms(0, 8, 0, 0) + SimDuration::from_mins(i))
        .spl(SoundLevel::new(47.0))
        .build()
}

/// Garbage interleaved with valid observations: the valid ones are all
/// stored, the garbage is counted and dropped, and nothing is requeued
/// into an ingest loop.
#[test]
fn malformed_traffic_is_quarantined() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let token = server
        .register_user(&app, 1.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    let key = session.observation_key("noise", "FR75001");

    for i in 0..10 {
        if i % 3 == 0 {
            // Inject hostile payloads: truncated JSON, wrong schema, binary.
            let garbage: &[u8] = match i % 9 {
                0 => b"{\"model\": \"LGE NEX", // truncated
                3 => b"[1, 2, 3]",             // wrong schema
                _ => &[0xFF, 0xFE, 0x00],      // not UTF-8
            };
            broker.publish(session.exchange(), &key, garbage).unwrap();
        } else {
            broker
                .publish(
                    session.exchange(),
                    &key,
                    serde_json::to_vec(&obs(i)).unwrap(),
                )
                .unwrap();
        }
    }

    let outcome = server
        .ingest_pending(&app, SimTime::from_hms(0, 9, 0, 0), 100)
        .unwrap();
    assert_eq!(outcome.stored, 6);
    assert_eq!(outcome.malformed, 4);
    // Second pass finds nothing: the garbage was not requeued.
    let outcome = server
        .ingest_pending(&app, SimTime::from_hms(0, 9, 5, 0), 100)
        .unwrap();
    assert_eq!(outcome.stored + outcome.malformed, 0);
    assert_eq!(
        server.query(&app, &ObservationQuery::new()).unwrap().len(),
        6
    );
}

/// A bounded queue under overload drops (and counts) the excess; the
/// survivors are exactly the oldest messages, in order.
#[test]
fn bounded_queue_overload_sheds_predictably() {
    let broker = Broker::new();
    broker.declare_exchange("e", ExchangeType::Fanout).unwrap();
    broker.declare_queue_with_capacity("q", 5).unwrap();
    broker.bind_queue("e", "q", "#").unwrap();

    for i in 0..20u8 {
        broker.publish("e", "k", vec![i]).unwrap();
    }
    assert_eq!(broker.queue_depth("q").unwrap(), 5);
    assert_eq!(broker.metrics().dropped, 15);
    let survivors: Vec<u8> = broker
        .consume("q", 10)
        .unwrap()
        .iter()
        .map(|d| d.payload()[0])
        .collect();
    assert_eq!(survivors, vec![0, 1, 2, 3, 4]);
}

/// A consumer that takes deliveries and dies: nacking with requeue makes
/// every message deliverable again, flagged as redelivered, in order.
#[test]
fn crashed_consumer_recovers_via_redelivery() {
    let broker = Broker::new();
    broker.declare_exchange("e", ExchangeType::Fanout).unwrap();
    broker.declare_queue("q").unwrap();
    broker.bind_queue("e", "q", "#").unwrap();
    for i in 0..5u8 {
        broker.publish("e", "k", vec![i]).unwrap();
    }

    // First consumer takes everything and "crashes" (nacks with requeue,
    // as a supervisor would on its behalf).
    let taken = broker.consume("q", 5).unwrap();
    assert_eq!(broker.queue_depth("q").unwrap(), 0);
    for d in taken.iter().rev() {
        // reverse order: push_front restores FIFO
        broker.nack("q", d.tag, true).unwrap();
    }

    // Second consumer sees all five, redelivered, in original order.
    let retaken = broker.consume("q", 5).unwrap();
    let payloads: Vec<u8> = retaken.iter().map(|d| d.payload()[0]).collect();
    assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    assert!(retaken.iter().all(|d| d.redelivered));
    for d in &retaken {
        broker.ack("q", d.tag).unwrap();
    }
}

/// Revoked users cannot open new sessions, while already-stored data
/// stays queryable (the paper's accounts are revocable, its data is not
/// retroactively destroyed).
#[test]
fn revocation_blocks_sessions_not_history() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let token = server
        .register_user(&app, 1.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    broker
        .publish(
            session.exchange(),
            &session.observation_key("noise", "FR75001"),
            serde_json::to_vec(&obs(0)).unwrap(),
        )
        .unwrap();
    server
        .ingest_pending(&app, SimTime::from_hms(0, 9, 0, 0), 10)
        .unwrap();

    server.revoke(&token).unwrap();
    assert!(matches!(
        server.login(&token),
        Err(GoFlowError::InvalidToken)
    ));
    assert_eq!(
        server.query(&app, &ObservationQuery::new()).unwrap().len(),
        1
    );
}

/// Logging out mid-stream deletes the client's endpoints; publishes to
/// the dead exchange fail loudly rather than vanishing.
#[test]
fn publishing_after_logout_fails_loudly() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let token = server
        .register_user(&app, 1.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    server.logout(&session).unwrap();
    let result = broker.publish(
        session.exchange(),
        &session.observation_key("noise", "FR75001"),
        &b"{}"[..],
    );
    assert!(matches!(result, Err(BrokerError::ExchangeNotFound(_))));
}

/// A failing background job is recorded as failed and does not poison
/// later jobs or the collection.
#[test]
fn failing_jobs_are_contained() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let manager = server.register_user(&app, 1.into(), Role::Manager).unwrap();

    let bad = server
        .submit_job(&manager, "explodes", |_| Err("boom".into()))
        .unwrap();
    let good = server
        .submit_job(&manager, "counts", |c| Ok(json!(c.len())))
        .unwrap();
    assert_eq!(server.run_jobs(&app).unwrap(), 2);
    assert_eq!(
        server.job_status(bad).unwrap(),
        soundcity::goflow::JobStatus::Failed("boom".into())
    );
    assert_eq!(
        server.job_status(good).unwrap(),
        soundcity::goflow::JobStatus::Done(json!(0))
    );
}

/// Ingest with a tiny batch limit drains incrementally without loss.
#[test]
fn incremental_ingest_drains_completely() {
    let broker = Arc::new(Broker::new());
    let server = GoFlowServer::new(Arc::clone(&broker), Store::new());
    let app = AppId::soundcity();
    server.register_app(&app).unwrap();
    let token = server
        .register_user(&app, 1.into(), Role::Contributor)
        .unwrap();
    let session = server.login(&token).unwrap();
    let key = session.observation_key("noise", "FR75001");
    for i in 0..17 {
        broker
            .publish(
                session.exchange(),
                &key,
                serde_json::to_vec(&obs(i)).unwrap(),
            )
            .unwrap();
    }
    let mut total = 0;
    let mut rounds = 0;
    loop {
        let outcome = server
            .ingest_pending(&app, SimTime::from_hms(0, 10, 0, 0), 3)
            .unwrap();
        if outcome.stored == 0 {
            break;
        }
        total += outcome.stored;
        rounds += 1;
        assert!(rounds < 50, "ingest must terminate");
    }
    assert_eq!(total, 17);
    assert_eq!(rounds, 6, "ceil(17 / 3)");
}
